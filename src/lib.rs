//! # slopt — structure layout optimization for multithreaded programs
//!
//! This crate is the facade of the `slopt` workspace, a from-scratch Rust
//! reproduction of *"Structure Layout Optimization for Multithreaded
//! Programs"* (Raman, Hundt, Mannarswamy — CGO 2007).
//!
//! The paper's contribution is a structure-field reordering technique that
//! optimizes **simultaneously** for
//!
//! * **spatial locality** — fields that are accessed together should share a
//!   cache line (*CycleGain*), and
//! * **false sharing** — fields written by one CPU while other CPUs touch
//!   neighbouring fields should live on *different* cache lines
//!   (*CycleLoss*).
//!
//! Both effects are edge weights of a **Field Layout Graph** ([`core::Flg`])
//! over the fields of a record; a greedy clustering pass partitions the graph
//! into cache-line-sized clusters which become the new layout.
//!
//! The workspace contains everything needed to run the paper's pipeline
//! end-to-end on a simulated multiprocessor:
//!
//! | module (re-export) | crate | role |
//! |---|---|---|
//! | [`ir`] | `slopt-ir` | compiler substrate: record types, C layout rules, CFGs, loops, profiles, field affinity |
//! | [`sim`] | `slopt-sim` | execution-driven multiprocessor simulator: MESI coherence, hierarchical topology, false-sharing miss classification |
//! | [`sample`] | `slopt-sample` | PMU-style whole-system sampling and *Code Concurrency* estimation |
//! | [`core`] | `slopt-core` | the paper's algorithm: FLG construction, greedy clustering, layout generation, baselines, advisory reports |
//! | [`search`] | `slopt-search` | stochastic layout superoptimization: seeded annealing chains over the FLG objective with delta evaluation |
//! | [`workload`] | `slopt-workload` | a synthetic HP-UX-like kernel plus an SDET-like multi-user throughput workload |
//! | [`obs`] | `slopt-obs` | zero-dependency instrumentation: hierarchical spans, counters, `slopt-trace/1` JSONL run traces |
//! | [`fault`] | `slopt-fault` | seed-deterministic fault plans, fault-injectable I/O, the shared process exit-code vocabulary |
//!
//! ## Quickstart
//!
//! ```
//! use slopt::ir::{AccessKind, FunctionBuilder, Program};
//! use slopt::ir::types::{FieldType, PrimType, RecordType, TypeRegistry};
//!
//! // Declare a record with three fields (the paper's Fig. 4 example).
//! let mut registry = TypeRegistry::new();
//! let rec = registry.add_record(RecordType::new(
//!     "S",
//!     vec![
//!         ("f1", FieldType::Prim(PrimType::U64)),
//!         ("f2", FieldType::Prim(PrimType::U64)),
//!         ("f3", FieldType::Prim(PrimType::U64)),
//!     ],
//! ));
//! let program = Program::new(registry);
//! assert_eq!(program.registry().record(rec).field_count(), 3);
//! ```
//!
//! See `examples/quickstart.rs` for the full pipeline (profile → sample →
//! FLG → clustering → layout) and `EXPERIMENTS.md` for how each figure of
//! the paper is regenerated.
//!
//! ## Parallel execution
//!
//! Every expensive driver fans out across host threads through one
//! primitive, [`core::par_map`] — batch layout suggestion
//! ([`core::suggest_layout_all`]), repeated throughput measurement
//! ([`workload::measure_jobs`]) and whole figure grids
//! ([`workload::figure_rows_jobs`]) all take a `jobs` argument, and every
//! one of them returns **bit-identical results for every `jobs` value**
//! (see `DESIGN.md`, "Parallel execution model"). The convenience
//! re-exports below cover the common entry points.
//!
//! The supervised variant [`core::par_map_supervised`] adds panic
//! containment, deterministic retries and per-item deadlines on the same
//! scheduling; [`fault`] provides the seed-deterministic fault plans that
//! exercise it and the shared process exit-code vocabulary
//! (`DESIGN.md` §12).

pub use slopt_core as core;
pub use slopt_fault as fault;
pub use slopt_ir as ir;
pub use slopt_obs as obs;
pub use slopt_sample as sample;
pub use slopt_search as search;
pub use slopt_sim as sim;
pub use slopt_workload as workload;

pub use slopt_core::{default_jobs, par_map, suggest_layout_all, LayoutRequest};
