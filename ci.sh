#!/usr/bin/env bash
# The full CI gate, runnable locally. Order matters: the cheap static
# checks fail fast before the build and the (slower) test suite.
#
# The build environment is fully offline (dependencies are vendored under
# vendor/), hence --offline everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --offline -q

echo "== cargo bench --no-run (compile-check benches) =="
cargo bench --no-run --offline

echo "== perf_report --quick (refresh BENCH_sim.json) =="
cargo run --release --offline -p slopt-bench --bin perf_report -- --quick

echo "ci.sh: all green"
