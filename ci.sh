#!/usr/bin/env bash
# The full CI gate, runnable locally. Order matters: the cheap static
# checks fail fast before the build and the (slower) test suite.
#
# The build environment is fully offline (dependencies are vendored under
# vendor/), hence --offline everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --offline -q

echo "== cargo bench --no-run (compile-check benches) =="
cargo bench --no-run --offline

echo "== trace lint (fig9 --trace-out round-trip) =="
TRACE_TMP="$(mktemp /tmp/slopt_trace.XXXXXX.jsonl)"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 --trace-out "$TRACE_TMP" > /dev/null
cargo run --release --offline -p slopt-obs --bin trace_lint -- "$TRACE_TMP"
rm -f "$TRACE_TMP"

echo "== perf_report --quick (refresh BENCH_sim.json) + perf_guard =="
BASELINE_TMP="$(mktemp /tmp/slopt_bench_baseline.XXXXXX.json)"
cp BENCH_sim.json "$BASELINE_TMP"
cargo run --release --offline -p slopt-bench --bin perf_report -- --quick
cargo run --release --offline -p slopt-bench --bin perf_guard -- BENCH_sim.json --baseline "$BASELINE_TMP"
rm -f "$BASELINE_TMP"

echo "ci.sh: all green"
