#!/usr/bin/env bash
# The full CI gate, runnable locally. Order matters: the cheap static
# checks fail fast before the build and the (slower) test suite.
#
# The build environment is fully offline (dependencies are vendored under
# vendor/), hence --offline everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test --offline -q

echo "ci.sh: all green"
