#!/usr/bin/env bash
# The full CI gate, runnable locally. Order matters: the cheap static
# checks fail fast before the build and the (slower) test suite.
#
# The build environment is fully offline (dependencies are vendored under
# vendor/), hence --offline everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings; unwrap/expect are errors at the input boundary) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

# The root directory is both the workspace and a package, so a bare
# `cargo build`/`cargo test` would cover the root package only —
# --workspace everywhere below, or the experiment bins never rebuild.
echo "== cargo build --release (whole workspace) =="
cargo build --release --offline --workspace

echo "== cargo test (whole workspace) =="
cargo test --offline -q --workspace

echo "== cargo test (--test-threads=2, shakes out ordering assumptions) =="
cargo test --offline -q --workspace -- --test-threads=2

echo "== kill/resume contract (checkpoint_resume, explicitly) =="
cargo test --offline -q --test checkpoint_resume

echo "== chaos suite (seed-pinned fault plans, differential vs clean runs) =="
cargo test --offline -q --test chaos_suite

echo "== execctx capability matrix (24 lattice points, explicitly) =="
cargo test --offline -q --test execctx_matrix

echo "== composed-capabilities smoke (fig9: jobs 4 + trace + checkpoint + transient faults) =="
# Every capability at once must compose: the run exits 0 (transient
# faults retry to invisibility), its trace lints clean, and a serial run
# of the same plan is structurally identical — composition is data on
# one code path, not a separate code path per combination.
SMOKE_CKPT_J4="$(mktemp -d /tmp/slopt_smoke_ckpt4.XXXXXX)"
SMOKE_CKPT_J1="$(mktemp -d /tmp/slopt_smoke_ckpt1.XXXXXX)"
SMOKE_TRACE_J4="$(mktemp /tmp/slopt_smoke_j4.XXXXXX.jsonl)"
SMOKE_TRACE_J1="$(mktemp /tmp/slopt_smoke_j1.XXXXXX.jsonl)"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 4 \
    --trace-out "$SMOKE_TRACE_J4" --checkpoint-dir "$SMOKE_CKPT_J4" \
    --fault-plan seed=7,transient=0.5,panic=0.2 --max-retries 16 > /dev/null
cargo run --release --offline -p slopt-obs --bin trace_lint -- "$SMOKE_TRACE_J4"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 \
    --trace-out "$SMOKE_TRACE_J1" --checkpoint-dir "$SMOKE_CKPT_J1" \
    --fault-plan seed=7,transient=0.5,panic=0.2 --max-retries 16 > /dev/null
SMOKE_DIFF="$(cargo run --release --offline -p slopt-obs --bin trace_diff -- \
    "$SMOKE_TRACE_J1" "$SMOKE_TRACE_J4")"
echo "$SMOKE_DIFF" | grep -q "result: 0 structural delta(s), 0 timing breach(es)" \
    || { echo "composed smoke: serial vs fanned trace diverged:"; echo "$SMOKE_DIFF"; exit 1; }
rm -rf "$SMOKE_CKPT_J4" "$SMOKE_CKPT_J1" "$SMOKE_TRACE_J4" "$SMOKE_TRACE_J1"

echo "== help-surface conformance (every bin, one flag reference) =="
cargo test --offline -q -p slopt-bench --test help_matrix --test args_prop

echo "== degraded-run contract (fig9 under a permanent fault plan exits 4) =="
set +e
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 4 \
    --fault-plan seed=3,permanent=1 > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 4 ]; then
    echo "fig9 with permanent faults: expected exit 4 (degraded), got $code"
    exit 1
fi
set +e
cargo run --release --offline -p slopt-bench --bin fig9 -- \
    --fault-plan bogus=1 > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "fig9 with a malformed fault plan: expected exit 2 (usage), got $code"
    exit 1
fi

echo "== cargo bench --no-run (compile-check benches) =="
cargo bench --no-run --offline

echo "== trace lint (fig9 --trace-out round-trip) =="
TRACE_TMP="$(mktemp /tmp/slopt_trace.XXXXXX.jsonl)"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 --trace-out "$TRACE_TMP" > /dev/null
cargo run --release --offline -p slopt-obs --bin trace_lint -- "$TRACE_TMP"

echo "== trace_diff determinism gate (two same-seed serial fig9 runs) =="
# Everything deterministic in the trace — span counts, counters, workload
# histograms — must be bit-identical between two serial runs on the same
# seed; only timestamps (and the timing-derived gauges/span histograms
# trace_diff already excludes) may move. Exit 0 plus an explicit zero in
# the result line is the gate.
TRACE_TMP2="$(mktemp /tmp/slopt_trace2.XXXXXX.jsonl)"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 --trace-out "$TRACE_TMP2" > /dev/null
DIFF_OUT="$(cargo run --release --offline -p slopt-obs --bin trace_diff -- "$TRACE_TMP" "$TRACE_TMP2")"
echo "$DIFF_OUT" | grep -q "result: 0 structural delta(s), 0 timing breach(es)" \
    || { echo "trace_diff found deltas between same-seed runs:"; echo "$DIFF_OUT"; exit 1; }

echo "== slopt-tool stats --prom (Prometheus exposition self-check) =="
# `stats --prom` runs the exposition text through the built-in format
# validator before printing; the greps double-check the histogram family
# made it out with its +Inf terminator.
PROM_TMP="$(mktemp /tmp/slopt_prom.XXXXXX.txt)"
cargo run --release --offline -p slopt-cli -- stats "$TRACE_TMP" --prom > "$PROM_TMP"
grep -q '^# TYPE slopt_' "$PROM_TMP"
grep -q '_bucket{le="+Inf"}' "$PROM_TMP"
grep -q '_count ' "$PROM_TMP"
rm -f "$TRACE_TMP" "$TRACE_TMP2" "$PROM_TMP"

echo "== trace lint (resumed fig9 run round-trips through trace_lint) =="
CKPT_TMP="$(mktemp -d /tmp/slopt_ckpt.XXXXXX)"
RESUME_TRACE_TMP="$(mktemp /tmp/slopt_resume_trace.XXXXXX.jsonl)"
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 \
    --checkpoint-dir "$CKPT_TMP" > /dev/null
cargo run --release --offline -p slopt-bench --bin fig9 -- --jobs 1 \
    --checkpoint-dir "$CKPT_TMP" --resume --trace-out "$RESUME_TRACE_TMP" > /dev/null
cargo run --release --offline -p slopt-obs --bin trace_lint -- "$RESUME_TRACE_TMP"
rm -rf "$CKPT_TMP" "$RESUME_TRACE_TMP"

echo "== cargo test --doc (public-API doctests) =="
cargo test --offline -q --workspace --doc

echo "== search smoke (seeded annealing beats greedy, jobs-invariant) =="
# A fixed seed makes the whole portfolio deterministic, so the outputs of
# a serial and a fanned-out run must be byte-identical, and the stress
# workload's greedy trap must be escaped on both of its structs.
SEARCH_J1="$(mktemp /tmp/slopt_search_j1.XXXXXX.txt)"
SEARCH_J4="$(mktemp /tmp/slopt_search_j4.XXXXXX.txt)"
cargo run --release --offline -p slopt-cli -- search --stress --seed 42 \
    --jobs 1 > "$SEARCH_J1"
cargo run --release --offline -p slopt-cli -- search --stress --seed 42 \
    --jobs 4 > "$SEARCH_J4"
cmp "$SEARCH_J1" "$SEARCH_J4"
grep -q "strictly better objective than greedy on 2/2 structs" "$SEARCH_J1"
rm -f "$SEARCH_J1" "$SEARCH_J4"

echo "== perf_report --quick --jobs 4 (refresh BENCH_sim.json) + perf_guard =="
BASELINE_TMP="$(mktemp /tmp/slopt_bench_baseline.XXXXXX.json)"
cp BENCH_sim.json "$BASELINE_TMP"
cargo run --release --offline -p slopt-bench --bin perf_report -- --quick --jobs 4
# Growth floors: streamed CC must beat the retained batch reference 2x,
# the delta move scorer must beat a full canonical recompute 20x (it is
# serial, so never host-core-skipped), and the parallel paths must show
# 3x at jobs=4. The parallel floors are host-core-aware: perf_guard
# enforces them only when the measuring host reports >= 4 cores
# (wall-clock speedup is physically capped below that) and prints a
# SKIPPED note otherwise.
cargo run --release --offline -p slopt-bench --bin perf_guard -- BENCH_sim.json \
    --baseline "$BASELINE_TMP" \
    --require-speedup cc_stream:2.0 \
    --require-speedup search_delta:20 \
    --require-parallel cc_stream:3.0 \
    --require-parallel engine:3.0
rm -f "$BASELINE_TMP"

echo "== slopt-serve soak smoke (daemon + 3 faulted collectors, drain, kill-9/resume) =="
# The daemon's correctness contract end to end, with real processes:
# advice served after concurrent faulted ingest is cmp-equal to an
# offline run over the same samples; SIGTERM drains to exit 0; kill -9
# plus restart --resume serves bit-identical advice again. The release
# build above produced the binaries — call them directly so the
# backgrounded daemon never contends on the cargo lock.
SERVE_BIN=./target/release/slopt-serve
TOOL_BIN=./target/release/slopt-tool
SOAK_DIR="$(mktemp -d /tmp/slopt_soak.XXXXXX)"
SHARDS="$SOAK_DIR/shards"
STATE="$SOAK_DIR/state"
"$SERVE_BIN" --emit-samples "$SHARDS" --clients 3 --batches 4 --window 64 \
    2> "$SOAK_DIR/emit.log"
"$SERVE_BIN" --offline "$SHARDS" --window 64 --jobs 4 \
    --advice-out "$SOAK_DIR/offline.txt"
"$SERVE_BIN" --checkpoint-dir "$STATE" --addr 127.0.0.1:0 --window 64 --jobs 2 \
    --fault-plan seed=11,transient=0.2,write-error=0.2 --max-retries 24 \
    > "$SOAK_DIR/serve_a.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$STATE/addr" ] && break; sleep 0.1; done
[ -s "$STATE/addr" ] || { echo "soak: daemon never published its address"; exit 1; }
INGEST_PIDS=""
for c in 0 1 2; do
    "$TOOL_BIN" serve ingest --state-dir "$STATE" --dir "$SHARDS/client0$c" \
        --client-id "$c" --fault-plan seed=7,transient=0.3 --max-retries 24 \
        > "$SOAK_DIR/ingest_$c.log" 2>&1 &
    INGEST_PIDS="$INGEST_PIDS $!"
done
for pid in $INGEST_PIDS; do
    wait "$pid" || { echo "soak: a collector failed"; cat "$SOAK_DIR"/ingest_*.log; exit 1; }
done
"$TOOL_BIN" serve advise --state-dir "$STATE" > "$SOAK_DIR/live.txt"
cmp "$SOAK_DIR/offline.txt" "$SOAK_DIR/live.txt" \
    || { echo "soak: daemon advice diverged from the offline reference"; exit 1; }
"$TOOL_BIN" serve health --state-dir "$STATE" | grep -q '^ok .*torn_dropped=0' \
    || { echo "soak: unhealthy daemon"; exit 1; }
"$TOOL_BIN" serve metrics --state-dir "$STATE" \
    | grep -q '^# TYPE slopt_serve_ingest_batches counter' \
    || { echo "soak: ingest not visible in /metrics"; exit 1; }
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
    echo "soak: SIGTERM drain: expected exit 0, got $code"
    cat "$SOAK_DIR/serve_a.log"
    exit 1
fi
# kill -9 a resumed daemon mid-window, restart with --resume: the journal
# refold must reproduce the window, and the advice must not move a bit.
rm -f "$STATE/addr"
"$SERVE_BIN" --checkpoint-dir "$STATE" --resume --addr 127.0.0.1:0 --window 64 \
    --jobs 4 > "$SOAK_DIR/serve_b.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$STATE/addr" ] && break; sleep 0.1; done
[ -s "$STATE/addr" ] || { echo "soak: resumed daemon never published its address"; exit 1; }
kill -9 "$SERVE_PID"
set +e
wait "$SERVE_PID" 2> /dev/null
set -e
rm -f "$STATE/addr"
"$SERVE_BIN" --checkpoint-dir "$STATE" --resume --addr 127.0.0.1:0 --window 64 \
    --jobs 1 > "$SOAK_DIR/serve_c.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 200); do [ -s "$STATE/addr" ] && break; sleep 0.1; done
[ -s "$STATE/addr" ] || { echo "soak: post-kill-9 daemon never published its address"; exit 1; }
"$TOOL_BIN" serve advise --state-dir "$STATE" > "$SOAK_DIR/resumed.txt"
cmp "$SOAK_DIR/offline.txt" "$SOAK_DIR/resumed.txt" \
    || { echo "soak: post-kill-9 resume changed the advice"; exit 1; }
"$TOOL_BIN" serve health --state-dir "$STATE" | grep -q 'resumed_batches=12' \
    || { echo "soak: resume did not refold the journal"; exit 1; }
"$TOOL_BIN" serve drain --state-dir "$STATE" > /dev/null
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
    echo "soak: client-initiated drain: expected exit 0, got $code"
    cat "$SOAK_DIR/serve_c.log"
    exit 1
fi
rm -rf "$SOAK_DIR"

echo "ci.sh: all green"
