//! End-to-end daemon tests: the differential correctness contract
//! (daemon advice ≡ offline advice, bit for bit) under concurrent
//! clients, injected faults, duplicate delivery, restart/resume — and
//! the availability contract (garbage frames and contained panics never
//! take the daemon down).

use slopt_fault::FaultPlan;
use slopt_ir::SupervisePolicy;
use slopt_obs::Obs;
use slopt_sample::write_shard;
use slopt_serve::proto::{read_frame, write_frame, OP_ERR, OP_HEALTH, OP_INGEST, OP_OK};
use slopt_serve::{
    advice::analysis_config, offline_advice, Client, DaemonConfig, IngestBatch, ServeConfig,
};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slopt_serve_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic measurement-run sample stream, chunked round-robin
/// into per-client batches exactly as `slopt-serve --emit-samples` does.
fn real_batches(cfg: &ServeConfig, clients: u64, batches: u64) -> Vec<Vec<IngestBatch>> {
    let kernel = slopt_workload::build_kernel();
    let analysis = slopt_workload::analyze_obs(
        &kernel,
        &slopt_workload::SdetConfig::default(),
        &analysis_config(cfg),
        &Obs::disabled(),
    );
    // The analysis stream is grouped, not globally time-ordered; the
    // shard invariant wants time order. Stable sort keeps determinism.
    let mut samples = analysis.samples.clone();
    samples.sort_by_key(|s| s.time);
    let samples = &samples;
    assert!(samples.len() > 100, "analysis must produce a real stream");
    let chunks = (clients * batches) as usize;
    let per = samples.len().div_ceil(chunks);
    let mut out: Vec<Vec<IngestBatch>> = (0..clients).map(|_| Vec::new()).collect();
    for k in 0..chunks {
        let lo = (k * per).min(samples.len());
        let hi = ((k + 1) * per).min(samples.len());
        if lo >= hi {
            continue;
        }
        let client = (k as u64) % clients;
        out[client as usize].push(IngestBatch {
            client,
            seq: (k as u64) / clients,
            samples: samples[lo..hi].to_vec(),
        });
    }
    out
}

fn write_offline_tree(dir: &Path, per_client: &[Vec<IngestBatch>]) {
    for batches in per_client {
        for b in batches {
            let cdir = dir.join(format!("client{:02}", b.client));
            std::fs::create_dir_all(&cdir).unwrap();
            write_shard(&cdir.join(format!("b{:04}.slshard", b.seq)), &b.samples).unwrap();
        }
    }
}

/// The tentpole contract in one test: advice served after any ingest
/// sequence — concurrent interleaved clients, injected transient faults
/// on the client, journal, and reopt sites, duplicate delivery, a torn
/// journal file, graceful restart with `--resume`, different `--jobs`
/// everywhere — is bit-identical to a clean offline run over the same
/// samples.
#[test]
fn advice_is_bit_identical_to_offline_across_interleavings_faults_and_resume() {
    // A window much smaller than the stream's interval span, so decay
    // (eviction) and order-dependent late-drops actually happen.
    let cfg = ServeConfig {
        interval: 6_000,
        window: 64,
    };
    let per_client = real_batches(&cfg, 3, 4);

    // The offline reference: fault-free, --jobs 4.
    let offline_dir = temp_dir("offline");
    write_offline_tree(&offline_dir, &per_client);
    let reference = offline_advice(
        &offline_dir,
        &cfg,
        4,
        SupervisePolicy::default(),
        FaultPlan::none(),
        &Obs::disabled(),
    )
    .unwrap();
    assert!(reference.text.starts_with("slopt-advice/1 version="));
    assert_eq!(reference.holed, 0);

    // The daemon: transient faults injected into journal writes and the
    // supervised reopt workers; --jobs 2.
    let state_dir = temp_dir("state");
    let mut dcfg = DaemonConfig::local(&state_dir, false);
    dcfg.serve = cfg.clone();
    dcfg.jobs = 2;
    dcfg.plan = FaultPlan::parse("seed=11,transient=0.2,write-error=0.2").unwrap();
    dcfg.max_retries = 24;
    dcfg.policy.max_retries = 24;
    let obs = Obs::aggregating();
    let handle = slopt_serve::start(dcfg, &obs).unwrap();
    let addr = handle.addr.to_string();
    assert_eq!(
        std::fs::read_to_string(state_dir.join("addr"))
            .unwrap()
            .trim(),
        addr,
        "bound address is published for discovery"
    );

    // Three concurrent collectors, each with client-side transient send
    // faults and one deliberately duplicated batch.
    let client_plan = FaultPlan::parse("seed=7,transient=0.3").unwrap();
    std::thread::scope(|scope| {
        for batches in &per_client {
            let addr = addr.clone();
            let plan = client_plan.clone();
            scope.spawn(move || {
                let mut client = Client::new(addr);
                for b in batches {
                    client.ingest(b, &plan, 24, &Obs::disabled()).unwrap();
                }
                // Redeliver the first batch: the (client, seq) key must
                // dedup it, not double-fold.
                let ack = client
                    .ingest(&batches[0], &plan, 24, &Obs::disabled())
                    .unwrap();
                assert!(ack.contains("dup=1"), "redelivery must dedup: {ack}");
            });
        }
    });

    let mut client = Client::new(addr);
    let live = client.advise().unwrap();
    assert_eq!(
        live, reference.text,
        "daemon advice must be bit-identical to the offline reference"
    );
    let health = client.health().unwrap();
    assert!(health.starts_with("ok "), "{health}");
    handle.stop().unwrap();

    // Simulate a kill-9 mid-append: a torn journal file appears. Resume
    // must drop it (counted) and reproduce the same advice — at yet
    // another --jobs.
    let journal = state_dir.join("journal");
    std::fs::write(
        journal.join("j000000999999-00000000000000ff-0000000000000000.slshard"),
        b"SLSHARD1 torn mid-write",
    )
    .unwrap();
    let mut rcfg = DaemonConfig::local(&state_dir, true);
    rcfg.serve = cfg;
    rcfg.jobs = 3;
    let handle = slopt_serve::start(rcfg, &obs).unwrap();
    let mut client = Client::new(handle.addr.to_string());
    let resumed = client.advise().unwrap();
    assert_eq!(
        resumed, reference.text,
        "post-resume advice must be bit-identical"
    );
    let health = client.health().unwrap();
    assert!(health.contains("resumed_batches=12"), "{health}");
    assert!(health.contains("torn_dropped=1"), "{health}");
    handle.stop().unwrap();

    let _ = std::fs::remove_dir_all(&offline_dir);
    let _ = std::fs::remove_dir_all(&state_dir);
}

/// Availability: garbage frames get typed errors, injected connection
/// panics are contained per-frame, the metrics endpoint serves a valid
/// Prometheus exposition that counts all of it, and a client-initiated
/// drain shuts the daemon down cleanly with every queued batch folded.
#[test]
fn garbage_frames_and_contained_panics_never_kill_the_daemon() {
    let state_dir = temp_dir("robust");
    let mut dcfg = DaemonConfig::local(&state_dir, false);
    dcfg.serve = ServeConfig {
        interval: 6_000,
        window: 64,
    };
    // Panic faults at the connection site: frames blow up inside the
    // handler and must be contained.
    dcfg.plan = FaultPlan::parse("seed=5,panic=0.3").unwrap();
    let obs = Obs::aggregating();
    let handle = slopt_serve::start(dcfg, &obs).unwrap();
    let addr = handle.addr.to_string();

    // Raw protocol abuse on one connection.
    {
        let mut stream = TcpStream::connect(&addr).unwrap();
        // A response opcode as a request: typed error, connection lives.
        write_frame(&mut stream, OP_OK, b"not a request").unwrap();
        let (op, body) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(op, OP_ERR);
        assert!(String::from_utf8_lossy(&body).contains("not a request"));
        // A short ingest payload: typed error, connection lives.
        write_frame(&mut stream, OP_INGEST, b"abc").unwrap();
        let (op, _) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(op, OP_ERR);
        // A garbage shard image: typed error, connection lives.
        let mut payload = vec![0u8; 16];
        payload.extend_from_slice(b"NOT A SHARD IMAGE");
        write_frame(&mut stream, OP_INGEST, &payload).unwrap();
        let (op, _) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(op, OP_ERR);
        // The same connection still serves real requests.
        write_frame(&mut stream, OP_HEALTH, b"").unwrap();
        let (op, body) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(op, OP_OK);
        assert!(String::from_utf8_lossy(&body).starts_with("ok "));
    }

    // Real ingest through the panic plan: client retries heal every
    // contained panic (the retry is a fresh frame index).
    let samples = {
        let kernel = slopt_workload::build_kernel();
        let mut samples = slopt_workload::analyze_obs(
            &kernel,
            &slopt_workload::SdetConfig::default(),
            &analysis_config(&ServeConfig::default()),
            &Obs::disabled(),
        )
        .samples;
        samples.sort_by_key(|s| s.time);
        samples
    };
    let mut client = Client::new(addr.clone());
    for (seq, chunk) in samples.chunks(samples.len().div_ceil(4).max(1)).enumerate() {
        let batch = IngestBatch {
            client: 1,
            seq: seq as u64,
            samples: chunk.to_vec(),
        };
        client
            .ingest(&batch, &FaultPlan::none(), 24, &Obs::disabled())
            .unwrap();
    }

    // The metrics endpoint is a valid exposition and counts the abuse.
    let metrics = client.metrics().unwrap();
    let families = slopt_obs::prom::validate(&metrics).expect("exposition must validate");
    assert!(families > 0);
    assert!(
        metrics.contains("slopt_warn_serve_proto_bad_opcode"),
        "protocol abuse must be counted:\n{metrics}"
    );
    assert!(
        metrics.contains("slopt_serve_ingest_batches"),
        "ingest must be counted:\n{metrics}"
    );
    if metrics.contains("slopt_warn_serve_conn_panic") {
        // Panic containment fired (plan-dependent); the daemon is
        // provably still alive because every request above succeeded.
    }

    // Client-initiated drain: the daemon acks, folds what is queued,
    // and the run loop exits cleanly.
    let ack = client.drain().unwrap();
    assert!(ack.contains("draining"), "{ack}");
    handle.wait().unwrap();

    let _ = std::fs::remove_dir_all(&state_dir);
}
