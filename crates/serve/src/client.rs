//! The reference collector client: synchronous request/response over
//! one TCP connection, with retry/backoff on transient failures.
//!
//! Ingest retries are *safe by construction*: every batch carries its
//! `(client, seq)` idempotency key, so re-sending a batch whose `OK` was
//! lost (connection dropped after the fold, injected fault, daemon
//! restart) folds at most once. That is what lets the client treat
//! every failure mode the same way — back off, reconnect, resend.

use slopt_fault::{io::backoff, FaultKind, FaultPlan};
use slopt_obs::Obs;
use std::io;
use std::net::TcpStream;

use crate::proto::{
    read_frame, write_frame, IngestBatch, ProtoError, OP_ADVISE, OP_DRAIN, OP_ERR, OP_HEALTH,
    OP_INGEST, OP_METRICS, OP_OK,
};

/// The client-side fault site: a seeded `transient` plan makes send
/// attempts fail before reaching the wire, exercising the retry loop
/// without a real network fault.
pub const SITE_CLIENT: &str = "client.ingest";

/// A synchronous `slopt-serve/1` client. Reconnects lazily after any
/// transport failure.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:4871`). Connection happens
    /// lazily on the first request.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            stream: None,
        }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            self.stream = Some(TcpStream::connect(&self.addr)?);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One request/response exchange. Any transport failure drops the
    /// connection so the next request reconnects.
    fn request(&mut self, op: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        let result = (|| {
            let stream = self.stream()?;
            write_frame(stream, op, payload)?;
            match read_frame(stream) {
                Ok(Some(frame)) => Ok(frame),
                Ok(None) => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                )),
                Err(ProtoError::Io(e)) => Err(e),
                Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Sends one batch with retry/backoff. Injected transient faults
    /// ([`SITE_CLIENT`]), transport errors, and `ERR` replies all take
    /// the same path: count, back off, reconnect, resend — the
    /// `(client, seq)` key makes the resend idempotent. Returns the
    /// daemon's ack line.
    pub fn ingest(
        &mut self,
        batch: &IngestBatch,
        plan: &FaultPlan,
        max_retries: u32,
        obs: &Obs,
    ) -> io::Result<String> {
        let payload = batch.encode()?;
        let mut attempt: u32 = 0;
        loop {
            let failure: String =
                if plan.fires(FaultKind::Transient, SITE_CLIENT, batch.seq, attempt) {
                    obs.warning("fault.injected.transient");
                    format!(
                        "injected transient send fault (seq {}, attempt {attempt})",
                        batch.seq
                    )
                } else {
                    match self.request(OP_INGEST, &payload) {
                        Ok((OP_OK, body)) => return Ok(String::from_utf8_lossy(&body).into_owned()),
                        Ok((_, body)) => String::from_utf8_lossy(&body).into_owned(),
                        Err(e) => e.to_string(),
                    }
                };
            if attempt >= max_retries {
                return Err(io::Error::other(format!(
                    "ingest of batch (client {}, seq {}) failed after {} attempts: {failure}",
                    batch.client,
                    batch.seq,
                    attempt + 1
                )));
            }
            obs.counter("retry.attempts", 1);
            std::thread::sleep(backoff(attempt));
            attempt += 1;
        }
    }

    /// Fetches the current advice document.
    pub fn advise(&mut self) -> io::Result<String> {
        self.expect_ok(OP_ADVISE)
    }

    /// Fetches the one-line health summary.
    pub fn health(&mut self) -> io::Result<String> {
        self.expect_ok(OP_HEALTH)
    }

    /// Fetches the Prometheus exposition of the daemon's counters.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.expect_ok(OP_METRICS)
    }

    /// Asks the daemon to drain and shut down gracefully.
    pub fn drain(&mut self) -> io::Result<String> {
        self.expect_ok(OP_DRAIN)
    }

    fn expect_ok(&mut self, op: u8) -> io::Result<String> {
        match self.request(op, b"")? {
            (OP_OK, body) => Ok(String::from_utf8_lossy(&body).into_owned()),
            (OP_ERR, body) => Err(io::Error::other(
                String::from_utf8_lossy(&body).into_owned(),
            )),
            (other, _) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response opcode 0x{other:02x}"),
            )),
        }
    }
}
