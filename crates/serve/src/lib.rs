//! `slopt-serve`: the always-available continuous layout-advisory
//! daemon.
//!
//! Collectors stream `slopt-shard/1` sample batches over a
//! length-prefixed TCP protocol ([`proto`]); the daemon folds them into
//! a *windowed, decaying* Code Concurrency state
//! ([`slopt_sample::WindowedConcurrency`]), journals every accepted
//! batch for crash-consistent resume ([`state`]), periodically re-runs
//! the Field Layout Graph + clustering pipeline over the live window
//! under supervision ([`advice`]), and serves versioned advice plus
//! health and Prometheus metrics endpoints ([`daemon`]).
//!
//! The correctness contract (proved in DESIGN.md §17, enforced by the
//! end-to-end tests and the CI soak): the advice returned after any
//! ingest sequence is **bit-identical** to an offline run over the same
//! samples — across client interleavings, `--jobs`, injected transient
//! faults, graceful drain, and kill-9/restart/resume.

#![deny(missing_docs)]

pub mod advice;
pub mod client;
pub mod daemon;
pub mod proto;
pub mod state;

pub use advice::{offline_advice, Advice, Advisor, SITE_REOPT};
pub use client::{Client, SITE_CLIENT};
pub use daemon::{start, DaemonConfig, DaemonHandle, ADDR_FILE, SITE_CONN};
pub use proto::{IngestBatch, ProtoError};
pub use state::{Applied, ServeConfig, ServeState, SITE_JOURNAL};
