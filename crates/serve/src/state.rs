//! The daemon's durable state: a journaled, windowed Code Concurrency
//! fold with crash-consistent resume.
//!
//! # Crash consistency
//!
//! Every accepted batch follows the same three-step discipline:
//!
//! 1. **Journal** — the batch is written verbatim as an `slopt-shard/1`
//!    file named `j<order>-<client>-<seq>.slshard` under
//!    `<dir>/journal/`. The order prefix is the fold sequence number,
//!    so a resume replays batches in exactly the order the original
//!    process folded them.
//! 2. **Fold** — the samples enter the [`WindowedConcurrency`] ring.
//! 3. **Acknowledge** — only now does the client see `OK`. (The
//!    `slopt-ckpt/1` meta log records the accepted-sample watermark
//!    between steps 2 and 3.)
//!
//! A `kill -9` between any two steps leaves either (a) no file, (b) a
//! torn file, or (c) a complete file that was never acknowledged. On
//! resume, (a) is nothing, (b) fails shard validation and is dropped
//! with a `warn.serve.journal_torn` counter, and (c) simply refolds —
//! the client never saw `OK`, so its retry deduplicates against the
//! `(client, seq)` key recovered from the file name. Every batch that
//! *was* acknowledged is a complete journal file, so the resumed state
//! trajectory is bit-identical to the original — which is what makes
//! post-resume advice bit-identical too (see DESIGN.md §17).

use slopt_bench::{fingerprint, Checkpoint, CheckpointSpec};
use slopt_fault::{io::retry_io, FaultKind, FaultPlan};
use slopt_obs::Obs;
use slopt_sample::{encode_shard, read_shard, ConcurrencyConfig, WindowedConcurrency};
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::proto::IngestBatch;

/// The serve-side fault-injection site for journal writes: a seeded
/// `write-error` plan makes appends fail transiently, exercising the
/// retry path without a real disk fault.
pub const SITE_JOURNAL: &str = "serve.journal";

/// Static configuration of the daemon's fold. Fingerprinted into the
/// meta checkpoint header, so a resume under different parameters is
/// refused instead of silently blending incompatible state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Code Concurrency interval length in cycles.
    pub interval: u64,
    /// Window size in whole intervals: samples older than
    /// `newest - window + 1` intervals decay out of the live state.
    pub window: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            // Matches AnalysisConfig::default() so live CC is directly
            // comparable to the offline analysis pipeline.
            interval: 6_000,
            window: 4_096,
        }
    }
}

impl ServeConfig {
    /// The header fingerprint guarding resume against config drift.
    pub fn fingerprint(&self) -> u64 {
        fingerprint([
            "slopt-serve/1",
            &format!("interval={}", self.interval),
            &format!("window={}", self.window),
        ])
    }
}

/// Outcome of applying one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Applied {
    /// Samples folded into the window.
    pub accepted: u64,
    /// Samples dropped as older than the window.
    pub late: u64,
    /// True when `(client, seq)` had already been folded — the batch
    /// was acknowledged without re-folding (exactly-once ingest).
    pub duplicate: bool,
}

/// The daemon's state: the live windowed fold plus its durability
/// scaffolding.
#[derive(Debug)]
pub struct ServeState {
    cfg: ServeConfig,
    win: WindowedConcurrency,
    journal_dir: PathBuf,
    /// Fold order of the next journaled batch.
    next_order: u64,
    /// Idempotency keys of every folded batch.
    applied: HashSet<(u64, u64)>,
    /// Batches refolded from the journal at open.
    resumed_batches: u64,
    /// Structurally invalid (torn) journal files dropped at open.
    torn_dropped: u64,
    /// Monotonic revision: bumped on every non-duplicate fold, so
    /// advice caches know when they are stale.
    rev: u64,
    meta: Checkpoint,
}

impl ServeState {
    /// Opens (or resumes) the state under `spec.dir`.
    ///
    /// Without `spec.resume` any previous journal is cleared. With it,
    /// the meta header is validated against `cfg` (refusing drift), the
    /// journal is refolded in original fold order, and the recovered
    /// accepted-sample count is checked against the meta watermark —
    /// acknowledged data that failed to refold is an error, not a
    /// silent hole.
    pub fn open(spec: &CheckpointSpec, cfg: ServeConfig, obs: &Obs) -> io::Result<ServeState> {
        std::fs::create_dir_all(&spec.dir)?;
        let journal_dir = spec.dir.join("journal");
        if !spec.resume {
            let _ = std::fs::remove_dir_all(&journal_dir);
        }
        std::fs::create_dir_all(&journal_dir)?;
        let meta = Checkpoint::open(spec, "serve-meta", 1, cfg.fingerprint())?;

        let mut state = ServeState {
            win: WindowedConcurrency::new(
                ConcurrencyConfig {
                    interval: cfg.interval,
                },
                cfg.window,
            ),
            cfg,
            journal_dir,
            next_order: 0,
            applied: HashSet::new(),
            resumed_batches: 0,
            torn_dropped: 0,
            rev: 0,
            meta,
        };
        if spec.resume {
            state.refold(obs)?;
        }
        Ok(state)
    }

    /// Replays the journal in fold order, reproducing the pre-crash
    /// state trajectory exactly.
    fn refold(&mut self, obs: &Obs) -> io::Result<()> {
        let mut files: Vec<(u64, u64, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.journal_dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            match parse_journal_name(name) {
                Some((order, client, seq)) => files.push((order, client, seq, path)),
                None => {
                    // Not ours (editor droppings, partial temp names):
                    // ignore but never fold.
                    obs.warning("serve.journal_foreign");
                }
            }
        }
        files.sort();
        for (order, client, seq, path) in files {
            match read_shard(&path) {
                Ok(samples) => {
                    self.win.ingest(&samples);
                    self.applied.insert((client, seq));
                    self.next_order = self.next_order.max(order + 1);
                    self.resumed_batches += 1;
                    self.rev += 1;
                }
                Err(_) => {
                    // A torn write from the crash: the batch was never
                    // acknowledged, so dropping it is correct — but it
                    // must be *counted*, never silent.
                    self.torn_dropped += 1;
                    obs.warning("serve.journal_torn");
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        // Every acknowledged sample was journaled before the ack, so
        // the refold can only meet or exceed the recorded watermark.
        let watermark = self.meta.get(0).unwrap_or(0.0);
        if (self.win.accepted() as f64) < watermark {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal refold recovered {} accepted samples, below the acknowledged \
                     watermark {watermark}: acknowledged data is missing from {}",
                    self.win.accepted(),
                    self.journal_dir.display()
                ),
            ));
        }
        Ok(())
    }

    /// Applies one batch with the journal-fold-record discipline.
    /// Transient journal write failures (injected via `plan` at
    /// [`SITE_JOURNAL`], or real `Interrupted` I/O) retry with bounded
    /// backoff; exhaustion surfaces as an error and the batch is *not*
    /// folded — the client retries and the key stays unused.
    pub fn apply(
        &mut self,
        batch: &IngestBatch,
        plan: &FaultPlan,
        max_retries: u32,
        obs: &Obs,
    ) -> io::Result<Applied> {
        if self.applied.contains(&(batch.client, batch.seq)) {
            obs.counter("serve.ingest.duplicate", 1);
            return Ok(Applied {
                accepted: 0,
                late: 0,
                duplicate: true,
            });
        }
        let order = self.next_order;
        let bytes = encode_shard(&batch.samples)?;
        let path = self
            .journal_dir
            .join(journal_name(order, batch.client, batch.seq));
        retry_io(max_retries, |attempt| {
            if plan.fires(FaultKind::WriteError, SITE_JOURNAL, order, attempt) {
                obs.warning("fault.injected.write-error");
                obs.counter("retry.attempts", 1);
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected journal write error (#{order}, attempt {attempt})"),
                ));
            }
            write_all_flushed(&path, &bytes)
        })?;

        let before = self.win.accepted();
        let late = self.win.ingest(&batch.samples);
        let accepted = self.win.accepted() - before;
        self.applied.insert((batch.client, batch.seq));
        self.next_order = order + 1;
        self.rev += 1;
        self.meta.record(0, self.win.accepted() as f64);

        obs.counter("serve.ingest.batches", 1);
        obs.counter("serve.ingest.samples", accepted);
        if late > 0 {
            obs.warning_n("serve.late_dropped", late);
        }
        Ok(Applied {
            accepted,
            late,
            duplicate: false,
        })
    }

    /// The fold configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Monotonic state revision (bumps on every non-duplicate fold).
    pub fn rev(&self) -> u64 {
        self.rev
    }

    /// Batches refolded from the journal at open.
    pub fn resumed_batches(&self) -> u64 {
        self.resumed_batches
    }

    /// Torn journal files dropped at open.
    pub fn torn_dropped(&self) -> u64 {
        self.torn_dropped
    }

    /// The live windowed fold.
    pub fn window(&mut self) -> &mut WindowedConcurrency {
        &mut self.win
    }

    /// Read-only view of the fold's counters.
    pub fn window_stats(&self) -> &WindowedConcurrency {
        &self.win
    }
}

fn journal_name(order: u64, client: u64, seq: u64) -> String {
    format!("j{order:012}-{client:016x}-{seq:016x}.slshard")
}

fn parse_journal_name(name: &str) -> Option<(u64, u64, u64)> {
    let rest = name.strip_prefix('j')?.strip_suffix(".slshard")?;
    let mut parts = rest.split('-');
    let order = parts.next()?.parse().ok()?;
    let client = u64::from_str_radix(parts.next()?, 16).ok()?;
    let seq = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((order, client, seq))
}

fn write_all_flushed(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::{BlockId, FuncId, SourceLine};
    use slopt_sample::Sample;
    use slopt_sim::CpuId;

    fn sample(time: u64, cpu: u16, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    fn batch(client: u64, seq: u64, times: &[u64]) -> IngestBatch {
        IngestBatch {
            client,
            seq,
            samples: times
                .iter()
                .enumerate()
                .map(|(i, &t)| sample(t, (i % 3) as u16, 5 + (i % 4) as u32))
                .collect(),
        }
    }

    fn temp_spec(tag: &str, resume: bool) -> CheckpointSpec {
        CheckpointSpec {
            dir: std::env::temp_dir()
                .join(format!("slopt_serve_state_{}_{tag}", std::process::id())),
            resume,
        }
    }

    #[test]
    fn duplicate_batches_fold_exactly_once() {
        let spec = temp_spec("dup", false);
        let _ = std::fs::remove_dir_all(&spec.dir);
        let obs = Obs::disabled();
        let mut st = ServeState::open(&spec, ServeConfig::default(), &obs).unwrap();
        let b = batch(1, 0, &[100, 200, 300]);
        let first = st.apply(&b, &FaultPlan::none(), 3, &obs).unwrap();
        assert_eq!(first.accepted, 3);
        assert!(!first.duplicate);
        let again = st.apply(&b, &FaultPlan::none(), 3, &obs).unwrap();
        assert!(again.duplicate);
        assert_eq!(st.window_stats().accepted(), 3);
        std::fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn kill_and_resume_reproduces_the_fold_and_drops_torn_files() {
        let spec = temp_spec("resume", false);
        let _ = std::fs::remove_dir_all(&spec.dir);
        let obs = Obs::disabled();
        let mut st = ServeState::open(&spec, ServeConfig::default(), &obs).unwrap();
        st.apply(&batch(1, 0, &[100, 200]), &FaultPlan::none(), 3, &obs)
            .unwrap();
        st.apply(&batch(2, 0, &[150, 250, 350]), &FaultPlan::none(), 3, &obs)
            .unwrap();
        let cells = st.window().cells_snapshot();

        // A torn journal write from a crash mid-append: structurally
        // invalid, unacknowledged, must be dropped with a count.
        std::fs::write(
            spec.dir.join("journal").join(journal_name(2, 3, 0)),
            b"SLSHARD1 torn",
        )
        .unwrap();

        let resume = CheckpointSpec {
            dir: spec.dir.clone(),
            resume: true,
        };
        let mut back = ServeState::open(&resume, ServeConfig::default(), &obs).unwrap();
        assert_eq!(back.resumed_batches(), 2);
        assert_eq!(back.torn_dropped(), 1);
        assert_eq!(back.window_stats().accepted(), 5);
        assert_eq!(
            back.window().cells_snapshot(),
            cells,
            "bit-identical refold"
        );
        // The unacknowledged batch's key is free: a client retry folds.
        let retried = back
            .apply(&batch(3, 0, &[400]), &FaultPlan::none(), 3, &obs)
            .unwrap();
        assert!(!retried.duplicate);
        std::fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn resume_refuses_a_drifted_config() {
        let spec = temp_spec("drift", false);
        let _ = std::fs::remove_dir_all(&spec.dir);
        let obs = Obs::disabled();
        let mut st = ServeState::open(&spec, ServeConfig::default(), &obs).unwrap();
        st.apply(&batch(1, 0, &[100]), &FaultPlan::none(), 3, &obs)
            .unwrap();
        drop(st);
        let resume = CheckpointSpec {
            dir: spec.dir.clone(),
            resume: true,
        };
        let drifted = ServeConfig {
            window: 8,
            ..ServeConfig::default()
        };
        let err = ServeState::open(&resume, drifted, &obs).unwrap_err();
        assert!(err.to_string().contains("header mismatch"), "{err}");
        std::fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn missing_acknowledged_journal_is_refused_on_resume() {
        let spec = temp_spec("lost", false);
        let _ = std::fs::remove_dir_all(&spec.dir);
        let obs = Obs::disabled();
        let mut st = ServeState::open(&spec, ServeConfig::default(), &obs).unwrap();
        st.apply(&batch(1, 0, &[100, 200]), &FaultPlan::none(), 3, &obs)
            .unwrap();
        drop(st);
        // Lose an acknowledged batch entirely: the watermark check must
        // refuse rather than serve silently thinner advice.
        std::fs::remove_file(spec.dir.join("journal").join(journal_name(0, 1, 0))).unwrap();
        let resume = CheckpointSpec {
            dir: spec.dir.clone(),
            resume: true,
        };
        let err = ServeState::open(&resume, ServeConfig::default(), &obs).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("watermark"), "{err}");
        std::fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn transient_journal_write_faults_retry_and_heal() {
        let spec = temp_spec("fault", false);
        let _ = std::fs::remove_dir_all(&spec.dir);
        let obs = Obs::disabled();
        let mut st = ServeState::open(&spec, ServeConfig::default(), &obs).unwrap();
        let plan = FaultPlan::parse("seed=3,write-error=0.9").unwrap();
        // Enough retries to outlast a 0.9 rate with near-certainty.
        let mut accepted = 0;
        for seq in 0..8 {
            let a = st
                .apply(&batch(1, seq, &[100 * (seq + 1)]), &plan, 64, &obs)
                .unwrap();
            accepted += a.accepted;
        }
        assert_eq!(accepted, 8, "every batch heals through retries");
        std::fs::remove_dir_all(&spec.dir).unwrap();
    }
}
