//! The `slopt-serve/1` wire protocol: length-prefixed frames over TCP.
//!
//! A frame is `[u32 LE length][u8 opcode][payload]`, where `length`
//! counts the opcode byte plus the payload. Requests and responses use
//! the same framing; a connection is a sequence of request/response
//! pairs (pipelining is not required — the reference client is strictly
//! synchronous).
//!
//! Every way a frame can be malformed is a *typed* [`ProtoError`] with a
//! stable [`ProtoError::reason_key`], so the daemon can count it as a
//! `warn.serve.proto.<reason>` counter and keep serving — a garbage
//! frame must never crash the process or poison other connections.

use slopt_sample::{decode_shard, encode_shard, Sample, ShardError};
use std::io::{self, Read, Write};

/// Request: ingest one `slopt-shard/1` batch (`INGEST_HEADER_LEN` bytes
/// of batch id, then the shard image).
pub const OP_INGEST: u8 = 0x01;
/// Request: fetch the current versioned layout advice.
pub const OP_ADVISE: u8 = 0x02;
/// Request: fetch the one-line health summary.
pub const OP_HEALTH: u8 = 0x03;
/// Request: fetch the Prometheus exposition of the daemon's counters.
pub const OP_METRICS: u8 = 0x04;
/// Request: acknowledge, then drain and shut down gracefully.
pub const OP_DRAIN: u8 = 0x05;
/// Response: success; the payload is the operation's result.
pub const OP_OK: u8 = 0x80;
/// Response: failure; the payload is a UTF-8 error message.
pub const OP_ERR: u8 = 0x81;

/// Hard cap on a frame body (opcode + payload). A shard batch of this
/// size holds ~700k samples — far above anything the collectors send —
/// while bounding what a malicious or corrupt length prefix can make
/// the daemon allocate.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The ingest payload prefix: `client_id: u64 LE, seq: u64 LE`.
pub const INGEST_HEADER_LEN: usize = 16;

/// A typed protocol decode failure. `Io` is transport-level (the peer
/// vanished mid-frame); everything else is a malformed frame the daemon
/// answers with [`OP_ERR`] and survives.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed or ended mid-frame.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The frame body is empty (no opcode byte).
    Empty,
    /// The opcode is not part of `slopt-serve/1`.
    BadOpcode(u8),
    /// An ingest payload is shorter than its fixed header.
    ShortIngest(usize),
    /// The shard image inside an ingest payload is malformed.
    Shard(ShardError),
}

impl ProtoError {
    /// Stable key for `warn.serve.proto.<reason>` counters.
    pub fn reason_key(&self) -> String {
        match self {
            ProtoError::Io(_) => "io".to_string(),
            ProtoError::Oversized(_) => "oversized".to_string(),
            ProtoError::Empty => "empty".to_string(),
            ProtoError::BadOpcode(_) => "bad_opcode".to_string(),
            ProtoError::ShortIngest(_) => "short_ingest".to_string(),
            ProtoError::Shard(e) => format!("shard.{}", e.reason_key()),
        }
    }

    /// Whether the stream is still frame-aligned after this error: the
    /// frame was read completely but its *content* was bad, so the
    /// connection can answer [`OP_ERR`] and keep going. Length-level
    /// failures (`Io`, `Oversized`) lose framing and close the
    /// connection.
    pub fn recoverable(&self) -> bool {
        !matches!(self, ProtoError::Io(_) | ProtoError::Oversized(_))
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtoError::Empty => write!(f, "empty frame (no opcode)"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::ShortIngest(n) => write!(
                f,
                "ingest payload of {n} bytes is shorter than its {INGEST_HEADER_LEN}-byte header"
            ),
            ProtoError::Shard(e) => write!(f, "bad shard image: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Writes one frame: length prefix, opcode, payload.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() + 1) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[op])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); dying *inside* a frame is `ProtoError::Io`.
/// The opcode is validated here so garbage never reaches a handler.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF at the frame boundary is a normal disconnect.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    if len == 0 {
        return Err(ProtoError::Empty);
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let op = body[0];
    if !matches!(
        op,
        OP_INGEST | OP_ADVISE | OP_HEALTH | OP_METRICS | OP_DRAIN | OP_OK | OP_ERR
    ) {
        return Err(ProtoError::BadOpcode(op));
    }
    body.remove(0);
    Ok(Some((op, body)))
}

/// One ingest batch: a client-scoped id (for exactly-once folding) and
/// the samples themselves.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestBatch {
    /// Collector identity; each collector numbers its own batches.
    pub client: u64,
    /// The collector's batch sequence number. `(client, seq)` is the
    /// idempotency key: a retried batch folds at most once.
    pub seq: u64,
    /// The batch samples, sorted by time (the shard invariant).
    pub samples: Vec<Sample>,
}

impl IngestBatch {
    /// Encodes the batch as an [`OP_INGEST`] payload: the 16-byte id
    /// header followed by an `slopt-shard/1` image.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let shard = encode_shard(&self.samples)?;
        let mut out = Vec::with_capacity(INGEST_HEADER_LEN + shard.len());
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&shard);
        Ok(out)
    }

    /// Decodes an [`OP_INGEST`] payload, validating the embedded shard
    /// image structurally (magic, version, counts, time bounds, sample
    /// order).
    pub fn decode(payload: &[u8]) -> Result<IngestBatch, ProtoError> {
        if payload.len() < INGEST_HEADER_LEN {
            return Err(ProtoError::ShortIngest(payload.len()));
        }
        let client = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let samples = decode_shard(&payload[INGEST_HEADER_LEN..]).map_err(ProtoError::Shard)?;
        Ok(IngestBatch {
            client,
            seq,
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::{BlockId, FuncId, SourceLine};
    use slopt_sim::CpuId;

    fn sample(time: u64, cpu: u16, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_ADVISE, b"").unwrap();
        write_frame(&mut buf, OP_OK, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((OP_ADVISE, Vec::new())));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((OP_OK, b"hello".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn ingest_batches_round_trip() {
        let batch = IngestBatch {
            client: 7,
            seq: 42,
            samples: vec![sample(10, 0, 3), sample(20, 1, 5)],
        };
        let payload = batch.encode().unwrap();
        assert_eq!(IngestBatch::decode(&payload).unwrap(), batch);
    }

    #[test]
    fn malformed_frames_are_typed_and_classified() {
        // Oversized length prefix: unrecoverable (framing is lost).
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.reason_key(), "oversized");
        assert!(!err.recoverable());

        // Zero-length frame: recoverable (the frame was fully consumed).
        let buf = 0u32.to_le_bytes().to_vec();
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.reason_key(), "empty");
        assert!(err.recoverable());

        // Unknown opcode.
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7f);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.reason_key(), "bad_opcode");
        assert!(err.recoverable());

        // Truncated mid-frame: transport error.
        let mut buf = 10u32.to_le_bytes().to_vec();
        buf.push(OP_ADVISE);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.reason_key(), "io");
        assert!(!err.recoverable());

        // Garbage shard image inside an otherwise well-formed ingest.
        let mut payload = vec![0u8; INGEST_HEADER_LEN];
        payload.extend_from_slice(b"NOTSHARD");
        let err = IngestBatch::decode(&payload).unwrap_err();
        assert!(err.reason_key().starts_with("shard."), "{err}");
        assert!(err.recoverable());

        // Short ingest header.
        let err = IngestBatch::decode(&[0u8; 3]).unwrap_err();
        assert_eq!(err.reason_key(), "short_ingest");
    }
}
