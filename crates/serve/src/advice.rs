//! Versioned layout advice: the pure function from retained window
//! state to the `slopt-advice/1` document.
//!
//! The version string and the advice body are functions of **retained
//! state only** (the cells currently in the window, the window range,
//! and the static analysis artifacts) — never of lifetime counters
//! like accepted/late/evicted totals. Retained state is fold-order
//! independent (DESIGN.md §17): a sample whose interval lies in the
//! final window can never be late-dropped, and everything older is
//! gone regardless of arrival order. Keeping order-dependent counters
//! out of the document is what makes advice bit-identical across
//! client interleavings, `--jobs`, injected transient faults, and
//! kill-9/resume — and `cmp`-equal to an offline run over the same
//! samples.

use slopt_core::{Suggestion, ToolParams};
use slopt_fault::{FaultKind, FaultPlan};
use slopt_ir::{par_map_supervised, RecordId, SupervisePolicy, WorkerError};
use slopt_obs::Obs;
use slopt_sample::WindowedConcurrency;
use slopt_workload::{
    analyze_obs, build_kernel, suggest_for_obs, AnalysisConfig, Kernel, KernelAnalysis,
};
use std::io;

use crate::state::ServeConfig;

/// The serve-side fault site for re-optimization workers: a seeded
/// `transient` plan makes suggestion attempts fail retryably, proving
/// supervised reopt heals without changing the advice.
pub const SITE_REOPT: &str = "serve.reopt";

/// The static half of advice computation: the measurement-run profile,
/// Field Mapping File and alias parameters. Computed once at daemon
/// start (it is the expensive part); only the concurrency map changes
/// per re-optimization.
#[derive(Debug)]
pub struct Advisor {
    kernel: Kernel,
    analysis: KernelAnalysis,
    jobs: usize,
    policy: SupervisePolicy,
    plan: FaultPlan,
}

/// The analysis configuration the advisor derives its static artifacts
/// under. The interval is the serve interval, so live CC cells and the
/// offline pipeline are directly comparable.
pub fn analysis_config(cfg: &ServeConfig) -> AnalysisConfig {
    AnalysisConfig {
        interval: cfg.interval,
        ..AnalysisConfig::default()
    }
}

/// A rendered advice document plus its re-optimization fault report.
#[derive(Clone, Debug)]
pub struct Advice {
    /// The full `slopt-advice/1` document.
    pub text: String,
    /// The version token (also the first header field).
    pub version: String,
    /// Records whose suggestion was holed by a permanent fault or
    /// deadline (rendered as `degraded` in the document).
    pub holed: usize,
}

impl Advisor {
    /// Runs the static analysis once and readies the advisor.
    pub fn new(
        cfg: &ServeConfig,
        jobs: usize,
        policy: SupervisePolicy,
        plan: FaultPlan,
        obs: &Obs,
    ) -> Advisor {
        let kernel = build_kernel();
        let analysis = analyze_obs(
            &kernel,
            &slopt_workload::SdetConfig::default(),
            &analysis_config(cfg),
            obs,
        );
        Advisor {
            kernel,
            analysis,
            jobs,
            policy,
            plan,
        }
    }

    /// Computes the advice document for the window's current retained
    /// state. Suggestions run per record under the supervised pool
    /// (cooperative deadline, transient-fault retry); a quarantined
    /// record renders as `degraded`, never silently stale.
    pub fn advise(&mut self, win: &mut WindowedConcurrency, obs: &Obs) -> Advice {
        let _span = obs.span("serve.reopt");
        let cells = win.cells_snapshot();
        let version = version_token(win, &cells);
        let range = win.window_range();
        // Substitute the live window into the static analysis: the
        // suggestion pipeline downstream of CC is unchanged.
        self.analysis.concurrency = win.concurrency_jobs(self.jobs);

        let records: Vec<(char, RecordId)> = self.kernel.records.all().to_vec();
        let plan = &self.plan;
        let kernel = &self.kernel;
        let analysis = &self.analysis;
        let (suggestions, report) = par_map_supervised(
            self.jobs,
            &records,
            &self.policy,
            |i, &(_, rec), attempt| -> Result<Suggestion, WorkerError> {
                if plan.fires(FaultKind::Transient, SITE_REOPT, i as u64, attempt) {
                    return Err(WorkerError::transient(format!(
                        "injected transient reopt fault (record {i}, attempt {attempt})"
                    )));
                }
                Ok(suggest_for_obs(
                    kernel,
                    analysis,
                    rec,
                    ToolParams::default(),
                    &Obs::disabled(),
                ))
            },
        );
        if report.retries > 0 {
            obs.counter("retry.attempts", report.retries);
        }
        if report.recovered > 0 {
            obs.counter("retry.recovered", report.recovered as u64);
        }
        let holed = records.len() - report.completed;
        if holed > 0 {
            obs.warning_n("serve.reopt_holed", holed as u64);
        }

        let mut text = String::new();
        let (lo, hi) = range.unwrap_or((0, 0));
        text.push_str(&format!(
            "slopt-advice/1 version={version} interval={} window={lo}..{hi} retained={} cells={} records={}\n",
            win.config().interval,
            win.retained_samples(),
            cells.len(),
            records.len(),
        ));
        for (i, (letter, rec)) in records.iter().enumerate() {
            let ty = self.kernel.record_type(*rec);
            text.push_str(&format!("record {letter} ({})\n", ty.name()));
            match &suggestions[i] {
                Some(s) => {
                    for line in s.layout.to_annotated_string(ty).lines() {
                        text.push_str("  ");
                        text.push_str(line);
                        text.push('\n');
                    }
                }
                None => {
                    let why = report
                        .poisoned
                        .iter()
                        .find(|p| p.index == i)
                        .map(|p| format!("{:?}", p.kind))
                        .unwrap_or_else(|| "unknown".to_string());
                    text.push_str(&format!("  degraded: {why}\n"));
                }
            }
        }
        Advice {
            text,
            version,
            holed,
        }
    }
}

/// The version token: an FNV-1a digest of the retained cells and the
/// window placement. Two states with the same retained samples produce
/// the same token, however they were reached.
pub fn version_token(win: &WindowedConcurrency, cells: &[(u128, u64)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&win.config().interval.to_le_bytes());
    eat(&win.window().to_le_bytes());
    let (lo, hi) = win.window_range().unwrap_or((0, 0));
    eat(&lo.to_le_bytes());
    eat(&hi.to_le_bytes());
    for (key, count) in cells {
        eat(&key.to_le_bytes());
        eat(&count.to_le_bytes());
    }
    format!("{h:016x}")
}

/// Computes the advice an offline run over `dir`'s shard files yields:
/// the differential reference for everything the daemon serves. Walks
/// `dir` recursively, folds every `*.slshard` file through the same
/// windowed fold, and renders through the same advisor — so equality
/// with the daemon is `cmp`-exact whenever both saw the same samples.
/// Structurally invalid shard files are skipped with a counted warning
/// (`warn.serve.offline_skipped`), mirroring the ingest path.
pub fn offline_advice(
    dir: &std::path::Path,
    cfg: &ServeConfig,
    jobs: usize,
    policy: SupervisePolicy,
    plan: FaultPlan,
    obs: &Obs,
) -> io::Result<Advice> {
    let mut files = Vec::new();
    collect_shards(dir, &mut files)?;
    files.sort();
    let mut win = WindowedConcurrency::new(
        slopt_sample::ConcurrencyConfig {
            interval: cfg.interval,
        },
        cfg.window,
    );
    for path in &files {
        match slopt_sample::read_shard(path) {
            Ok(samples) => {
                win.ingest(&samples);
            }
            Err(e) => {
                obs.warning("serve.offline_skipped");
                eprintln!("[offline] skipping {}: {e}", path.display());
            }
        }
    }
    let mut advisor = Advisor::new(cfg, jobs, policy, plan, obs);
    Ok(advisor.advise(&mut win, obs))
}

fn collect_shards(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_shards(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "slshard") {
            out.push(path);
        }
    }
    Ok(())
}
