//! The always-available advisory daemon: supervised ingest over TCP,
//! lazy + periodic re-optimization, health/metrics endpoints, graceful
//! drain.
//!
//! # Availability mechanics
//!
//! * **Per-connection panic containment** — each frame is handled under
//!   `catch_unwind`; a panicking handler (including injected `panic`
//!   faults) costs one `warn.serve.conn_panic` counter and an error
//!   reply, never the process.
//! * **Typed protocol errors** — malformed frames become
//!   `warn.serve.proto.<reason>` counters plus an [`OP_ERR`] reply when
//!   framing survives, or a closed connection when it does not.
//! * **Bounded queue, real backpressure** — ingest flows through a
//!   `sync_channel` of fixed depth into the single fold thread; when
//!   folding falls behind, senders block, which blocks their
//!   connection, which backpressures the collector through TCP.
//! * **Graceful drain** — on shutdown the acceptor stops, in-flight
//!   requests finish (connections poll the drain flag on a read
//!   timeout), queued batches fold, and only then does the run loop
//!   return.
//!
//! [`OP_ERR`]: crate::proto::OP_ERR

use slopt_bench::CheckpointSpec;
use slopt_fault::FaultPlan;
use slopt_ir::SupervisePolicy;
use slopt_obs::Obs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::advice::{Advice, Advisor};
use crate::proto::{
    read_frame, write_frame, IngestBatch, ProtoError, OP_ADVISE, OP_DRAIN, OP_ERR, OP_HEALTH,
    OP_INGEST, OP_METRICS, OP_OK,
};
use crate::state::{Applied, ServeConfig, ServeState};

/// The serve-side fault site for connection handlers: a seeded `panic`
/// plan makes frame handling panic, exercising containment.
pub const SITE_CONN: &str = "serve.conn";

/// File inside the state directory where the daemon publishes its bound
/// address (the CI harness binds port 0 and discovers it here).
pub const ADDR_FILE: &str = "addr";

/// Everything a daemon run needs, as plain data.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// State directory + resume flag (journal, meta log, addr file).
    pub spec: CheckpointSpec,
    /// Fold parameters (interval, window).
    pub serve: ServeConfig,
    /// Worker threads for re-optimization (advice is jobs-invariant).
    pub jobs: usize,
    /// Periodic re-optimization cadence; 0 computes advice lazily on
    /// demand only.
    pub reopt_ms: u64,
    /// Ingest queue depth (bounded; senders block when full).
    pub queue: usize,
    /// Retry budget for transient journal I/O.
    pub max_retries: u32,
    /// Supervision policy for re-optimization workers.
    pub policy: SupervisePolicy,
    /// Seeded fault plan ([`SITE_CONN`], [`crate::state::SITE_JOURNAL`],
    /// [`crate::advice::SITE_REOPT`]).
    pub plan: FaultPlan,
}

impl DaemonConfig {
    /// A local daemon on an ephemeral port with no fault injection.
    pub fn local(dir: impl Into<std::path::PathBuf>, resume: bool) -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            spec: CheckpointSpec {
                dir: dir.into(),
                resume,
            },
            serve: ServeConfig::default(),
            jobs: 2,
            reopt_ms: 0,
            queue: 64,
            max_retries: 6,
            policy: SupervisePolicy::default(),
            plan: FaultPlan::none(),
        }
    }
}

struct Shared {
    state: Mutex<ServeState>,
    advisor: Mutex<Advisor>,
    /// Cached advice keyed by the state revision that produced it.
    advice: Mutex<(u64, Arc<Advice>)>,
    obs: Obs,
    plan: FaultPlan,
    max_retries: u32,
    shutdown: Arc<AtomicBool>,
    frame_counter: AtomicU64,
}

impl Shared {
    /// Returns advice for the current state revision, recomputing only
    /// when stale. The cache lock is held across recomputation so
    /// concurrent requests serialize instead of duplicating the reopt.
    fn advice(&self) -> Arc<Advice> {
        let mut cache = self.advice.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        if cache.0 == state.rev() {
            return Arc::clone(&cache.1);
        }
        let rev = state.rev();
        let mut advisor = self.advisor.lock().unwrap();
        let advice = Arc::new(advisor.advise(state.window(), &self.obs));
        *cache = (rev, Arc::clone(&advice));
        self.obs.counter("serve.reopt.runs", 1);
        advice
    }

    fn health_line(&self) -> String {
        let state = self.state.lock().unwrap();
        let w = state.window_stats();
        let (lo, hi) = w.window_range().unwrap_or((0, 0));
        format!(
            "ok rev={} retained={} accepted={} late={} evicted={} window={lo}..{hi} resumed_batches={} torn_dropped={}",
            state.rev(),
            w.retained_samples(),
            w.accepted(),
            w.late_dropped(),
            w.evicted_samples(),
            state.resumed_batches(),
            state.torn_dropped(),
        )
    }

    fn metrics_text(&self) -> String {
        slopt_obs::prom::MetricsSnapshot::from_summary(&self.obs.summary()).to_prometheus()
    }
}

/// A ingest job traveling from a connection to the fold thread.
struct Job {
    batch: IngestBatch,
    reply: SyncSender<io::Result<Applied>>,
}

/// A started daemon: its bound address and the means to stop it.
#[derive(Debug)]
pub struct DaemonHandle {
    /// The actually-bound address (resolves `:0`).
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl DaemonHandle {
    /// The flag that initiates a graceful drain when set (shared with
    /// the run loop; a SIGTERM handler can set it directly).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Initiates a graceful drain and waits for the run loop to finish.
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(join) => join.join().expect("daemon run loop must not panic"),
            None => Ok(()),
        }
    }

    /// Waits for the run loop to finish without initiating shutdown
    /// (it ends on its own after a drain request or shutdown signal).
    pub fn wait(mut self) -> io::Result<()> {
        match self.join.take() {
            Some(join) => join.join().expect("daemon run loop must not panic"),
            None => Ok(()),
        }
    }
}

/// Opens the state, runs the static analysis, binds the listener,
/// publishes the bound address into the state directory, and starts the
/// accept/fold/reopt threads. Returns once the daemon is serving.
pub fn start(cfg: DaemonConfig, obs: &Obs) -> io::Result<DaemonHandle> {
    let state = ServeState::open(&cfg.spec, cfg.serve.clone(), obs)?;
    let mut advisor = Advisor::new(
        &cfg.serve,
        cfg.jobs,
        cfg.policy.clone(),
        cfg.plan.clone(),
        obs,
    );

    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    std::fs::create_dir_all(&cfg.spec.dir)?;
    std::fs::write(cfg.spec.dir.join(ADDR_FILE), format!("{addr}\n"))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = {
        let mut state = state;
        // Advice is available from the first request on: compute the
        // initial document (possibly over resumed state) before
        // accepting connections.
        let initial = Arc::new(advisor.advise(state.window(), obs));
        let rev = state.rev();
        Arc::new(Shared {
            state: Mutex::new(state),
            advisor: Mutex::new(advisor),
            advice: Mutex::new((rev, initial)),
            obs: obs.clone(),
            plan: cfg.plan.clone(),
            max_retries: cfg.max_retries,
            shutdown: Arc::clone(&shutdown),
            frame_counter: AtomicU64::new(0),
        })
    };

    let (ingest_tx, ingest_rx) = sync_channel::<Job>(cfg.queue.max(1));
    let run_shared = Arc::clone(&shared);
    let run_shutdown = Arc::clone(&shutdown);
    let reopt_ms = cfg.reopt_ms;
    let join = std::thread::Builder::new()
        .name("slopt-serve-run".to_string())
        .spawn(move || {
            run_loop(
                listener,
                run_shared,
                run_shutdown,
                ingest_tx,
                ingest_rx,
                reopt_ms,
            )
        })?;

    Ok(DaemonHandle {
        addr,
        shutdown,
        join: Some(join),
    })
}

fn run_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    ingest_tx: SyncSender<Job>,
    ingest_rx: Receiver<Job>,
    reopt_ms: u64,
) -> io::Result<()> {
    // The fold thread: the only writer of the windowed state, so batch
    // application is totally ordered — that order *is* the journal
    // order a resume replays.
    let fold_shared = Arc::clone(&shared);
    let fold = std::thread::Builder::new()
        .name("slopt-serve-fold".to_string())
        .spawn(move || {
            while let Ok(job) = ingest_rx.recv() {
                let result = {
                    let mut state = fold_shared.state.lock().unwrap();
                    let r = state.apply(
                        &job.batch,
                        &fold_shared.plan,
                        fold_shared.max_retries,
                        &fold_shared.obs,
                    );
                    let w = state.window_stats();
                    fold_shared
                        .obs
                        .gauge("serve.retained", w.retained_samples() as f64);
                    r
                };
                // The requester may have died (contained panic): a
                // failed reply send is not an error.
                let _ = job.reply.send(result);
            }
        })?;

    // Periodic re-optimization: keeps the cached advice close to the
    // live window even when nobody asks, so an ADVISE after a burst of
    // ingest is served from cache instead of paying the reopt latency.
    let reopt_handle = if reopt_ms > 0 {
        let reopt_shared = Arc::clone(&shared);
        let reopt_shutdown = Arc::clone(&shutdown);
        Some(
            std::thread::Builder::new()
                .name("slopt-serve-reopt".to_string())
                .spawn(move || {
                    while !reopt_shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(reopt_ms.min(50)));
                        // Sleep in short hops so shutdown stays prompt.
                        let stale = {
                            let cache = reopt_shared.advice.lock().unwrap();
                            let state = reopt_shared.state.lock().unwrap();
                            cache.0 != state.rev()
                        };
                        if stale {
                            let _ = reopt_shared.advice();
                        }
                    }
                })?,
        )
    } else {
        None
    };

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conn_id: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                conn_id += 1;
                let conn_shared = Arc::clone(&shared);
                let conn_tx = ingest_tx.clone();
                let id = conn_id;
                conns.push(
                    std::thread::Builder::new()
                        .name(format!("slopt-serve-conn-{id}"))
                        .spawn(move || handle_conn(stream, &conn_shared, conn_tx))?,
                );
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                shared.obs.warning("serve.accept");
                eprintln!("[serve] accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Drain: no new connections; existing ones observe the flag at
    // their next read timeout and close after finishing the in-flight
    // request. Their queued batches fold before the fold thread exits.
    for conn in conns {
        let _ = conn.join();
    }
    drop(ingest_tx);
    fold.join().expect("fold thread must not panic");
    if let Some(h) = reopt_handle {
        let _ = h.join();
    }
    shared.obs.counter("serve.drained", 1);
    Ok(())
}

fn handle_conn(stream: TcpStream, shared: &Shared, ingest_tx: SyncSender<Job>) {
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean disconnect
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // drained
                }
                continue;
            }
            Err(e) => {
                shared
                    .obs
                    .warning(&format!("serve.proto.{}", e.reason_key()));
                if e.recoverable() {
                    let _ = write_frame(&mut stream, OP_ERR, e.to_string().as_bytes());
                    continue;
                }
                return; // framing lost
            }
        };
        // Panic containment boundary: whatever a handler does to this
        // frame, the connection (and the daemon) survives it.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_frame(&mut stream, shared, &ingest_tx, frame)
        }));
        match outcome {
            Ok(ConnFlow::Continue) => {}
            Ok(ConnFlow::Close) => return,
            Err(_) => {
                shared.obs.warning("serve.conn_panic");
                let _ = write_frame(
                    &mut stream,
                    OP_ERR,
                    b"internal error: contained panic; retry",
                );
            }
        }
    }
}

enum ConnFlow {
    Continue,
    Close,
}

fn handle_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    ingest_tx: &SyncSender<Job>,
    (op, payload): (u8, Vec<u8>),
) -> ConnFlow {
    match op {
        OP_INGEST => {
            let frame_idx = shared.frame_counter.fetch_add(1, Ordering::Relaxed);
            if shared
                .plan
                .fires(slopt_fault::FaultKind::Panic, SITE_CONN, frame_idx, 0)
            {
                shared.obs.warning("fault.injected.panic");
                panic!("injected connection panic (frame #{frame_idx})");
            }
            let batch = match IngestBatch::decode(&payload) {
                Ok(batch) => batch,
                Err(e) => {
                    shared
                        .obs
                        .warning(&format!("serve.proto.{}", e.reason_key()));
                    let _ = write_frame(stream, OP_ERR, e.to_string().as_bytes());
                    return ConnFlow::Continue;
                }
            };
            let (reply_tx, reply_rx) = sync_channel(1);
            let job = Job {
                batch,
                reply: reply_tx,
            };
            // Bounded queue: this send blocks when the fold thread is
            // behind — backpressure, not an unbounded buffer.
            if ingest_tx.send(job).is_err() {
                let _ = write_frame(stream, OP_ERR, b"draining");
                return ConnFlow::Close;
            }
            match reply_rx.recv() {
                Ok(Ok(applied)) => {
                    let ack = format!(
                        "accepted={} late={} dup={}",
                        applied.accepted,
                        applied.late,
                        u8::from(applied.duplicate)
                    );
                    let _ = write_frame(stream, OP_OK, ack.as_bytes());
                }
                Ok(Err(e)) => {
                    let _ = write_frame(
                        stream,
                        OP_ERR,
                        format!("ingest failed: {e}; retry").as_bytes(),
                    );
                }
                Err(_) => {
                    let _ = write_frame(stream, OP_ERR, b"fold thread gone (draining)");
                    return ConnFlow::Close;
                }
            }
            ConnFlow::Continue
        }
        OP_ADVISE => {
            let advice = shared.advice();
            let _ = write_frame(stream, OP_OK, advice.text.as_bytes());
            ConnFlow::Continue
        }
        OP_HEALTH => {
            let _ = write_frame(stream, OP_OK, shared.health_line().as_bytes());
            ConnFlow::Continue
        }
        OP_METRICS => {
            let _ = write_frame(stream, OP_OK, shared.metrics_text().as_bytes());
            ConnFlow::Continue
        }
        OP_DRAIN => {
            let _ = write_frame(stream, OP_OK, b"draining");
            shared.shutdown.store(true, Ordering::SeqCst);
            ConnFlow::Close
        }
        other => {
            shared.obs.warning("serve.proto.bad_opcode");
            let _ = write_frame(
                stream,
                OP_ERR,
                format!("opcode 0x{other:02x} is not a request").as_bytes(),
            );
            ConnFlow::Continue
        }
    }
}
