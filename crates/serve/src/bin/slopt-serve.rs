//! The `slopt-serve` binary: daemon mode (default), offline differential
//! reference (`--offline DIR`), and deterministic CI shard emission
//! (`--emit-samples DIR`).

use slopt_bench::{CheckpointSpec, CommonArgs};
use slopt_fault::{exit, FaultPlan};
use slopt_ir::SupervisePolicy;
use slopt_obs::Obs;
use slopt_serve::{offline_advice, DaemonConfig, ServeConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const ABOUT: &str = "always-available continuous layout-advisory daemon \
(windowed decaying Code Concurrency over slopt-shard/1 ingest)";

const EXTRA_HELP: &str = "SERVE OPTIONS:
    --addr HOST:PORT     Bind address (default 127.0.0.1:0; the bound
                         address is written to <state-dir>/addr).
    --window N           Window size in whole CC intervals (default 4096);
                         samples older than the window decay out.
    --interval N         CC interval length in cycles (default 6000).
    --reopt-ms N         Re-optimize the cached advice every N ms when the
                         window changed (default 0: lazily on request).
    --offline DIR        Don't serve: fold every *.slshard under DIR and
                         print the advice an offline run yields (the
                         differential reference for the daemon).
    --advice-out PATH    With --offline: write the advice there instead of
                         stdout.
    --emit-samples DIR   Don't serve: split the deterministic measurement
                         sample stream into per-client shard files under
                         DIR (client<c>/b<seq>.slshard) for the CI soak.
    --clients N          With --emit-samples: collector count (default 3).
    --batches N          With --emit-samples: batches per client (default 8).

The daemon's state directory is --checkpoint-dir (required in daemon
mode); --resume refolds the journal there, reproducing the pre-crash
window bit-exactly.";

const EXTRAS: &[(&str, bool)] = &[
    ("--addr", true),
    ("--window", true),
    ("--interval", true),
    ("--reopt-ms", true),
    ("--offline", true),
    ("--advice-out", true),
    ("--emit-samples", true),
    ("--clients", true),
    ("--batches", true),
];

/// Set by the SIGTERM handler; polled by the daemon main loop.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

fn install_sigterm() {
    // Minimal libc-free signal(2) binding: the handler only stores to an
    // atomic, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    const SIGINT: i32 = 2;
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

fn extra_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .rposition(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn extra_u64(argv: &[String], flag: &str, default: u64) -> u64 {
    match extra_value(argv, flag) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("slopt-serve: bad value `{raw}` for {flag} (expected an unsigned integer)");
            std::process::exit(i32::from(exit::USAGE));
        }),
    }
}

fn main() {
    let args = CommonArgs::from_env_or_exit("slopt-serve", ABOUT, EXTRA_HELP, EXTRAS);
    let argv: Vec<String> = std::env::args().skip(1).collect();

    let serve = ServeConfig {
        interval: extra_u64(&argv, "--interval", 6_000),
        window: extra_u64(&argv, "--window", 4_096),
    };
    let plan = args
        .fault
        .as_ref()
        .map(|f| f.plan.clone())
        .unwrap_or_else(FaultPlan::none);
    let policy = args
        .fault
        .as_ref()
        .map(|f| f.policy.clone())
        .unwrap_or_default();
    let max_retries = policy.max_retries;

    // The daemon always aggregates (its /metrics endpoint is live data),
    // upgrading to a trace file under --trace-out.
    let obs = match args.trace_out.as_deref() {
        Some(path) => Obs::to_trace_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("slopt-serve: cannot open trace output {path}: {e}");
            std::process::exit(1);
        }),
        None => Obs::aggregating(),
    };

    let code = if let Some(dir) = extra_value(&argv, "--emit-samples") {
        emit_samples(
            &PathBuf::from(dir),
            &serve,
            extra_u64(&argv, "--clients", 3),
            extra_u64(&argv, "--batches", 8),
            &obs,
        )
    } else if let Some(dir) = extra_value(&argv, "--offline") {
        offline(
            &PathBuf::from(dir),
            extra_value(&argv, "--advice-out"),
            &serve,
            args.jobs,
            policy,
            plan,
            &obs,
        )
    } else {
        daemon(&args, &argv, serve, policy, plan, max_retries, &obs)
    };

    obs.finish();
    if args.stats && obs.enabled() {
        println!("=== run stats ===");
        print!("{}", obs.summary());
    }
    std::process::exit(code);
}

fn daemon(
    args: &CommonArgs,
    argv: &[String],
    serve: ServeConfig,
    policy: SupervisePolicy,
    plan: FaultPlan,
    max_retries: u32,
    obs: &Obs,
) -> i32 {
    let Some(spec) = args.checkpoint_spec() else {
        eprintln!("slopt-serve: daemon mode needs --checkpoint-dir (the state directory)");
        return i32::from(exit::USAGE);
    };
    install_sigterm();
    let cfg = DaemonConfig {
        addr: extra_value(argv, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        spec: CheckpointSpec {
            dir: spec.dir,
            resume: args.resume,
        },
        serve,
        jobs: args.jobs,
        reopt_ms: extra_u64(argv, "--reopt-ms", 0),
        queue: 64,
        max_retries,
        policy,
        plan,
    };
    let state_dir = cfg.spec.dir.clone();
    let handle = match slopt_serve::start(cfg, obs) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("slopt-serve: cannot start: {e}");
            return 1;
        }
    };
    eprintln!(
        "[serve] listening on {} (state: {})",
        handle.addr,
        state_dir.display()
    );
    let flag = handle.shutdown_flag();
    while !TERM.load(Ordering::SeqCst) && !flag.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("[serve] draining");
    match handle.stop() {
        Ok(()) => {
            eprintln!("[serve] drained");
            0
        }
        Err(e) => {
            eprintln!("slopt-serve: drain failed: {e}");
            1
        }
    }
}

fn offline(
    dir: &std::path::Path,
    advice_out: Option<String>,
    serve: &ServeConfig,
    jobs: usize,
    policy: SupervisePolicy,
    plan: FaultPlan,
    obs: &Obs,
) -> i32 {
    match offline_advice(dir, serve, jobs, policy, plan, obs) {
        Ok(advice) => match advice_out {
            Some(path) => match std::fs::write(&path, &advice.text) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("slopt-serve: cannot write {path}: {e}");
                    1
                }
            },
            None => {
                print!("{}", advice.text);
                0
            }
        },
        Err(e) => {
            eprintln!(
                "slopt-serve: offline fold over {} failed: {e}",
                dir.display()
            );
            i32::from(exit::BAD_INPUT)
        }
    }
}

/// Splits the deterministic measurement-run sample stream into
/// per-client shard batches: chunk `k` of `clients * batches` contiguous
/// chunks goes to client `k % clients` as its sequence `k / clients`.
/// Contiguous chunks keep each shard time-sorted (the shard invariant),
/// and the round-robin assignment means replaying clients concurrently
/// interleaves genuinely overlapping time ranges.
fn emit_samples(
    dir: &std::path::Path,
    serve: &ServeConfig,
    clients: u64,
    batches: u64,
    obs: &Obs,
) -> i32 {
    let kernel = slopt_workload::build_kernel();
    let analysis = slopt_workload::analyze_obs(
        &kernel,
        &slopt_workload::SdetConfig::default(),
        &slopt_serve::advice::analysis_config(serve),
        obs,
    );
    // The analysis stream is grouped, not globally time-ordered; the
    // shard invariant wants time order. Stable sort keeps determinism.
    let mut samples = analysis.samples;
    samples.sort_by_key(|s| s.time);
    let chunks = (clients * batches).max(1) as usize;
    let per = samples.len().div_ceil(chunks);
    let mut written = 0u64;
    for k in 0..chunks {
        let lo = (k * per).min(samples.len());
        let hi = ((k + 1) * per).min(samples.len());
        if lo >= hi {
            continue;
        }
        let client = (k as u64) % clients;
        let seq = (k as u64) / clients;
        let cdir = dir.join(format!("client{client:02}"));
        if let Err(e) = std::fs::create_dir_all(&cdir) {
            eprintln!("slopt-serve: cannot create {}: {e}", cdir.display());
            return 1;
        }
        let path = cdir.join(format!("b{seq:04}.slshard"));
        if let Err(e) = slopt_sample::write_shard(&path, &samples[lo..hi]) {
            eprintln!("slopt-serve: cannot write {}: {e}", path.display());
            return 1;
        }
        written += 1;
    }
    eprintln!(
        "[serve] emitted {written} shard batches ({} samples) under {}",
        samples.len(),
        dir.display()
    );
    0
}
