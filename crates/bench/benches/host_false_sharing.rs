//! Real-hardware false-sharing demonstration with `#[repr(C)]` layout
//! control — the motivation experiment on the machine this benchmark runs
//! on (the reproduction's analogue of measuring on real HP hardware).
//!
//! Two layouts of the same "statistics block":
//!
//! * **packed** — 8 atomic counters contiguous in one or two cache lines
//!   (what sort-by-hotness would produce);
//! * **isolated** — each counter alone on a 128-byte-aligned line (what
//!   the paper's tool produces for struct A).
//!
//! Each worker thread hammers its own counter; the packed layout forces
//! coherence traffic between threads that share no data. Expect the
//! isolated layout to be several times faster at 4+ threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

const COUNTERS: usize = 8;
const OPS_PER_THREAD: u64 = 200_000;

/// Counters packed shoulder to shoulder: classic false sharing.
#[repr(C)]
struct Packed {
    counters: [AtomicU64; COUNTERS],
}

/// One counter per 128-byte coherence block (Itanium L2 line size; also a
/// safe upper bound for x86's 64 B lines and adjacent-line prefetchers).
#[repr(C, align(128))]
struct IsolatedSlot {
    counter: AtomicU64,
    _pad: [u8; 120],
}

#[repr(C)]
struct Isolated {
    slots: [IsolatedSlot; COUNTERS],
}

fn new_packed() -> Packed {
    Packed {
        counters: std::array::from_fn(|_| AtomicU64::new(0)),
    }
}

fn new_isolated() -> Isolated {
    Isolated {
        slots: std::array::from_fn(|_| IsolatedSlot {
            counter: AtomicU64::new(0),
            _pad: [0; 120],
        }),
    }
}

fn hammer(counters: &[&AtomicU64], threads: usize) {
    thread::scope(|s| {
        for t in 0..threads {
            let counter = counters[t % counters.len()];
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
}

fn bench_false_sharing(c: &mut Criterion) {
    let max_threads = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    if max_threads < 2 {
        eprintln!(
            "host_false_sharing: only {max_threads} hardware thread(s) available; \
             running the 2-thread case anyway — expect a muted effect (threads \
             timeshare one core, so no real coherence traffic)."
        );
    }
    let mut group = c.benchmark_group("host_false_sharing");
    for &threads in &[2usize, 4, 8] {
        // Always measure the smallest case so the bench produces output on
        // any machine; skip only the larger over-subscriptions.
        if threads > max_threads.max(2) {
            continue;
        }
        group.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));
        group.bench_with_input(BenchmarkId::new("packed", threads), &threads, |b, &t| {
            let packed = new_packed();
            let refs: Vec<&AtomicU64> = packed.counters.iter().collect();
            b.iter(|| hammer(&refs, t));
        });
        group.bench_with_input(BenchmarkId::new("isolated", threads), &threads, |b, &t| {
            let isolated = new_isolated();
            let refs: Vec<&AtomicU64> = isolated.slots.iter().map(|s| &s.counter).collect();
            b.iter(|| hammer(&refs, t));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_false_sharing);
criterion_main!(benches);
