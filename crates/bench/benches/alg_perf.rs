//! Criterion micro-benchmarks of the tool itself: FLG construction,
//! greedy clustering scaling, the MESI memory system, and the
//! multiprocessor engine — the cost side of the paper's "practical,
//! scales to millions of lines" claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slopt_core::{cluster, Flg, FlgRef};
use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::interp::SplitMix64;
use slopt_ir::source::SourceLine;
use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType};
use slopt_sample::{ConcurrencyConfig, ConcurrencyMap, Sample};
use slopt_sim::{CacheConfig, CpuId, LatencyModel, MemSystem, Topology};

fn record_u64(n: usize) -> RecordType {
    RecordType::new(
        "S",
        (0..n)
            .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
            .collect(),
    )
}

/// Random edge soup with `n` fields and ~`edges_per_field` edges each.
fn random_flg_parts(
    n: usize,
    edges_per_field: usize,
    seed: u64,
) -> (Vec<u64>, Vec<(FieldIdx, FieldIdx, f64)>) {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for _ in 0..edges_per_field {
            let j = (rng.next_u64() % n as u64) as u32;
            if i != j {
                let w = rng.next_f64() * 200.0 - 50.0; // skewed positive
                edges.push((FieldIdx(i), FieldIdx(j), w));
            }
        }
    }
    let hotness: Vec<u64> = (0..n).map(|_| rng.next_u64() % 10_000).collect();
    (hotness, edges)
}

/// Random FLG with `n` fields and ~`edges_per_field` edges each.
fn random_flg(n: usize, edges_per_field: usize, seed: u64) -> Flg {
    let (hotness, edges) = random_flg_parts(n, edges_per_field, seed);
    Flg::from_parts(RecordId(0), hotness, edges)
}

/// Deterministic synthetic PMU stream for the concurrency benches.
fn random_samples(n: usize, cpus: u16, lines: u32, span: u64, seed: u64) -> Vec<Sample> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Sample {
            cpu: CpuId((rng.next_u64() % cpus as u64) as u16),
            time: rng.next_u64() % span,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine((rng.next_u64() % lines as u64) as u32),
        })
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for &n in &[32usize, 128, 512] {
        let flg = random_flg(n, 6, 42);
        let rec = record_u64(n);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| cluster(&flg, &rec, 128))
        });
    }
    group.finish();
}

fn bench_flg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("flg");
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::new("from_parts", n), &n, |b, &n| {
            b.iter(|| random_flg(n, 6, 7))
        });
        // Dense triangular vs hash-map reference on the identical edge
        // soup: construction cost only.
        let (hotness, edges) = random_flg_parts(n, 6, 7);
        group.bench_with_input(BenchmarkId::new("dense_build", n), &n, |b, _| {
            b.iter(|| Flg::from_parts(RecordId(0), hotness.clone(), edges.iter().copied()))
        });
        group.bench_with_input(BenchmarkId::new("reference_build", n), &n, |b, _| {
            b.iter(|| FlgRef::from_parts(RecordId(0), hotness.clone(), edges.iter().copied()))
        });
    }
    group.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency");
    for &n in &[20_000usize, 80_000] {
        let samples = random_samples(n, 16, 400, 100_000, 0xCC);
        let cfg = ConcurrencyConfig { interval: 1_000 };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("from_samples", n), &n, |b, _| {
            b.iter(|| ConcurrencyMap::from_samples(&samples, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| slopt_sample::concurrency_map_naive(&samples, &cfg))
        });
    }
    group.finish();
}

fn bench_memsystem(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsystem");
    group.throughput(Throughput::Elements(100_000));

    // Private working sets: almost all hits.
    group.bench_function("private_hits", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(
                Topology::superdome(16),
                LatencyModel::superdome(),
                CacheConfig {
                    line_size: 128,
                    sets: 256,
                    ways: 8,
                },
            );
            let mut total = 0u64;
            for i in 0..100_000u64 {
                let cpu = CpuId((i % 16) as u16);
                let addr = 0x10_0000 + (cpu.0 as u64) * 0x1_0000 + (i % 64) * 8;
                total += m.access(cpu, addr, 8, i % 7 == 0, None, i);
            }
            total
        })
    });

    // Heavy contention: all CPUs ping-pong one line.
    group.bench_function("contended_line", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(
                Topology::superdome(16),
                LatencyModel::superdome(),
                CacheConfig {
                    line_size: 128,
                    sets: 256,
                    ways: 8,
                },
            );
            let mut total = 0u64;
            for i in 0..100_000u64 {
                let cpu = CpuId((i % 16) as u16);
                total += m.access(cpu, 0x20_0000 + (cpu.0 as u64 % 8) * 8, 8, true, None, i);
            }
            total
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    use slopt_workload::{baseline_layouts, build_kernel, run_once, Machine, SdetConfig};
    let kernel = build_kernel();
    let cfg = SdetConfig {
        scripts_per_cpu: 8,
        pool_instances: 64,
        cache: CacheConfig {
            line_size: 128,
            sets: 128,
            ways: 4,
        },
        ..SdetConfig::default()
    };
    let layouts = baseline_layouts(&kernel, cfg.line_size);
    let machine = Machine::superdome(16);
    c.bench_function("engine/sdet_16way", |b| {
        b.iter(|| {
            run_once(
                &kernel,
                &layouts,
                &machine,
                &cfg,
                3,
                &mut slopt_sim::NullObserver,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_clustering,
    bench_flg_build,
    bench_concurrency,
    bench_memsystem,
    bench_engine
);
criterion_main!(benches);
