//! Property tests for the shared [`CommonArgs`] parser.
//!
//! Two contracts the experiment binaries lean on:
//!
//! 1. **Order-invariance** — any permutation of well-formed flag groups
//!    parses to the *same* `CommonArgs`. Recipes in EXPERIMENTS.md can
//!    list flags in whatever order reads best.
//! 2. **Strictness with position** — a malformed or missing value for
//!    any known flag is an [`slopt_bench::ArgError`] pointing at the
//!    offending 1-based argument position (rendered `arg N: ...`), the
//!    way a compiler points at line/column. No silent fallback to
//!    defaults. Unknown dash-prefixed tokens (typos) are errors too,
//!    unless the binary registered them as extras via
//!    [`CommonArgs::parse_with`].

use proptest::prelude::*;
use slopt_bench::CommonArgs;

/// Reorders `groups` by the random sort `keys` (one key per slot; ties
/// resolve stably, so the permutation is deterministic per case).
fn permuted(groups: &[Vec<String>], keys: &[u64]) -> Vec<Vec<String>> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&i| keys[i]);
    order.iter().map(|&i| groups[i].clone()).collect()
}

/// The value-taking flags, for missing-value cases.
const VALUE_FLAGS: &[&str] = &[
    "--scale",
    "--jobs",
    "--trace-out",
    "--checkpoint-dir",
    "--fault-plan",
    "--max-retries",
    "--deadline-ms",
];

proptest! {
    /// Any permutation of well-formed flag groups parses identically.
    /// A `--flag value` pair stays a unit so the shuffle reorders whole
    /// groups, never splits a flag from its value.
    #[test]
    fn flag_order_never_matters(
        valued in (
            (any::<bool>(), 1u64..16),   // --jobs
            (any::<bool>(), 1u64..5),    // --scale
            (any::<bool>(), 0u64..1000), // --trace-out suffix
            (any::<bool>(), 0u64..1000), // --checkpoint-dir suffix
            (any::<bool>(), 0u64..64),   // --fault-plan seed
        ),
        supervise in ((any::<bool>(), 0u64..10), (any::<bool>(), 1u64..500)),
        bare in (any::<bool>(), any::<bool>()), // --stats, --resume
        keys in prop::collection::vec(any::<u64>(), 9..=9),
    ) {
        let (jobs, scale, trace, ckpt, plan) = valued;
        let (retries, deadline) = supervise;
        let (stats, resume) = bare;
        let mut groups: Vec<Vec<String>> = Vec::new();
        if jobs.0 {
            groups.push(vec!["--jobs".into(), jobs.1.to_string()]);
        }
        if scale.0 {
            groups.push(vec!["--scale".into(), scale.1.to_string()]);
        }
        if trace.0 {
            groups.push(vec!["--trace-out".into(), format!("/tmp/t{}.jsonl", trace.1)]);
        }
        if ckpt.0 {
            groups.push(vec!["--checkpoint-dir".into(), format!("/tmp/ck{}", ckpt.1)]);
        }
        if plan.0 {
            groups.push(vec![
                "--fault-plan".into(),
                format!("seed={},transient=0.25", plan.1),
            ]);
        }
        if retries.0 {
            groups.push(vec!["--max-retries".into(), retries.1.to_string()]);
        }
        if deadline.0 {
            groups.push(vec!["--deadline-ms".into(), deadline.1.to_string()]);
        }
        if stats {
            groups.push(vec!["--stats".into()]);
        }
        if resume {
            groups.push(vec!["--resume".into()]);
        }

        let canonical: Vec<String> = groups.iter().flatten().cloned().collect();
        let shuffled: Vec<String> = permuted(&groups, &keys).into_iter().flatten().collect();
        let a = CommonArgs::parse(&canonical).expect("well-formed flags parse");
        let b = CommonArgs::parse(&shuffled).expect("well-formed flags parse");
        prop_assert_eq!(a, b);
    }

    /// A junk value for any numeric flag is rejected at the value's
    /// 1-based position, naming both the flag and the offending value —
    /// regardless of how many flags precede it.
    #[test]
    fn junk_numeric_values_point_at_their_position(
        flag_idx in 0usize..4,
        junk in any::<u32>(),
        pad in 0usize..4,
    ) {
        let flag = ["--jobs", "--scale", "--max-retries", "--deadline-ms"][flag_idx];
        let bad = format!("v{junk}"); // never parses as an integer
        let mut args = vec!["--stats".to_string(); pad];
        args.push(flag.to_string());
        args.push(bad.clone());
        let err = CommonArgs::parse(&args).expect_err("junk value must be rejected");
        prop_assert_eq!(err.pos, pad + 2, "value position is 1-based");
        prop_assert!(err.to_string().starts_with(&format!("arg {}: ", pad + 2)), "{}", err);
        prop_assert!(err.msg.contains(flag), "{}", err);
        prop_assert!(err.msg.contains(&bad), "{}", err);
    }

    /// An unknown fault kind in `--fault-plan` is a usage error naming
    /// the kind, never a silently-ignored key.
    #[test]
    fn unknown_fault_kinds_are_rejected(suffix in any::<u32>(), centi in 0u64..100) {
        let kind = format!("k{suffix}x"); // digits: never a known kind
        let args = vec![
            "--fault-plan".to_string(),
            format!("{kind}=0.{centi:02}"),
        ];
        let err = CommonArgs::parse(&args).expect_err("unknown kind must be rejected");
        prop_assert_eq!(err.pos, 2);
        prop_assert!(err.msg.contains(&kind), "{}", err);
    }

    /// A value-taking flag with no value is rejected at the flag's own
    /// position.
    #[test]
    fn a_trailing_value_flag_is_rejected(flag_idx in 0usize..7, pad in 0usize..3) {
        let mut args = vec!["--resume".to_string(); pad];
        args.push(VALUE_FLAGS[flag_idx].to_string());
        let err = CommonArgs::parse(&args).expect_err("missing value must be rejected");
        prop_assert_eq!(err.pos, pad + 1);
        prop_assert!(err.msg.contains("needs a value"), "{}", err);
        prop_assert!(err.msg.contains(VALUE_FLAGS[flag_idx]), "{}", err);
    }

    /// `--deadline-ms 0` is always rejected (a zero deadline would hole
    /// every item), wherever it appears.
    #[test]
    fn zero_deadline_is_rejected(pad in 0usize..4) {
        let mut args = vec!["--stats".to_string(); pad];
        args.extend(["--deadline-ms".to_string(), "0".to_string()]);
        let err = CommonArgs::parse(&args).expect_err("zero deadline must be rejected");
        prop_assert_eq!(err.pos, pad + 2);
        prop_assert!(err.msg.contains("positive"), "{}", err);
    }

    /// Any unknown dash-prefixed token — e.g. a one-character typo of a
    /// real flag — is rejected at its own 1-based position, naming the
    /// token. This is the regression property for the era when unknown
    /// flags were silently skipped and `--trace-ouf` ran without a trace.
    #[test]
    fn unknown_flags_are_rejected_at_their_position(
        suffix in any::<u32>(),
        pad in 0usize..4,
    ) {
        let typo = format!("--x{suffix}"); // digits: never a known flag
        let mut args = vec!["--stats".to_string(); pad];
        args.push(typo.clone());
        let err = CommonArgs::parse(&args).expect_err("unknown flag must be rejected");
        prop_assert_eq!(err.pos, pad + 1);
        prop_assert!(err.to_string().starts_with(&format!("arg {}: ", pad + 1)), "{}", err);
        prop_assert!(err.msg.contains(&typo), "{}", err);
    }

    /// Registering the same token as an extra makes the parse succeed
    /// again, with the shared flags unaffected — and a value-taking
    /// extra consumes exactly one value slot, so the shuffle-insensitive
    /// shared parse sees through it.
    #[test]
    fn registered_extras_never_change_shared_flags(
        suffix in any::<u32>(),
        takes_value in any::<bool>(),
        jobs in 1u64..16,
    ) {
        let extra = format!("--x{suffix}");
        let mut args = vec![extra.clone()];
        if takes_value {
            args.push("7".to_string());
        }
        args.extend(["--jobs".to_string(), jobs.to_string()]);
        let extras: &[(&str, bool)] = &[(&extra, takes_value)];
        let parsed = CommonArgs::parse_with(&args, extras).expect("registered extra parses");
        prop_assert_eq!(parsed.jobs, jobs as usize);
        // Unregistered, the very same argv is rejected at the extra.
        let err = CommonArgs::parse(&args).expect_err("unregistered extra is a typo");
        prop_assert_eq!(err.pos, 1);
    }
}
