//! Help-surface conformance: every experiment binary advertises the one
//! shared flag surface.
//!
//! The historical drift this pins down: each bin hand-rolled its usage
//! text, so flag descriptions and exit-code stories diverged as
//! capabilities landed. Now every bin assembles `--help` from the shared
//! [`slopt_bench::FLAG_REFERENCE`] / [`slopt_bench::EXIT_CODE_TABLE`]
//! constants, and this suite diffs the live output of every binary
//! against them — plus the exit-code contract for malformed values
//! (always 2, with a positional `arg N:` message).

use slopt_bench::{EXIT_CODE_TABLE, FLAG_REFERENCE};
use std::process::{Command, Output};

/// Every experiment binary in this package, by its `CARGO_BIN_EXE_*`
/// path. Adding a bin without registering it here fails the
/// completeness check in `every_bin_shares_the_flag_reference` only if
/// someone remembers — so keep this list in sync with `src/bin/`.
const BINS: &[(&str, &str)] = &[
    ("fig8", env!("CARGO_BIN_EXE_fig8")),
    ("fig9", env!("CARGO_BIN_EXE_fig9")),
    ("fig10", env!("CARGO_BIN_EXE_fig10")),
    ("fig_search", env!("CARGO_BIN_EXE_fig_search")),
    ("ablation_k2", env!("CARGO_BIN_EXE_ablation_k2")),
    (
        "ablation_blocksize",
        env!("CARGO_BIN_EXE_ablation_blocksize"),
    ),
    (
        "ablation_min_heuristic",
        env!("CARGO_BIN_EXE_ablation_min_heuristic"),
    ),
    ("ablation_protocol", env!("CARGO_BIN_EXE_ablation_protocol")),
    ("ablation_refine", env!("CARGO_BIN_EXE_ablation_refine")),
    ("ablation_sampling", env!("CARGO_BIN_EXE_ablation_sampling")),
    ("ablation_inline", env!("CARGO_BIN_EXE_ablation_inline")),
    ("cc_validation", env!("CARGO_BIN_EXE_cc_validation")),
    (
        "sweep_remote_latency",
        env!("CARGO_BIN_EXE_sweep_remote_latency"),
    ),
];

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"))
}

/// `--help` (and `-h`) exits 0 and embeds the shared flag reference and
/// exit-code table *verbatim* in every binary.
#[test]
fn every_bin_shares_the_flag_reference() {
    for &(name, path) in BINS {
        let out = run(path, &["--help"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} --help must exit 0: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).expect("utf-8 help");
        assert!(
            text.contains(FLAG_REFERENCE),
            "{name} --help must embed the shared flag reference verbatim; got:\n{text}"
        );
        assert!(
            text.contains(EXIT_CODE_TABLE),
            "{name} --help must embed the shared exit-code table verbatim; got:\n{text}"
        );
        assert!(
            text.contains(&format!("{name} — ")) && text.contains("USAGE:"),
            "{name} --help must lead with its own name and a USAGE block"
        );

        let short = run(path, &["-h"]);
        assert_eq!(short.status.code(), Some(0), "{name} -h must exit 0");
    }
}

/// `fig_search` layers binary-specific flags on top of the shared
/// surface; its help must document both.
#[test]
fn extra_flags_extend_rather_than_replace_the_surface() {
    let out = run(env!("CARGO_BIN_EXE_fig_search"), &["--help"]);
    let text = String::from_utf8(out.stdout).expect("utf-8 help");
    for flag in ["--seed", "--chains", "--steps", "--top"] {
        assert!(
            text.contains(flag),
            "fig_search --help must document {flag}"
        );
    }
    assert!(text.contains(FLAG_REFERENCE));
}

/// Malformed values for every shared flag exit 2 (usage error) with a
/// positional `arg N:` message naming the offending value — in every
/// binary shape (a figure bin and an ablation bin).
#[test]
fn malformed_values_exit_2_with_positional_messages() {
    let cases: &[(&[&str], &str)] = &[
        (&["--jobs", "many"], "many"),
        (&["--scale", "-3"], "-3"),
        (&["--max-retries", "1.5"], "1.5"),
        (&["--deadline-ms", "soon"], "soon"),
        (&["--deadline-ms", "0"], "positive"),
        (&["--fault-plan", "bogus=1"], "bogus"),
        (&["--trace-out"], "--trace-out"),
        (&["--stats", "--jobs", "x"], "x"),
    ];
    for &(name, path) in &[
        ("fig9", env!("CARGO_BIN_EXE_fig9")),
        ("ablation_k2", env!("CARGO_BIN_EXE_ablation_k2")),
    ] {
        for (args, needle) in cases {
            let out = run(path, args);
            assert_eq!(
                out.status.code(),
                Some(2),
                "{name} {args:?} must exit 2 (usage)"
            );
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(
                err.contains("arg ") && err.contains(needle),
                "{name} {args:?}: stderr must carry a positional message \
                 naming `{needle}`; got: {err}"
            );
            assert!(
                err.contains("--help"),
                "{name} {args:?}: stderr must point at --help; got: {err}"
            );
        }
    }
}
