//! Sweep: how the cost of the sort-by-hotness layout grows with remote
//! transfer latency — the continuum between the paper's Figure 9 (4-way
//! bus: false sharing costs about an L2 miss) and Figure 8 (128-way
//! Superdome: ~1000-cycle remote transfers).
//!
//! We fix the 64-CPU hierarchical machine and scale the cache-to-cache
//! latencies; struct A is measured with the baseline and sort-by-hotness
//! layouts at each point.
//!
//! Usage: `cargo run --release -p slopt-bench --bin sweep_remote_latency [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{default_figure_setup, CommonArgs};
use slopt_sim::{LatencyModel, Topology};
use slopt_workload::{
    baseline_layouts, compute_paper_layouts, layouts_with, measure, LayoutKind, Machine,
};

fn scaled(lat: LatencyModel, factor: f64) -> LatencyModel {
    let s = |x: u64| ((x as f64) * factor).round() as u64;
    LatencyModel {
        hit: lat.hit,
        same_chip: s(lat.same_chip),
        same_bus: s(lat.same_bus),
        same_cell: s(lat.same_cell),
        same_crossbar: s(lat.same_crossbar),
        remote: s(lat.remote),
        memory: lat.memory,
    }
}

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "sweep_remote_latency",
        "sort-by-hotness cost vs coherence-transfer latency (64-way)",
        "",
        &[],
    );
    let setup = default_figure_setup(args.scale);
    let layouts = compute_paper_layouts(&setup.kernel, &setup.sdet, &setup.analysis, setup.tool);
    let a = setup.kernel.records.a;

    println!("=== struct A degradation vs coherence-transfer latency (64-way) ===");
    println!(
        "{:>8} {:>10} {:>22}",
        "factor", "remote", "sort-by-hotness vs base"
    );
    for factor in [0.25, 0.5, 1.0, 2.0] {
        let lat = scaled(LatencyModel::superdome(), factor);
        let machine = Machine {
            topo: Topology::superdome(64),
            lat,
        };
        let base_table = baseline_layouts(&setup.kernel, setup.sdet.line_size);
        let baseline = measure(
            &setup.kernel,
            &base_table,
            &machine,
            &setup.sdet,
            setup.runs,
        );
        let table = layouts_with(
            &setup.kernel,
            setup.sdet.line_size,
            a,
            layouts.layout(a, LayoutKind::SortByHotness).clone(),
        );
        let t = measure(&setup.kernel, &table, &machine, &setup.sdet, setup.runs);
        println!(
            "{factor:>8} {:>10} {:>21.2}%",
            lat.remote,
            t.pct_vs(&baseline)
        );
    }
}
