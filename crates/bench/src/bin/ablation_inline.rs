//! Ablation: the intra-procedural approximation vs. inlining (paper
//! §3.1: "we consider only intra-procedural paths … an aggressive
//! inlining phase before this analysis would alleviate this problem").
//!
//! The kernel's `b_open_close` manipulates the vnode refcount through a
//! helper function, so without inlining the analysis cannot see the
//! `v_flags ↔ v_refcnt` affinity (they are referenced in different
//! procedures). We run the analysis on the raw and the inlined program
//! and compare the recovered affinity, the resulting layouts, and their
//! measured throughput.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_inline [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{default_figure_setup, CommonArgs};
use slopt_ir::inline::InlineParams;
use slopt_workload::{analyze, baseline_layouts, layouts_with, measure, suggest_for, Machine};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_inline",
        "intra-procedural analysis vs inlining (struct B)",
        "",
        &[],
    );
    let setup = default_figure_setup(args.scale);
    let raw = &setup.kernel;
    let inlined = raw.inlined(InlineParams::default());

    let machine = Machine::superdome(128);
    let base_table = baseline_layouts(raw, setup.sdet.line_size);
    let baseline = measure(raw, &base_table, &machine, &setup.sdet, setup.runs);

    println!("=== ablation: intra-procedural analysis vs inlining (struct B) ===");
    for (label, kernel) in [("intra-procedural", raw), ("inlined", &inlined)] {
        let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
        let b = kernel.records.b;
        let affinity = slopt_workload::analyze::affinity_for(kernel, &analysis, b);
        let flags = kernel.field(b, "v_flags");
        let refcnt = kernel.field(b, "v_refcnt");
        let suggestion = suggest_for(kernel, &analysis, b, setup.tool);
        // Measure the layout on the *raw* kernel — the transformation
        // applies to the source either way; only the analysis differs.
        let table = layouts_with(raw, setup.sdet.line_size, b, suggestion.layout.clone());
        let t = measure(raw, &table, &machine, &setup.sdet, setup.runs);
        println!(
            "{label:<18}: affinity(v_flags, v_refcnt) = {:>6}, co-located = {}, {:+.2}% vs baseline",
            affinity.weight(flags, refcnt),
            suggestion.layout.share_line(flags, refcnt),
            t.pct_vs(&baseline)
        );
    }
    println!(
        "(the helper-call structure hides the refcount affinity from the\n\
         intra-procedural pass; inlining recovers it, as §3.1 predicts)"
    );
}
