//! Developer tool: show why the §5.2 constrained layout differs from the
//! baseline for struct A.

use slopt_bench::default_figure_setup;
use slopt_core::{important_subgraph, Constraints, SubgraphParams};
use slopt_ir::layout::StructLayout;
use slopt_workload::{analyze, loss_for, suggest_for};

fn main() {
    let setup = default_figure_setup(1);
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let a = kernel.records.a;
    let ty = kernel.record_type(a);
    let suggestion = suggest_for(kernel, &analysis, a, setup.tool);

    let sub = important_subgraph(&suggestion.flg, SubgraphParams::default());
    println!("=== important subgraph edges for A ===");
    for (f1, f2, w) in sub.edges() {
        println!(
            "  {:<12} -- {:<12} {:+.1}",
            ty.field(f1).name(),
            ty.field(f2).name(),
            w
        );
    }
    let clustering = slopt_core::cluster(&sub, ty, 128);
    let constraints = Constraints::from_clustering(&sub, &clustering);
    println!("=== constraint groups ===");
    for g in &constraints.groups {
        let names: Vec<&str> = g.iter().map(|&f| ty.field(f).name()).collect();
        println!("  {names:?}");
    }
    let original = StructLayout::declaration_order(ty, 128).unwrap();
    let constrained = slopt_core::constrained_layout(ty, &original, &constraints, 128).unwrap();
    println!(
        "=== layouts: baseline {} lines, constrained {} lines",
        original.line_span(),
        constrained.line_span()
    );
    println!(
        "baseline order == constrained order: {}",
        original.order() == constrained.order()
    );
    // First differences.
    for (i, (b, c)) in original.order().iter().zip(constrained.order()).enumerate() {
        if b != c {
            println!(
                "  first diff at {}: baseline {} vs constrained {}",
                i,
                ty.field(*b).name(),
                ty.field(*c).name()
            );
            break;
        }
    }
    let loss = loss_for(kernel, &analysis, a);
    println!("=== top loss pairs ===");
    for (f1, f2, l) in loss.pairs().iter().take(12) {
        println!(
            "  {:<12} -- {:<12} {:.2}",
            ty.field(*f1).name(),
            ty.field(*f2).name(),
            l
        );
    }
}
