//! Ablation: sampling period and interval size for Code Concurrency
//! (paper §4.2 chose 100 000-cycle samples in 1 ms intervals to balance
//! data volume against sample loss).
//!
//! For each (period, interval) pair we recompute CycleLoss for struct A
//! and report (a) whether the automatic layout still isolates the
//! contended counters, and (b) the top-20 concurrency-pair overlap with
//! exact (unsampled) ground truth.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_sampling [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{CommonArgs, SITE_WORKER};
use slopt_core::{par_map_supervised, suggest_layout, WorkerError};
use slopt_fault::{exit, FaultKind};
use slopt_sample::{concurrency_map, ConcurrencyConfig, ExactCounter, SamplerConfig};
use slopt_workload::{analyze_obs, baseline_layouts, run_once, AnalysisConfig, STAT_CLASSES};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_sampling",
        "sampling period/interval sweep for Code Concurrency fidelity",
        "",
        &[],
    );
    let fault = args.fault.clone();
    let setup = slopt_bench::default_figure_setup(args.scale);
    let ctx = args.ctx_or_exit();
    let kernel = &setup.kernel;
    let layouts = baseline_layouts(kernel, setup.sdet.line_size);

    // Ground truth: exact per-block counts on the measurement machine.
    let mut exact = ExactCounter::new();
    {
        let _span = ctx.obs.span("exact_run");
        run_once(
            kernel,
            &layouts,
            &setup.analysis.machine,
            &setup.sdet,
            setup.analysis.seed,
            &mut exact,
        );
    }
    let exact_cc = concurrency_map(
        exact.samples(),
        &ConcurrencyConfig {
            interval: setup.analysis.interval,
        },
    );
    let exact_top: std::collections::HashSet<_> = exact_cc
        .top_pairs(20)
        .into_iter()
        .map(|(a, b, _)| (a, b))
        .collect();

    // Each (period, interval) pair is an independent instrumented run +
    // analysis; fan the grid out and collect rows by grid index.
    let mut grid = Vec::new();
    for period in [250u64, 500, 2_000, 8_000] {
        for interval in [3_000u64, 6_000, 24_000] {
            if interval < 4 * period {
                continue; // fewer than ~4 samples per interval is meaningless
            }
            grid.push((period, interval));
        }
    }
    eprintln!(
        "[ablation_sampling] analyzing {} sampling configurations on {} thread(s)...",
        grid.len(),
        ctx.jobs
    );
    // One (period, interval) configuration: instrumented run + analysis.
    let analyze_pair = |(period, interval): (u64, u64)| {
        let cfg = AnalysisConfig {
            sampler: SamplerConfig {
                period,
                ..setup.analysis.sampler
            },
            interval,
            ..setup.analysis.clone()
        };
        let analysis = analyze_obs(kernel, &setup.sdet, &cfg, &ctx.obs);
        let a = kernel.records.a;
        let affinity = slopt_workload::analyze::affinity_for(kernel, &analysis, a);
        let loss = slopt_workload::loss_for(kernel, &analysis, a);
        let suggestion = suggest_layout(kernel.record_type(a), &affinity, Some(&loss), setup.tool)
            .expect("valid record");
        let flags = kernel.field(a, "flags");
        let isolated = (0..STAT_CLASSES).all(|k| {
            let stat = kernel.field(a, &format!("stat{k}"));
            !suggestion.layout.share_line(stat, flags)
        });
        let top: std::collections::HashSet<_> = analysis
            .concurrency
            .top_pairs(20)
            .into_iter()
            .map(|(x, y, _)| (x, y))
            .collect();
        let overlap = if exact_top.is_empty() {
            0.0
        } else {
            top.intersection(&exact_top).count() as f64 / exact_top.len() as f64
        };
        (analysis.samples.len(), isolated, overlap)
    };
    // (samples, isolated?, overlap) per grid row; None marks a hole.
    type Row = Option<(usize, bool, f64)>;
    let (rows, degraded): (Vec<Row>, bool) = match &fault {
        None => (
            slopt_core::par_map(ctx.jobs, &grid, |_, &pair| analyze_pair(pair))
                .into_iter()
                .map(Some)
                .collect(),
            false,
        ),
        Some(fc) => {
            let plan = &fc.plan;
            let (rows, report) =
                par_map_supervised(ctx.jobs, &grid, &fc.policy, |i, &pair, attempt| {
                    let gi = i as u64;
                    if plan.fires(FaultKind::Permanent, SITE_WORKER, gi, attempt) {
                        ctx.obs.warning("fault.injected.permanent");
                        return Err(WorkerError::permanent(format!(
                            "injected permanent fault (grid item {i})"
                        )));
                    }
                    if plan.fires(FaultKind::Panic, SITE_WORKER, gi, attempt) {
                        ctx.obs.warning("fault.injected.panic");
                        panic!("injected worker panic (grid item {i}, attempt {attempt})");
                    }
                    if plan.fires(FaultKind::Transient, SITE_WORKER, gi, attempt) {
                        ctx.obs.warning("fault.injected.transient");
                        return Err(WorkerError::transient(format!(
                            "injected transient fault (grid item {i}, attempt {attempt})"
                        )));
                    }
                    if plan.fires(FaultKind::Slow, SITE_WORKER, gi, attempt) {
                        ctx.obs.warning("fault.injected.slow");
                        std::thread::sleep(std::time::Duration::from_millis(plan.slow_ms()));
                    }
                    Ok(analyze_pair(pair))
                });
            if report.had_faults() {
                eprintln!("[ablation_sampling] {}", report.summary_line());
            }
            for f in &report.poisoned {
                eprintln!("[ablation_sampling] poisoned: {f}");
            }
            (rows, report.degraded())
        }
    };

    println!("=== ablation: sampling parameters (struct A isolation + CC fidelity) ===");
    println!(
        "{:>10} {:>10} {:>10} {:>20} {:>16}",
        "period", "interval", "samples", "counters isolated?", "top-20 overlap"
    );
    for (&(period, interval), row) in grid.iter().zip(&rows) {
        match row {
            Some((samples, isolated, overlap)) => println!(
                "{:>10} {:>10} {:>10} {:>20} {:>15.0}%",
                period,
                interval,
                samples,
                if *isolated { "yes" } else { "NO" },
                overlap * 100.0
            ),
            None => println!(
                "{period:>10} {interval:>10} {:>10} {:>20} {:>16}",
                "HOLE", "HOLE", "HOLE"
            ),
        }
    }

    ctx.finish();
    if degraded {
        std::process::exit(i32::from(exit::DEGRADED));
    }
}
