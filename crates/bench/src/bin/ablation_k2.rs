//! Ablation: the CycleLoss constant `k2` (paper §2, `w = k1·CG − k2·CL`).
//!
//! Sweeps `k2` and reports, for struct A (the heavy false-sharing
//! structure), whether the resulting automatic layout still isolates the
//! contended counters from the hot read fields, and the measured
//! throughput difference on the 128-way machine.
//!
//! Expected: with `k2 = 0` the FLG degenerates to the single-threaded
//! affinity layout — counters get packed with the hot fields they are
//! accessed with, and throughput collapses (the sort-by-hotness failure
//! mode). Beyond a modest `k2` the layout stabilizes.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_k2`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_core::{suggest_layout, FlgParams, ToolParams};
use slopt_workload::{
    analyze, baseline_layouts, layouts_with, loss_for, measure, Machine, STAT_CLASSES,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let a = kernel.records.a;
    let ty = kernel.record_type(a);
    let affinity = slopt_workload::analyze::affinity_for(kernel, &analysis, a);
    let loss = loss_for(kernel, &analysis, a);

    let machine = Machine::superdome(128);
    let base_table = baseline_layouts(kernel, setup.sdet.line_size);
    let baseline = measure(kernel, &base_table, &machine, &setup.sdet, setup.runs);

    println!("=== ablation: k2 sweep on struct A (128-way) ===");
    println!("{:>10} {:>22} {:>14}", "k2", "counters isolated?", "% vs baseline");
    for k2 in [0.0, 0.1, 1.0, 10.0, 100.0, 1000.0] {
        let params = ToolParams { flg: FlgParams { k1: 1.0, k2 }, ..setup.tool };
        let suggestion =
            suggest_layout(ty, &affinity, Some(&loss), params).expect("valid record");
        let flags = kernel.field(a, "flags");
        let isolated = (0..STAT_CLASSES).all(|k| {
            let stat = kernel.field(a, &format!("stat{k}"));
            !suggestion.layout.share_line(stat, flags)
        });
        let table = layouts_with(kernel, setup.sdet.line_size, a, suggestion.layout.clone());
        let t = measure(kernel, &table, &machine, &setup.sdet, setup.runs);
        println!(
            "{:>10} {:>22} {:>13.2}%",
            k2,
            if isolated { "yes" } else { "NO" },
            t.pct_vs(&baseline)
        );
    }
}
