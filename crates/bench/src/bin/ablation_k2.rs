//! Ablation: the CycleLoss constant `k2` (paper §2, `w = k1·CG − k2·CL`).
//!
//! Sweeps `k2` and reports, for struct A (the heavy false-sharing
//! structure), whether the resulting automatic layout still isolates the
//! contended counters from the hot read fields, and the measured
//! throughput difference on the 128-way machine.
//!
//! Expected: with `k2 = 0` the FLG degenerates to the single-threaded
//! affinity layout — counters get packed with the hot fields they are
//! accessed with, and throughput collapses (the sort-by-hotness failure
//! mode). Beyond a modest `k2` the layout stabilizes.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_k2 [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{figure_setup, measure_cells, require_complete, Cell, CommonArgs};
use slopt_core::{suggest_layout, FlgParams, ToolParams};
use slopt_workload::{analyze, baseline_layouts, layouts_with, loss_for, Machine, STAT_CLASSES};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_k2",
        "CycleLoss constant sweep on struct A (128-way)",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let a = kernel.records.a;
    let ty = kernel.record_type(a);
    let affinity = slopt_workload::analyze::affinity_for(kernel, &analysis, a);
    let loss = loss_for(kernel, &analysis, a);
    let machine = Machine::superdome(128);
    let k2s = [0.0, 0.1, 1.0, 10.0, 100.0, 1000.0];

    // The grid: one baseline cell, then one cell per k2 value. Layout
    // derivation is cheap and stays serial; the measurements dominate.
    let mut cells = vec![Cell {
        label: "baseline".to_string(),
        table: baseline_layouts(kernel, setup.sdet.line_size),
        sdet: setup.sdet.clone(),
        machine: machine.clone(),
    }];
    let mut isolated_flags = Vec::new();
    for k2 in k2s {
        let params = ToolParams {
            flg: FlgParams { k1: 1.0, k2 },
            ..setup.tool
        };
        let suggestion = suggest_layout(ty, &affinity, Some(&loss), params).expect("valid record");
        let flags = kernel.field(a, "flags");
        isolated_flags.push((0..STAT_CLASSES).all(|k| {
            let stat = kernel.field(a, &format!("stat{k}"));
            !suggestion.layout.share_line(stat, flags)
        }));
        cells.push(Cell {
            label: format!("k2={k2}"),
            table: layouts_with(kernel, setup.sdet.line_size, a, suggestion.layout.clone()),
            sdet: setup.sdet.clone(),
            machine: machine.clone(),
        });
    }

    let outcome =
        measure_cells(&ctx, "ablation_k2", kernel, &cells, setup.runs).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let measured = require_complete("ablation_k2", &ctx, &cells, outcome);
    let baseline = &measured[0];

    println!("=== ablation: k2 sweep on struct A (128-way) ===");
    println!(
        "{:>10} {:>22} {:>14}",
        "k2", "counters isolated?", "% vs baseline"
    );
    for ((k2, isolated), t) in k2s.iter().zip(isolated_flags).zip(&measured[1..]) {
        println!(
            "{:>10} {:>22} {:>13.2}%",
            k2,
            if isolated { "yes" } else { "NO" },
            t.pct_vs(baseline)
        );
    }

    ctx.finish();
}
