//! `perf_report` — the self-reporting performance harness.
//!
//! Runs four microbenches over the repo's hot paths, each old-vs-new
//! against the retained reference implementations on identical seeds, and
//! writes `BENCH_sim.json`:
//!
//! 1. **cc_stream** — sharded streaming Code Concurrency
//!    (`shard_concurrency` over `slopt-shard/1` files) vs the *retained*
//!    batch reference `concurrency_map_reference` (the frozen flat
//!    count-tensor pipeline) over the materialized sample vector. The
//!    current batch `concurrency_map` shares its kernel with the
//!    streaming path, so measuring against it would compare the new code
//!    to itself; the frozen reference keeps the old-vs-new story honest.
//!    Streamed, batch, reference and naive maps are all asserted
//!    bit-identical. Runs *first*, and its `peak_rss_kb` is sampled
//!    *before* the reference materializes the samples: because Linux
//!    `VmHWM` is a process-lifetime high-water mark, this is the only
//!    ordering under which the streamed figure reflects streaming alone.
//!    The bench also records `batch_peak_rss_kb` (sampled after the
//!    reference reps) so the report carries the peak-memory comparison
//!    the streaming path exists for.
//! 2. **engine** — full SDET runs with the dense paged coherence
//!    directory vs the reference `HashMap` directory
//!    (`MemSystem::set_reference_directory`).
//! 3. **cc** — `concurrency_map` (interned lines + flat count tensor) vs
//!    `concurrency_map_naive` (triple-nested maps) on one synthetic
//!    sample stream.
//! 4. **flg_cluster** — dense triangular `Flg` construction + greedy
//!    clustering vs the hash-map `FlgRef` through the same generic
//!    `cluster_with`.
//! 5. **search_delta** — the annealing search's incremental
//!    `DeltaObjective` (`score_move` per proposal, `apply` on the
//!    accepted ones) vs what a no-delta search pays: cloning the
//!    clustering and re-running the full `clustering_score` on **every**
//!    proposal. Both paths replay one precomputed feasible proposal
//!    trace with a fixed acceptance schedule, and their committed score
//!    traces are asserted bit-identical before the ratio is trusted.
//!    The ratio is emitted as `delta_full_ratio` (and mirrored as
//!    `speedup_vs_reference`); `perf_guard --require-speedup
//!    search_delta:20` enforces the floor. Both sides are serial, so
//!    the floor is never host-core-skipped.
//!
//! Every comparison asserts bit-identical results before timing is
//! trusted; an equivalence failure aborts with a non-zero exit. Speedups
//! are reported, not enforced. The dense engine bench is also measured
//! fanned over `--jobs N` host threads (via `slopt_core::par_map`) to
//! record the parallel-runner speedup alongside the serial numbers.
//!
//! Flags: `--quick` (smaller workloads, used by ci.sh), `--jobs N`,
//! `--out PATH` (default `BENCH_sim.json`), `--no-reference` (skip the
//! old implementations: faster, but no speedup column).
//!
//! Schema: `slopt-perf-report/5`. Version 2 added a `peak_rss_kb` field
//! per bench — the process's high-water resident set (Linux `VmHWM`,
//! absent elsewhere) sampled right after the bench finishes. Version 3
//! adds per-bench `dense_trimmed_mean_s` / `reference_trimmed_mean_s`
//! (per-rep wall clock with min and max dropped when reps ≥ 3, so the
//! committed baseline is not noise-dominated; `speedup_vs_reference` is
//! their ratio) and a top-level `host_cores` field, so `perf_guard` can
//! tell a missing parallel win from a host that physically cannot show
//! one (wall-clock speedup > 1 needs more cores than workers). Version
//! 4 adds the `search_delta` bench and its `delta_full_ratio` field
//! (the per-proposal cost ratio of full rescoring over delta
//! evaluation). Version 5 adds per-bench `dense_p50_s` / `dense_p99_s`:
//! the per-rep wall clocks folded (at nanosecond resolution) into the
//! same deterministic log2 `slopt_obs::Histogram` the profiling layer
//! uses for span durations, so the committed baseline carries tail
//! behavior alongside the trimmed mean and `trace_diff` deltas can be
//! read against the same quantile rule. All earlier fields are
//! unchanged, so /1–/4 consumers can read /5 reports by ignoring the
//! new fields.

use slopt_bench::CommonArgs;
use slopt_core::{canonical_cluster_sum, cluster, cluster_with, DeltaObjective, Flg, FlgRef, Move};
use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::interp::SplitMix64;
use slopt_ir::source::SourceLine;
use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType};
use slopt_sample::{
    concurrency_map, concurrency_map_naive, concurrency_map_reference, ConcurrencyConfig, Sample,
};
use slopt_sim::{CacheConfig, CpuId, EngineConfig, MemSystem, NullObserver};
use slopt_workload::{
    build_kernel, build_scripts, measurement_seeds, Instances, Kernel, Machine, SdetConfig,
    WorkloadSpec,
};
use std::time::Instant;

struct Args {
    quick: bool,
    jobs: usize,
    out: String,
    reference: bool,
}

impl Args {
    fn from_env() -> Args {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // `--jobs` comes from the shared execution-context parser, with
        // the bin-specific flags below registered as extras.
        let extras: &[(&str, bool)] = &[
            ("--out", true),
            ("--quick", false),
            ("--no-reference", false),
        ];
        let common = CommonArgs::parse_with(&args, extras).unwrap_or_else(|e| {
            eprintln!("perf_report: {e}");
            std::process::exit(i32::from(slopt_fault::exit::USAGE));
        });
        let out = args
            .windows(2)
            .find(|w| w[0] == "--out")
            .map(|w| w[1].clone())
            .unwrap_or_else(|| "BENCH_sim.json".to_string());
        Args {
            quick: args.iter().any(|a| a == "--quick"),
            jobs: common.jobs,
            out,
            reference: !args.iter().any(|a| a == "--no-reference"),
        }
    }
}

/// One microbench's measurements, all in seconds of wall clock.
struct BenchResult {
    name: &'static str,
    /// What one repetition processes (for the report only).
    work: String,
    reps: usize,
    /// Per-rep wall clock of the dense implementation, serial.
    dense_s: Vec<f64>,
    /// Per-rep wall clock of the reference implementation, serial
    /// (empty under `--no-reference`).
    reference_s: Vec<f64>,
    /// Total wall clock of all dense reps fanned over `--jobs` threads
    /// (engine bench only; `None` elsewhere).
    dense_jobs_s: Option<f64>,
    jobs: usize,
    /// Peak resident set size (Linux `VmHWM`, kB) sampled right after the
    /// bench; `None` on platforms without `/proc/self/status`. VmHWM is a
    /// process-lifetime high-water mark, so per-bench values are
    /// monotonically non-decreasing in run order.
    peak_rss_kb: Option<u64>,
    /// `cc_stream` only: the high-water mark after the batch reference
    /// materialized the full sample vector (the figure `peak_rss_kb`
    /// deliberately excludes).
    batch_peak_rss_kb: Option<u64>,
    /// `search_delta` only: per-proposal cost ratio of the full-rescore
    /// reference over delta evaluation (the number `perf_guard` floors).
    delta_full_ratio: Option<f64>,
}

/// The process's peak resident set size in kilobytes, from the `VmHWM`
/// line of `/proc/self/status`; `None` on non-Linux platforms.
fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status.lines().find_map(|line| {
            line.strip_prefix("VmHWM:")?
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .ok()
        })
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Mean of the reps with the minimum and maximum dropped (when reps ≥ 3;
/// the plain mean below that). One outlier rep — a scheduler hiccup, a
/// page-cache miss — cannot move the committed baseline.
fn trimmed_mean(xs: &[f64]) -> f64 {
    if xs.len() < 3 {
        return xs.iter().sum::<f64>() / xs.len() as f64;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let inner = &v[1..v.len() - 1];
    inner.iter().sum::<f64>() / inner.len() as f64
}

impl BenchResult {
    fn dense_total(&self) -> f64 {
        self.dense_s.iter().sum()
    }
    fn reference_total(&self) -> f64 {
        self.reference_s.iter().sum()
    }
    /// Per-rep dense wall clocks folded into the deterministic log2
    /// histogram at nanosecond resolution — the same structure (and
    /// therefore the same quantile rule) the profiling layer uses for
    /// span durations, so report quantiles and `trace_diff` deltas are
    /// comparable like for like.
    fn dense_hist(&self) -> slopt_obs::Histogram {
        let mut h = slopt_obs::Histogram::new();
        for &s in &self.dense_s {
            h.record((s * 1e9) as u64);
        }
        h
    }
    /// Trimmed-mean ratio of reference over dense — robust to one noisy
    /// rep on either side.
    fn speedup(&self) -> Option<f64> {
        if self.reference_s.is_empty() {
            None
        } else {
            Some(trimmed_mean(&self.reference_s) / trimmed_mean(&self.dense_s))
        }
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

// ------------------------------------------------------------- cc_stream

fn bench_cc_stream(args: &Args) -> BenchResult {
    // Same stream shape as the batch `cc` bench, but the samples are
    // generated shard by shard and never held in memory at once: peak
    // working set is one shard plus the sorted cell run. Quick mode keeps
    // its wall clock by shrinking the sample count, not the rep count —
    // the trimmed mean needs ≥ 5 reps to be meaningful.
    let (n, intervals, shard_size) = if args.quick {
        (40_960usize, 80u64, 8_192usize)
    } else {
        (600_000, 1_000, 32_768)
    };
    let cfg = ConcurrencyConfig { interval: 1_000 };
    let span = intervals * cfg.interval;
    let reps = if args.quick { 6 } else { 5 };

    let dir = std::env::temp_dir().join(format!("slopt_perf_ccstream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let n_shards = n.div_ceil(shard_size);
    for i in 0..n_shards {
        let count = shard_size.min(n - i * shard_size);
        let mut chunk = synth_samples(count, 16, 400, span, 0xCC57 + i as u64);
        chunk.sort_by_key(|s| s.time);
        slopt_sample::write_shard(&dir.join(slopt_sample::shard_file_name(i)), &chunk)
            .expect("write shard");
    }

    let mut dense_s = Vec::new();
    let mut streamed = None;
    for _ in 0..reps {
        let (out, td) = time(|| slopt_sample::shard_concurrency(&dir, cfg, 1).expect("stream"));
        dense_s.push(td);
        assert_eq!(out.1.samples as usize, n, "stream must ingest every sample");
        assert_eq!(out.1.shards_skipped, 0, "no shard may be skipped");
        streamed = Some(out.0);
    }
    let streamed = streamed.expect("at least one rep");
    // Fanned finish, for the parallel column; must be bit-identical. The
    // equivalence check sorts every non-zero pair, which at --quick scale
    // costs more than the fold itself — asserting outside the timed
    // region keeps the parallel column about the fold, like the serial
    // column above.
    let (fanned, jobs_total) = time(|| {
        (0..reps)
            .map(|_| {
                slopt_sample::shard_concurrency(&dir, cfg, args.jobs)
                    .expect("stream")
                    .0
            })
            .collect::<Vec<_>>()
    });
    for out in &fanned {
        assert_eq!(
            out.pairs(),
            streamed.pairs(),
            "streaming diverged across --jobs"
        );
    }

    // Sample the high-water mark *before* the batch reference materializes
    // the full sample vector — VmHWM never goes back down.
    let stream_rss = peak_rss_kb();

    let mut reference_s = Vec::new();
    let mut batch_rss = None;
    if args.reference {
        let mut samples = Vec::with_capacity(n);
        for i in 0..n_shards {
            let count = shard_size.min(n - i * shard_size);
            samples.extend(synth_samples(count, 16, 400, span, 0xCC57 + i as u64));
        }
        samples.sort_by_key(|s| s.time);
        // Timed old-vs-new: the frozen tensor-pipeline reference. The
        // current batch path shares the blocked kernel with streaming, so
        // it is checked for equivalence but not used as the baseline.
        for _ in 0..reps {
            let (reference, tr) = time(|| concurrency_map_reference(&samples, &cfg));
            reference_s.push(tr);
            assert_eq!(
                streamed.pairs(),
                reference.pairs(),
                "streamed and reference concurrency maps disagree"
            );
        }
        // Full equivalence chain, once: streamed ≡ batch ≡ naive.
        let batch = concurrency_map(&samples, &cfg);
        assert_eq!(
            streamed.pairs(),
            batch.pairs(),
            "streamed and batch concurrency maps disagree"
        );
        let naive = concurrency_map_naive(&samples, &cfg);
        assert_eq!(
            batch.pairs(),
            naive.pairs(),
            "batch and naive concurrency maps disagree"
        );
        batch_rss = peak_rss_kb();
    }
    let _ = std::fs::remove_dir_all(&dir);

    BenchResult {
        name: "cc_stream",
        work: format!("{n} samples, {n_shards} shards of {shard_size}, {intervals} intervals"),
        reps,
        dense_s,
        reference_s,
        dense_jobs_s: Some(jobs_total),
        jobs: args.jobs,
        peak_rss_kb: stream_rss,
        batch_peak_rss_kb: batch_rss,
        delta_full_ratio: None,
    }
}

// ---------------------------------------------------------------- engine

/// One full SDET run with the directory kind chosen up front; returns the
/// engine fingerprint used for the dense-vs-reference equivalence check.
fn engine_run(
    kernel: &Kernel,
    machine: &Machine,
    cfg: &SdetConfig,
    seed: u64,
    reference: bool,
) -> (u64, u64, u64) {
    let cpus = machine.cpus();
    let layouts = slopt_workload::baseline_layouts(kernel, cfg.line_size);
    let instances = Instances::allocate(kernel, &layouts, cpus, cfg);
    let scripts = build_scripts(kernel, &instances, cpus, cfg, seed);
    let mut mem = MemSystem::new(machine.topo.clone(), machine.lat, cfg.cache);
    mem.set_protocol(cfg.protocol);
    mem.set_reference_directory(reference);
    let engine_cfg = EngineConfig {
        seed,
        ..EngineConfig::default()
    };
    let result = slopt_sim::run(
        kernel.program(),
        &layouts,
        &mut mem,
        scripts,
        &engine_cfg,
        &mut NullObserver,
    )
    .expect("finite workload exceeded engine step bound");
    (
        result.makespan,
        result.scripts_done as u64,
        mem.stats().accesses(),
    )
}

fn bench_engine(args: &Args) -> BenchResult {
    let kernel = build_kernel();
    let cfg = SdetConfig {
        scripts_per_cpu: if args.quick { 8 } else { 24 },
        pool_instances: if args.quick { 64 } else { 256 },
        cache: CacheConfig {
            line_size: 128,
            sets: 256,
            ways: 8,
        },
        ..SdetConfig::default()
    };
    let machine = Machine::superdome(16);
    let runs = if args.quick { 3 } else { 6 };
    let seeds = measurement_seeds(runs);

    let mut dense_s = Vec::new();
    let mut reference_s = Vec::new();
    for &seed in &seeds {
        let (dense, td) = time(|| engine_run(&kernel, &machine, &cfg, seed, false));
        dense_s.push(td);
        if args.reference {
            let (refr, tr) = time(|| engine_run(&kernel, &machine, &cfg, seed, true));
            reference_s.push(tr);
            assert_eq!(
                dense, refr,
                "dense and reference directory disagree on seed {seed}"
            );
        }
    }

    // The same dense runs fanned over host threads, for the parallel
    // wall-clock column.
    let (par_results, jobs_total) = time(|| {
        slopt_core::par_map(args.jobs, &seeds, |i, &seed| {
            let _ = i;
            engine_run(&kernel, &machine, &cfg, seed, false)
        })
    });
    for (i, &seed) in seeds.iter().enumerate() {
        let serial = engine_run(&kernel, &machine, &cfg, seed, false);
        assert_eq!(
            par_results[i], serial,
            "parallel engine run diverged on seed {seed}"
        );
    }

    BenchResult {
        name: "engine",
        work: format!(
            "sdet 16-way, {} scripts/cpu, {} seeds",
            cfg.scripts_per_cpu,
            seeds.len()
        ),
        reps: seeds.len(),
        dense_s,
        reference_s,
        dense_jobs_s: Some(jobs_total),
        jobs: args.jobs,
        peak_rss_kb: peak_rss_kb(),
        batch_peak_rss_kb: None,
        delta_full_ratio: None,
    }
}

// -------------------------------------------------------------------- cc

/// Deterministic synthetic sample stream: `cpus` CPUs sampled across
/// `intervals` intervals over `lines` distinct source lines.
fn synth_samples(n: usize, cpus: u16, lines: u32, span: u64, seed: u64) -> Vec<Sample> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Sample {
            cpu: CpuId((rng.next_u64() % cpus as u64) as u16),
            time: rng.next_u64() % span,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine((rng.next_u64() % lines as u64) as u32),
        })
        .collect()
}

fn bench_cc(args: &Args) -> BenchResult {
    // The naive formulation is quadratic in samples-per-interval, so the
    // full mode grows the interval count with the stream, keeping density
    // (and the per-interval cost ratio) fixed.
    let (n, intervals) = if args.quick {
        (60_000, 100u64)
    } else {
        (600_000, 1_000)
    };
    let cfg = ConcurrencyConfig { interval: 1_000 };
    let samples = synth_samples(n, 16, 400, intervals * cfg.interval, 0xCC);
    let reps = if args.quick { 2 } else { 3 };

    let mut dense_s = Vec::new();
    let mut reference_s = Vec::new();
    for _ in 0..reps {
        let (dense, td) = time(|| concurrency_map(&samples, &cfg));
        dense_s.push(td);
        if args.reference {
            let (naive, tr) = time(|| concurrency_map_naive(&samples, &cfg));
            reference_s.push(tr);
            assert_eq!(
                dense.pairs(),
                naive.pairs(),
                "dense and naive concurrency maps disagree"
            );
        }
    }
    BenchResult {
        name: "cc",
        work: format!("{n} samples, 16 cpus, 400 lines, {intervals} intervals"),
        reps,
        dense_s,
        reference_s,
        dense_jobs_s: None,
        jobs: args.jobs,
        peak_rss_kb: peak_rss_kb(),
        batch_peak_rss_kb: None,
        delta_full_ratio: None,
    }
}

// ----------------------------------------------------------- flg_cluster

fn random_edges(n: u32, per_field: usize, seed: u64) -> (Vec<u64>, Vec<(FieldIdx, FieldIdx, f64)>) {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for _ in 0..per_field {
            let j = (rng.next_u64() % n as u64) as u32;
            if i != j {
                let w = rng.next_f64() * 200.0 - 50.0;
                edges.push((FieldIdx(i), FieldIdx(j), w));
            }
        }
    }
    let hotness = (0..n as u64).map(|_| rng.next_u64() % 10_000).collect();
    (hotness, edges)
}

fn record_u64(n: usize) -> RecordType {
    RecordType::new(
        "S",
        (0..n)
            .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
            .collect(),
    )
}

fn bench_flg_cluster(args: &Args) -> BenchResult {
    let n: u32 = if args.quick { 256 } else { 512 };
    let per_field = 8;
    let (hotness, edges) = random_edges(n, per_field, 0xF16);
    let rec = record_u64(n as usize);
    let reps = if args.quick { 20 } else { 50 };

    let mut dense_s = Vec::new();
    let mut reference_s = Vec::new();
    for _ in 0..reps {
        let (dense, td) = time(|| {
            let flg = Flg::from_parts(RecordId(0), hotness.clone(), edges.iter().copied());
            cluster(&flg, &rec, 128)
        });
        dense_s.push(td);
        if args.reference {
            let (refr, tr) = time(|| {
                let flg = FlgRef::from_parts(RecordId(0), hotness.clone(), edges.iter().copied());
                cluster_with(&flg, &rec, 128)
            });
            reference_s.push(tr);
            assert_eq!(
                dense, refr,
                "dense and reference FLG produce different clusterings"
            );
        }
    }
    BenchResult {
        name: "flg_cluster",
        work: format!("{n} fields, ~{per_field} edges/field, build+cluster"),
        reps,
        dense_s,
        reference_s,
        dense_jobs_s: None,
        jobs: args.jobs,
        peak_rss_kb: peak_rss_kb(),
        batch_peak_rss_kb: None,
        delta_full_ratio: None,
    }
}

// ---------------------------------------------------------- search_delta

/// One proposal in the search's mix (6/10 move-field, 2/10 swap, 1/10
/// split, 1/10 merge), drawn from a `SplitMix64` stream.
fn propose_move(rng: &mut SplitMix64, d: &DeltaObjective<'_, Flg>, n: u32) -> Move {
    let k = d.cluster_count() as u64;
    let field = |rng: &mut SplitMix64| FieldIdx((rng.next_u64() % n as u64) as u32);
    match rng.next_u64() % 10 {
        0..=5 => Move::MoveField {
            field: field(rng),
            dst: (rng.next_u64() % (k + 1)) as usize,
        },
        6 | 7 => Move::SwapFields {
            a: field(rng),
            b: field(rng),
        },
        8 => {
            let cluster = (rng.next_u64() % k) as usize;
            let len = d.clusters()[cluster].len().max(1);
            Move::Split {
                cluster,
                at: (rng.next_u64() % len as u64) as usize,
            }
        }
        _ => Move::Merge {
            dst: (rng.next_u64() % k) as usize,
            src: (rng.next_u64() % k) as usize,
        },
    }
}

fn bench_search_delta(args: &Args) -> BenchResult {
    // Both paths replay one precomputed trace of feasible proposals with
    // a fixed acceptance schedule (improving moves always, every third
    // non-improving one), so they visit bit-identical cluster states.
    // Dense pays `score_move` per proposal plus `apply` on the accepted
    // ones; the reference pays what a search without delta evaluation
    // pays per proposal — cloning the cluster list and re-running the
    // full canonical scorer over every cluster. The committed score
    // traces are asserted bit-equal before the ratio is trusted.
    let n: u32 = if args.quick { 1_024 } else { 2_048 };
    let per_field = 8;
    let proposals = if args.quick { 3_000usize } else { 6_000 };
    let reps = 5;
    let line = 128u64;
    let (hotness, edges) = random_edges(n, per_field, 0x5EA7C4);
    let rec = record_u64(n as usize);
    let flg = Flg::from_parts(RecordId(0), hotness, edges.iter().copied());
    let start = cluster(&flg, &rec, line);

    let mut trace: Vec<(Move, bool)> = Vec::with_capacity(proposals);
    {
        let mut d = DeltaObjective::new(&flg, &rec, &start, line);
        let mut rng = SplitMix64::new(0xACCE97);
        let mut rejected = 0u64;
        while trace.len() < proposals {
            let m = propose_move(&mut rng, &d, n);
            let Some(est) = d.score_move(m) else { continue };
            let accept = est > 0.0 || {
                rejected += 1;
                rejected.is_multiple_of(3)
            };
            if accept {
                d.apply(m);
            }
            trace.push((m, accept));
        }
    }

    let full_score = |d: &DeltaObjective<'_, Flg>| -> f64 {
        let cand: Vec<Vec<FieldIdx>> = d.clusters().to_vec();
        cand.iter().map(|c| canonical_cluster_sum(&flg, c)).sum()
    };

    let mut dense_s = Vec::new();
    let mut dense_trace: Vec<u64> = Vec::new();
    for rep in 0..reps {
        let mut d = DeltaObjective::new(&flg, &rec, &start, line);
        let mut committed: Vec<u64> = Vec::with_capacity(trace.len());
        let mut checksum = 0.0f64;
        let ((), td) = time(|| {
            for &(m, accept) in &trace {
                let est = d.score_move(m).expect("trace moves stay feasible");
                checksum += est;
                if accept {
                    d.apply(m);
                    committed.push(d.score().to_bits());
                }
            }
        });
        dense_s.push(td);
        assert!(checksum.is_finite(), "delta estimates overflowed");
        if rep == 0 {
            dense_trace = committed;
        } else {
            assert_eq!(dense_trace, committed, "delta replay diverged across reps");
        }
    }

    let mut reference_s = Vec::new();
    if args.reference {
        for _ in 0..reps {
            let mut d = DeltaObjective::new(&flg, &rec, &start, line);
            let mut committed: Vec<u64> = Vec::with_capacity(trace.len());
            let mut checksum = 0.0f64;
            let ((), tr) = time(|| {
                for &(m, accept) in &trace {
                    if accept {
                        d.apply(m);
                        committed.push(full_score(&d).to_bits());
                    } else {
                        checksum += full_score(&d);
                    }
                }
            });
            reference_s.push(tr);
            assert!(checksum.is_finite(), "full rescoring overflowed");
            assert_eq!(
                dense_trace, committed,
                "delta and full-rescore committed score traces diverged"
            );
        }
    }

    let mut r = BenchResult {
        name: "search_delta",
        work: format!("{n} fields, {proposals} proposals, ~{per_field} edges/field"),
        reps,
        dense_s,
        reference_s,
        dense_jobs_s: None,
        jobs: args.jobs,
        peak_rss_kb: peak_rss_kb(),
        batch_peak_rss_kb: None,
        delta_full_ratio: None,
    };
    r.delta_full_ratio = r.speedup();
    r
}

// ------------------------------------------------------------------ json

fn json_f64_array(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn write_report(path: &str, args: &Args, results: &[BenchResult]) -> std::io::Result<()> {
    let mut benches = Vec::new();
    for r in results {
        let mut fields = vec![
            format!("      \"name\": \"{}\"", r.name),
            format!("      \"work\": \"{}\"", r.work),
            format!("      \"reps\": {}", r.reps),
            format!("      \"dense_serial_s\": {}", json_f64_array(&r.dense_s)),
            format!("      \"dense_serial_total_s\": {:.6}", r.dense_total()),
            format!(
                "      \"dense_trimmed_mean_s\": {:.6}",
                trimmed_mean(&r.dense_s)
            ),
        ];
        let hist = r.dense_hist();
        if !hist.is_empty() {
            let s = hist.summary();
            fields.push(format!("      \"dense_p50_s\": {:.6}", s.p50 as f64 / 1e9));
            fields.push(format!("      \"dense_p99_s\": {:.6}", s.p99 as f64 / 1e9));
        }
        if !r.reference_s.is_empty() {
            fields.push(format!(
                "      \"reference_serial_s\": {}",
                json_f64_array(&r.reference_s)
            ));
            fields.push(format!(
                "      \"reference_serial_total_s\": {:.6}",
                r.reference_total()
            ));
            fields.push(format!(
                "      \"reference_trimmed_mean_s\": {:.6}",
                trimmed_mean(&r.reference_s)
            ));
            fields.push(format!(
                "      \"speedup_vs_reference\": {:.3}",
                r.speedup().expect("reference measured")
            ));
        }
        if let Some(ratio) = r.delta_full_ratio {
            fields.push(format!("      \"delta_full_ratio\": {ratio:.3}"));
        }
        if let Some(kb) = r.peak_rss_kb {
            fields.push(format!("      \"peak_rss_kb\": {kb}"));
        }
        if let Some(kb) = r.batch_peak_rss_kb {
            fields.push(format!("      \"batch_peak_rss_kb\": {kb}"));
        }
        if let Some(jp) = r.dense_jobs_s {
            fields.push(format!("      \"jobs\": {}", r.jobs));
            fields.push(format!("      \"dense_jobs_total_s\": {jp:.6}"));
            fields.push(format!(
                "      \"parallel_speedup\": {:.3}",
                r.dense_total() / jp
            ));
        }
        benches.push(format!("    {{\n{}\n    }}", fields.join(",\n")));
    }
    let doc = format!(
        "{{\n  \"schema\": \"slopt-perf-report/5\",\n  \"quick\": {},\n  \"jobs\": {},\n  \"host_cores\": {},\n  \"equivalence_checked\": {},\n  \"benches\": [\n{}\n  ]\n}}\n",
        args.quick,
        args.jobs,
        host_cores(),
        args.reference,
        benches.join(",\n")
    );
    std::fs::write(path, doc)
}

/// Number of hardware threads available to this process. `perf_guard`
/// uses it to decide whether a wall-clock parallel-speedup floor is
/// physically meaningful on the measuring host.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() {
    let args = Args::from_env();
    eprintln!(
        "[perf_report] quick={} jobs={} reference={}",
        args.quick, args.jobs, args.reference
    );

    let results = vec![
        // cc_stream must run first: VmHWM only ever rises, so its peak-RSS
        // figure is meaningful only before any other bench allocates.
        bench_cc_stream(&args),
        bench_engine(&args),
        bench_cc(&args),
        bench_flg_cluster(&args),
        bench_search_delta(&args),
    ];

    for r in &results {
        match r.speedup() {
            Some(s) => eprintln!(
                "[perf_report] {:<12} dense {:.3}s vs reference {:.3}s -> {:.2}x ({})",
                r.name,
                r.dense_total(),
                r.reference_total(),
                s,
                r.work
            ),
            None => eprintln!(
                "[perf_report] {:<12} dense {:.3}s ({})",
                r.name,
                r.dense_total(),
                r.work
            ),
        }
        if let Some(jp) = r.dense_jobs_s {
            eprintln!(
                "[perf_report] {:<12} --jobs {}: {:.3}s total ({:.2}x vs serial)",
                r.name,
                r.jobs,
                jp,
                r.dense_total() / jp
            );
        }
        if let (Some(stream), Some(batch)) = (r.peak_rss_kb, r.batch_peak_rss_kb) {
            eprintln!(
                "[perf_report] {:<12} peak RSS streamed {stream} kB vs batch {batch} kB",
                r.name
            );
            assert!(
                stream < batch,
                "streamed CC peak RSS must stay strictly below batch"
            );
        }
    }

    write_report(&args.out, &args, &results).expect("write report");
    eprintln!("[perf_report] wrote {}", args.out);
}
