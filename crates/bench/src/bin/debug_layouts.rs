//! Developer tool: dump the derived layouts, FLG edges and per-layout
//! false-sharing statistics for each struct. Not part of the paper's
//! figures; used to calibrate the workload.

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_sim::AccessClass;
use slopt_workload::{
    baseline_layouts, compute_paper_layouts, layouts_with, run_once, LayoutKind, Machine,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let layouts = compute_paper_layouts(&setup.kernel, &setup.sdet, &setup.analysis, setup.tool);
    let machine = Machine::superdome(128);

    for (letter, rec) in setup.kernel.records.all() {
        let ty = setup.kernel.record_type(rec);
        println!("########## struct {letter} ({}) ##########", ty.name());
        let s = &layouts.suggestions[&rec];
        println!("--- FLG edges (top 12) ---");
        for (f1, f2, w) in s.flg.edges().iter().take(12) {
            println!(
                "  {:<12} -- {:<12} {:+.1}",
                ty.field(*f1).name(),
                ty.field(*f2).name(),
                w
            );
        }
        let edges = s.flg.edges();
        println!("--- most negative edges ---");
        for (f1, f2, w) in edges.iter().rev().take(8).filter(|e| e.2 < 0.0) {
            println!(
                "  {:<12} -- {:<12} {:+.1}",
                ty.field(*f1).name(),
                ty.field(*f2).name(),
                w
            );
        }
        println!("--- clusters ---");
        for (i, c) in s.clustering.clusters().iter().enumerate().take(12) {
            let names: Vec<&str> = c.iter().map(|&f| ty.field(f).name()).collect();
            println!("  {i}: {names:?}");
        }

        for kind in [
            LayoutKind::Tool,
            LayoutKind::SortByHotness,
            LayoutKind::Constrained,
        ] {
            let l = layouts.layout(rec, kind);
            println!("--- {kind}: size {} lines {}", l.size(), l.line_span());
        }

        // Measure false sharing per layout on the big machine.
        let base_table = baseline_layouts(&setup.kernel, setup.sdet.line_size);
        let base = run_once(
            &setup.kernel,
            &base_table,
            &machine,
            &setup.sdet,
            3,
            &mut slopt_sim::NullObserver,
        );
        print_stats("baseline", &base, rec);
        for kind in [
            LayoutKind::Tool,
            LayoutKind::SortByHotness,
            LayoutKind::Constrained,
        ] {
            let table = layouts_with(
                &setup.kernel,
                setup.sdet.line_size,
                rec,
                layouts.layout(rec, kind).clone(),
            );
            let run = run_once(
                &setup.kernel,
                &table,
                &machine,
                &setup.sdet,
                3,
                &mut slopt_sim::NullObserver,
            );
            print_stats(&kind.to_string(), &run, rec);
        }
        println!();
    }
}

fn print_stats(label: &str, run: &slopt_workload::SdetRun, rec: slopt_ir::types::RecordId) {
    let s = &run.stats;
    println!(
        "  [{label:<16}] makespan {:>10}  tput {:>8.1}  FS(rec) {:>7}  TS(rec) {:>7}  cap(rec) {:>7} cold(rec) {:>7} hits(rec) {:>9} upg(rec) {:>7}",
        run.result.makespan,
        run.result.throughput(),
        s.class_for(rec, AccessClass::FalseSharingMiss).count,
        s.class_for(rec, AccessClass::TrueSharingMiss).count,
        s.class_for(rec, AccessClass::CapacityMiss).count,
        s.class_for(rec, AccessClass::ColdMiss).count,
        s.class_for(rec, AccessClass::Hit).count,
        s.class_for(rec, AccessClass::UpgradeHit).count,
    );
}
