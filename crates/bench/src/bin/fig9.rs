//! Figure 9: the *same* layouts as Figure 8, measured on the small 4-way
//! bus machine.
//!
//! Paper's shape: all five structs show marginal speedups for the tool
//! layout — separating the few false-sharing fields costs nothing when
//! false sharing is cheap, and the locality improvements still help.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig9 [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).
//!
//! With `--fault-plan` (see `slopt-fault`), grid items run under the
//! supervised pool: transient faults are retried away (output stays
//! bit-identical to a clean run), permanent faults degrade to a partial
//! table plus exit code 4.

use slopt_bench::{figure, figure_setup, require_figure, CommonArgs};
use slopt_workload::{compute_paper_layouts_jobs_obs, LayoutKind, Machine};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "fig9",
        "the Figure-8 layouts measured on a 4-way bus machine",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();

    eprintln!("[fig9] measurement run (16-way) + layout derivation...");
    let layouts = compute_paper_layouts_jobs_obs(
        &setup.kernel,
        &setup.sdet,
        &setup.analysis,
        setup.tool,
        setup.jobs,
        &ctx.obs,
    );

    eprintln!(
        "[fig9] measuring on bus4 ({} runs per layout, {} jobs)...",
        setup.runs, setup.jobs
    );
    let machine = Machine::bus(4);
    let outcome = figure(
        &ctx,
        "fig9",
        &setup.kernel,
        &machine,
        &setup.sdet,
        setup.runs,
        &layouts,
        &[LayoutKind::Tool, LayoutKind::SortByHotness],
        "Figure 9: the Figure-8 layouts on a 4-way bus machine",
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let fig = require_figure("fig9", &ctx, outcome);
    println!("{fig}");

    ctx.finish();
}
