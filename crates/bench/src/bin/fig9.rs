//! Figure 9: the *same* layouts as Figure 8, measured on the small 4-way
//! bus machine.
//!
//! Paper's shape: all five structs show marginal speedups for the tool
//! layout — separating the few false-sharing fields costs nothing when
//! false sharing is cheap, and the locality improvements still help.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig9 [-- --scale N --jobs N --trace-out t.jsonl --stats --checkpoint-dir d --resume --fault-plan spec --max-retries N --deadline-ms N]`
//!
//! With `--fault-plan` (see `slopt-fault`), grid items run under the
//! supervised pool: transient faults are retried away (output stays
//! bit-identical to a clean run), permanent faults degrade to a partial
//! table plus exit code 4.

use slopt_bench::{figure_fault_obs, figure_setup, require_figure, RunnerArgs};
use slopt_workload::{compute_paper_layouts_jobs_obs, LayoutKind, Machine};

fn main() {
    let args = RunnerArgs::from_env();
    let fault = args.fault_config_or_exit();
    let setup = figure_setup(&args);
    let obs = args.obs();

    eprintln!("[fig9] measurement run (16-way) + layout derivation...");
    let layouts = compute_paper_layouts_jobs_obs(
        &setup.kernel,
        &setup.sdet,
        &setup.analysis,
        setup.tool,
        setup.jobs,
        &obs,
    );

    eprintln!(
        "[fig9] measuring on bus4 ({} runs per layout, {} jobs)...",
        setup.runs, setup.jobs
    );
    let machine = Machine::bus(4);
    let outcome = figure_fault_obs(
        "fig9",
        &setup.kernel,
        &machine,
        &setup.sdet,
        setup.runs,
        &layouts,
        &[LayoutKind::Tool, LayoutKind::SortByHotness],
        "Figure 9: the Figure-8 layouts on a 4-way bus machine",
        setup.jobs,
        args.checkpoint_spec().as_ref(),
        fault.as_ref(),
        &obs,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let fig = require_figure("fig9", outcome, &args, &obs);
    println!("{fig}");

    args.finish(&obs);
}
