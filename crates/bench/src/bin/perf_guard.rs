//! `perf_guard` — the CI regression gate over `perf_report` output.
//!
//! Compares the `dense_serial_total_s` of each bench in a freshly
//! generated report against a committed baseline report and exits
//! nonzero if any bench regressed beyond the tolerance. Used by `ci.sh`
//! to assert that instrumentation (and anything else) did not slow the
//! hot paths down.
//!
//! The check is one-sided — faster is always fine — and allows
//! `baseline * (1 + tolerance) + floor` seconds, where the absolute
//! `floor` absorbs scheduler noise on the sub-100 ms `--quick` numbers.
//! Reads both `slopt-perf-report/1` and `/2` reports (the `/2` additions
//! are ignored here).
//!
//! Usage:
//! `perf_guard <fresh.json> --baseline <old.json> [--tolerance 0.10]
//!  [--floor-s 0.05]`

use slopt_obs::json::{parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

/// `bench name -> dense_serial_total_s` from one perf report.
fn bench_totals(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing schema field"))?;
    if !schema.starts_with("slopt-perf-report/") {
        return Err(format!("{path}: unexpected schema `{schema}`"));
    }
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing benches array"))?;
    let mut totals = BTreeMap::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: bench without name"))?;
        let total = b
            .get("dense_serial_total_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: bench {name} without dense_serial_total_s"))?;
        totals.insert(name.to_string(), total);
    }
    Ok(totals)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| flag_value(&args, "--baseline") != Some(a.as_str()))
        .ok_or("usage: perf_guard <fresh.json> --baseline <old.json>")?
        .clone();
    let baseline_path = flag_value(&args, "--baseline")
        .ok_or("usage: perf_guard <fresh.json> --baseline <old.json>")?
        .to_string();
    let tolerance: f64 = match flag_value(&args, "--tolerance") {
        Some(v) => v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?,
        None => 0.10,
    };
    let floor_s: f64 = match flag_value(&args, "--floor-s") {
        Some(v) => v.parse().map_err(|_| format!("bad --floor-s `{v}`"))?,
        None => 0.05,
    };

    let fresh = bench_totals(&fresh_path)?;
    let baseline = bench_totals(&baseline_path)?;
    let mut failed = false;
    for (name, &base) in &baseline {
        let Some(&now) = fresh.get(name) else {
            eprintln!("[perf_guard] {name}: missing from {fresh_path}");
            failed = true;
            continue;
        };
        let allowed = base * (1.0 + tolerance) + floor_s;
        let verdict = if now <= allowed { "ok" } else { "REGRESSED" };
        eprintln!(
            "[perf_guard] {name:<12} baseline {base:.4}s now {now:.4}s \
             (allowed <= {allowed:.4}s) {verdict}"
        );
        if now > allowed {
            failed = true;
        }
    }
    if failed {
        return Err("performance regression detected".into());
    }
    eprintln!("[perf_guard] all benches within tolerance");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perf_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}
