//! `perf_guard` — the CI regression gate over `perf_report` output.
//!
//! Compares each bench in a freshly generated report against a committed
//! baseline report and exits nonzero if any bench regressed beyond the
//! tolerance. Used by `ci.sh` to assert that instrumentation (and
//! anything else) did not slow the hot paths down.
//!
//! **Regression gate.** One-sided — faster is always fine — allowing
//! `baseline * (1 + tolerance) + floor` seconds, where the absolute
//! `floor` absorbs scheduler noise on the sub-100 ms `--quick` numbers.
//! When both reports carry `dense_trimmed_mean_s` (schema /3) the gate
//! compares trimmed means — per-rep and outlier-robust, so it survives a
//! rep-count change between baseline and fresh; older reports fall back
//! to `dense_serial_total_s`. Reads `slopt-perf-report/1` through `/5`
//! (schema /5 adds advisory `dense_p50_s` / `dense_p99_s` quantiles,
//! which the gate ignores — `trace_diff` is the tool for reading them).
//!
//! **Growth floors.** Beyond no-regression, the gate can enforce that a
//! claimed win actually holds:
//!
//! * `--require-speedup name:min` — the fresh report's
//!   `speedup_vs_reference` for bench `name` must be ≥ `min`. When the
//!   bench carries a `delta_full_ratio` (schema /4, the `search_delta`
//!   bench) that field is floored instead — it is the per-proposal
//!   delta-vs-full cost ratio the floor is actually about, and it is
//!   measured serially, so it is never host-core-skipped.
//! * `--require-parallel name:min` — the fresh report's
//!   `parallel_speedup` for bench `name` must be ≥ `min`. Wall-clock
//!   parallel speedup above 1 is physically impossible when the host has
//!   fewer cores than workers, so this floor is only *enforced* when the
//!   fresh report's `host_cores` ≥ its `jobs`; on smaller hosts the
//!   check is reported and skipped with a note (the floor still runs on
//!   any adequately sized CI host).
//!
//! Both flags repeat. A bench named in a floor but absent from the fresh
//! report is an error.
//!
//! Usage:
//! `perf_guard <fresh.json> --baseline <old.json> [--tolerance 0.10]
//!  [--floor-s 0.05] [--require-speedup cc_stream:2.0]...
//!  [--require-parallel cc_stream:3.0]...`

use slopt_obs::json::{parse, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

/// All values of a repeatable `--flag name:min` argument.
fn flag_values(args: &[String], name: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for w in args.windows(2) {
        if w[0] != name {
            continue;
        }
        let (bench, min) = w[1]
            .split_once(':')
            .ok_or_else(|| format!("bad {name} `{}` (want name:min)", w[1]))?;
        let min: f64 = min
            .parse()
            .map_err(|_| format!("bad {name} `{}` (want name:min)", w[1]))?;
        out.push((bench.to_string(), min));
    }
    Ok(out)
}

/// Everything the gate needs from one perf report.
struct Report {
    /// `bench name -> dense_serial_total_s`.
    totals: BTreeMap<String, f64>,
    /// `bench name -> dense_trimmed_mean_s` (schema /3 reports only).
    trimmed: BTreeMap<String, f64>,
    /// `bench name -> speedup_vs_reference` where present.
    speedups: BTreeMap<String, f64>,
    /// `bench name -> delta_full_ratio` (schema /4) where present.
    delta_ratios: BTreeMap<String, f64>,
    /// `bench name -> (parallel_speedup, jobs)` where present.
    parallel: BTreeMap<String, (f64, f64)>,
    /// Top-level `host_cores` (schema /3); `None` on older reports.
    host_cores: Option<f64>,
}

fn read_report(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing schema field"))?;
    if !schema.starts_with("slopt-perf-report/") {
        return Err(format!("{path}: unexpected schema `{schema}`"));
    }
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing benches array"))?;
    let mut report = Report {
        totals: BTreeMap::new(),
        trimmed: BTreeMap::new(),
        speedups: BTreeMap::new(),
        delta_ratios: BTreeMap::new(),
        parallel: BTreeMap::new(),
        host_cores: doc.get("host_cores").and_then(Json::as_f64),
    };
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: bench without name"))?;
        let total = b
            .get("dense_serial_total_s")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: bench {name} without dense_serial_total_s"))?;
        report.totals.insert(name.to_string(), total);
        if let Some(tm) = b.get("dense_trimmed_mean_s").and_then(Json::as_f64) {
            report.trimmed.insert(name.to_string(), tm);
        }
        if let Some(s) = b.get("speedup_vs_reference").and_then(Json::as_f64) {
            report.speedups.insert(name.to_string(), s);
        }
        if let Some(r) = b.get("delta_full_ratio").and_then(Json::as_f64) {
            report.delta_ratios.insert(name.to_string(), r);
        }
        if let (Some(p), Some(j)) = (
            b.get("parallel_speedup").and_then(Json::as_f64),
            b.get("jobs").and_then(Json::as_f64),
        ) {
            report.parallel.insert(name.to_string(), (p, j));
        }
    }
    Ok(report)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_operand = |a: &String| {
        for flag in [
            "--baseline",
            "--tolerance",
            "--floor-s",
            "--require-speedup",
            "--require-parallel",
        ] {
            if flag_value(&args, flag) == Some(a.as_str()) {
                return true;
            }
        }
        false
    };
    let fresh_path = args
        .iter()
        .find(|a| !a.starts_with("--") && !flag_operand(a))
        .ok_or("usage: perf_guard <fresh.json> --baseline <old.json>")?
        .clone();
    let baseline_path = flag_value(&args, "--baseline")
        .ok_or("usage: perf_guard <fresh.json> --baseline <old.json>")?
        .to_string();
    let tolerance: f64 = match flag_value(&args, "--tolerance") {
        Some(v) => v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?,
        None => 0.10,
    };
    let floor_s: f64 = match flag_value(&args, "--floor-s") {
        Some(v) => v.parse().map_err(|_| format!("bad --floor-s `{v}`"))?,
        None => 0.05,
    };
    let require_speedup = flag_values(&args, "--require-speedup")?;
    let require_parallel = flag_values(&args, "--require-parallel")?;

    let fresh = read_report(&fresh_path)?;
    let baseline = read_report(&baseline_path)?;
    let mut failed = false;

    // Regression gate: trimmed means when both sides have them
    // (rep-count independent), totals otherwise.
    for (name, &base_total) in &baseline.totals {
        if !fresh.totals.contains_key(name) {
            eprintln!("[perf_guard] {name}: missing from {fresh_path}");
            failed = true;
            continue;
        }
        let (base, now, metric) = match (baseline.trimmed.get(name), fresh.trimmed.get(name)) {
            (Some(&b), Some(&n)) => (b, n, "trimmed mean"),
            _ => (base_total, fresh.totals[name], "total"),
        };
        let allowed = base * (1.0 + tolerance) + floor_s;
        let verdict = if now <= allowed { "ok" } else { "REGRESSED" };
        eprintln!(
            "[perf_guard] {name:<12} baseline {base:.4}s now {now:.4}s \
             (allowed <= {allowed:.4}s, {metric}) {verdict}"
        );
        if now > allowed {
            failed = true;
        }
    }

    // Speedup floors: the fresh report must beat its reference by the
    // stated factor. A bench carrying a `delta_full_ratio` is floored on
    // that field — the per-proposal cost ratio the floor is about.
    for (name, min) in &require_speedup {
        let (value, metric) = match (fresh.delta_ratios.get(name), fresh.speedups.get(name)) {
            (Some(&r), _) => (Some(r), "delta_full_ratio"),
            (None, s) => (s.copied(), "speedup_vs_reference"),
        };
        match value {
            Some(s) if s >= *min => {
                eprintln!("[perf_guard] {name:<12} {metric} {s:.3} >= {min:.3} ok");
            }
            Some(s) => {
                eprintln!("[perf_guard] {name:<12} {metric} {s:.3} < {min:.3} TOO SLOW");
                failed = true;
            }
            None => {
                eprintln!(
                    "[perf_guard] {name:<12} no speedup_vs_reference in {fresh_path} \
                     (bench missing or --no-reference run)"
                );
                failed = true;
            }
        }
    }

    // Parallel floors: enforced only when the measuring host has at
    // least as many cores as the bench used workers — wall-clock speedup
    // beyond 1 is impossible below that, and gating on it would make the
    // gate fail on every small host regardless of the code.
    for (name, min) in &require_parallel {
        let Some(&(p, jobs)) = fresh.parallel.get(name) else {
            eprintln!("[perf_guard] {name:<12} no parallel_speedup in {fresh_path}");
            failed = true;
            continue;
        };
        let cores = fresh.host_cores.unwrap_or(0.0);
        if cores < jobs {
            eprintln!(
                "[perf_guard] {name:<12} parallel_speedup {p:.3} (floor {min:.3}) SKIPPED: \
                 host has {cores:.0} cores < {jobs:.0} jobs, wall-clock speedup not measurable"
            );
            continue;
        }
        if p >= *min {
            eprintln!("[perf_guard] {name:<12} parallel_speedup {p:.3} >= {min:.3} ok");
        } else {
            eprintln!("[perf_guard] {name:<12} parallel_speedup {p:.3} < {min:.3} TOO SLOW");
            failed = true;
        }
    }

    if failed {
        return Err("performance regression detected".into());
    }
    eprintln!("[perf_guard] all benches within tolerance");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perf_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}
