//! Developer check: with the noise floor disabled, does the §5.2
//! constrained edit reshuffle the hand-tuned baseline of struct A and
//! lose performance? (Referenced in EXPERIMENTS.md.)

use slopt_bench::default_figure_setup;
use slopt_core::{suggest_constrained, SubgraphParams, ToolParams};
use slopt_ir::layout::StructLayout;
use slopt_workload::{analyze, baseline_layouts, layouts_with, loss_for, measure, Machine};

fn main() {
    let setup = default_figure_setup(2);
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let a = kernel.records.a;
    let ty = kernel.record_type(a);
    let affinity = slopt_workload::analyze::affinity_for(kernel, &analysis, a);
    let loss = loss_for(kernel, &analysis, a);
    let original = StructLayout::declaration_order(ty, 128).unwrap();

    let machine = Machine::superdome(128);
    let base_table = baseline_layouts(kernel, setup.sdet.line_size);
    let baseline = measure(kernel, &base_table, &machine, &setup.sdet, setup.runs);

    for floor in [0.0, 0.01] {
        let params = ToolParams {
            subgraph: SubgraphParams {
                negative_floor: floor,
                ..SubgraphParams::default()
            },
            ..setup.tool
        };
        let layout = suggest_constrained(ty, &original, &affinity, Some(&loss), params).unwrap();
        let unchanged = layout.order() == original.order();
        let table = layouts_with(kernel, setup.sdet.line_size, a, layout);
        let t = measure(kernel, &table, &machine, &setup.sdet, setup.runs);
        println!(
            "negative_floor = {floor}: order unchanged = {unchanged}, {:+.2}% vs baseline",
            t.pct_vs(&baseline)
        );
    }
}
