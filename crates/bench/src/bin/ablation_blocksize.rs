//! Ablation: coherence-block size (64 B vs the Itanium's 128 B).
//!
//! The paper notes that the coherence protocol "does not distinguish
//! between individual bytes within a coherence block", so block size sets
//! the blast radius of false sharing. Smaller blocks make the naive
//! sort-by-hotness layout less catastrophic (fewer unrelated fields share
//! a block) at the cost of more lines per affinity group.
//!
//! We measure baseline / tool / sort-by-hotness layouts for struct A at
//! both block sizes on the 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_blocksize`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_sim::CacheConfig;
use slopt_workload::{
    baseline_layouts, compute_paper_layouts, layouts_with, measure, LayoutKind, Machine,
    SdetConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let machine = Machine::superdome(128);

    println!("=== ablation: coherence block size, struct A (128-way) ===");
    println!("{:>8} {:>12} {:>18}", "block", "tool", "sort-by-hotness");
    for line_size in [64u64, 128u64] {
        let sdet = SdetConfig {
            line_size,
            cache: CacheConfig {
                line_size,
                // Keep capacity constant: halve the line, double the sets.
                sets: (512 * 128 / line_size) as usize,
                ways: 8,
            },
            ..setup.sdet.clone()
        };
        let layouts = compute_paper_layouts(&setup.kernel, &sdet, &setup.analysis, {
            let mut tool = setup.tool;
            tool.layout.line_size = line_size;
            tool
        });
        let a = setup.kernel.records.a;
        let base_table = baseline_layouts(&setup.kernel, line_size);
        let baseline = measure(&setup.kernel, &base_table, &machine, &sdet, setup.runs);
        let mut row = Vec::new();
        for kind in [LayoutKind::Tool, LayoutKind::SortByHotness] {
            let table = layouts_with(&setup.kernel, line_size, a, layouts.layout(a, kind).clone());
            let t = measure(&setup.kernel, &table, &machine, &sdet, setup.runs);
            row.push(t.pct_vs(&baseline));
        }
        println!("{line_size:>7}B {:>11.2}% {:>17.2}%", row[0], row[1]);
    }
}
