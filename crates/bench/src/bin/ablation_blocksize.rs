//! Ablation: coherence-block size (64 B vs the Itanium's 128 B).
//!
//! The paper notes that the coherence protocol "does not distinguish
//! between individual bytes within a coherence block", so block size sets
//! the blast radius of false sharing. Smaller blocks make the naive
//! sort-by-hotness layout less catastrophic (fewer unrelated fields share
//! a block) at the cost of more lines per affinity group.
//!
//! We measure baseline / tool / sort-by-hotness layouts for struct A at
//! both block sizes on the 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_blocksize [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{figure_setup, measure_cells, require_complete, Cell, CommonArgs};
use slopt_sim::CacheConfig;
use slopt_workload::{
    baseline_layouts, compute_paper_layouts_jobs_obs, layouts_with, LayoutKind, Machine, SdetConfig,
};

const KINDS: [LayoutKind; 2] = [LayoutKind::Tool, LayoutKind::SortByHotness];

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_blocksize",
        "64 B vs 128 B coherence blocks, struct A (128-way)",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let machine = Machine::superdome(128);
    let block_sizes = [64u64, 128u64];

    // The grid: per block size, one baseline cell followed by one cell per
    // layout kind for struct A.
    let mut cells = Vec::new();
    for line_size in block_sizes {
        let sdet = SdetConfig {
            line_size,
            cache: CacheConfig {
                line_size,
                // Keep capacity constant: halve the line, double the sets.
                sets: (512 * 128 / line_size) as usize,
                ways: 8,
            },
            ..setup.sdet.clone()
        };
        let layouts = compute_paper_layouts_jobs_obs(
            &setup.kernel,
            &sdet,
            &setup.analysis,
            {
                let mut tool = setup.tool;
                tool.layout.line_size = line_size;
                tool
            },
            setup.jobs,
            &ctx.obs,
        );
        let a = setup.kernel.records.a;
        cells.push(Cell {
            label: format!("{line_size}B/baseline"),
            table: baseline_layouts(&setup.kernel, line_size),
            sdet: sdet.clone(),
            machine: machine.clone(),
        });
        for kind in KINDS {
            cells.push(Cell {
                label: format!("{line_size}B/{kind}"),
                table: layouts_with(&setup.kernel, line_size, a, layouts.layout(a, kind).clone()),
                sdet: sdet.clone(),
                machine: machine.clone(),
            });
        }
    }

    let outcome = measure_cells(
        &ctx,
        "ablation_blocksize",
        &setup.kernel,
        &cells,
        setup.runs,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let measured = require_complete("ablation_blocksize", &ctx, &cells, outcome);

    println!("=== ablation: coherence block size, struct A (128-way) ===");
    println!("{:>8} {:>12} {:>18}", "block", "tool", "sort-by-hotness");
    let per_block = 1 + KINDS.len();
    for (i, line_size) in block_sizes.iter().enumerate() {
        let group = &measured[i * per_block..(i + 1) * per_block];
        let baseline = &group[0];
        let row: Vec<f64> = group[1..].iter().map(|t| t.pct_vs(baseline)).collect();
        println!("{line_size:>7}B {:>11.2}% {:>17.2}%", row[0], row[1]);
    }

    ctx.finish();
}
