//! Ablation: the Minimum Heuristic (paper §4.1) versus the plain CGO'06
//! group-frequency affinity.
//!
//! The Minimum Heuristic bounds a pair's affinity by the *smaller* of the
//! two fields' access counts in the region (the dynamic weight of any
//! acyclic path containing both). The naive alternative gives every pair
//! in a group the group's execution frequency, overweighting rarely
//! accessed fields that happen to sit in hot loops.
//!
//! We compare the two modes' automatic layouts for every struct on the
//! 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_min_heuristic`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_core::suggest_layout;
use slopt_ir::affinity::{AffinityGraph, AffinityMode};
use slopt_workload::{analyze, baseline_layouts, layouts_with, loss_for, measure, Machine};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let machine = Machine::superdome(128);
    let base_table = baseline_layouts(kernel, setup.sdet.line_size);
    let baseline = measure(kernel, &base_table, &machine, &setup.sdet, setup.runs);

    println!("=== ablation: Minimum Heuristic vs group-frequency affinity (128-way) ===");
    println!("{:<8} {:>14} {:>18}", "struct", "minimum", "group-frequency");
    for (letter, rec) in kernel.records.all() {
        let ty = kernel.record_type(rec);
        let loss = loss_for(kernel, &analysis, rec);
        let mut row = Vec::new();
        for mode in [AffinityMode::Minimum, AffinityMode::GroupFrequency] {
            let affinity =
                AffinityGraph::analyze_with_mode(&kernel.program, &analysis.profile, rec, mode);
            let suggestion =
                suggest_layout(ty, &affinity, Some(&loss), setup.tool).expect("valid record");
            let table = layouts_with(kernel, setup.sdet.line_size, rec, suggestion.layout.clone());
            let t = measure(kernel, &table, &machine, &setup.sdet, setup.runs);
            row.push(t.pct_vs(&baseline));
        }
        println!("{letter:<8} {:>13.2}% {:>17.2}%", row[0], row[1]);
    }
}
