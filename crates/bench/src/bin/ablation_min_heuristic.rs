//! Ablation: the Minimum Heuristic (paper §4.1) versus the plain CGO'06
//! group-frequency affinity.
//!
//! The Minimum Heuristic bounds a pair's affinity by the *smaller* of the
//! two fields' access counts in the region (the dynamic weight of any
//! acyclic path containing both). The naive alternative gives every pair
//! in a group the group's execution frequency, overweighting rarely
//! accessed fields that happen to sit in hot loops.
//!
//! We compare the two modes' automatic layouts for every struct on the
//! 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_min_heuristic [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{figure_setup, measure_cells, require_complete, Cell, CommonArgs};
use slopt_core::suggest_layout;
use slopt_ir::affinity::{AffinityGraph, AffinityMode};
use slopt_workload::{analyze, baseline_layouts, layouts_with, loss_for, Machine};

const MODES: [AffinityMode; 2] = [AffinityMode::Minimum, AffinityMode::GroupFrequency];

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_min_heuristic",
        "Minimum Heuristic vs group-frequency affinity (128-way)",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let machine = Machine::superdome(128);

    // The grid: one baseline cell, then a (struct × mode) cell block.
    let mut cells = vec![Cell {
        label: "baseline".to_string(),
        table: baseline_layouts(kernel, setup.sdet.line_size),
        sdet: setup.sdet.clone(),
        machine: machine.clone(),
    }];
    for (letter, rec) in kernel.records.all() {
        let ty = kernel.record_type(rec);
        let loss = loss_for(kernel, &analysis, rec);
        for mode in MODES {
            let affinity =
                AffinityGraph::analyze_with_mode(&kernel.program, &analysis.profile, rec, mode);
            let suggestion =
                suggest_layout(ty, &affinity, Some(&loss), setup.tool).expect("valid record");
            cells.push(Cell {
                label: format!("{letter}/{mode:?}"),
                table: layouts_with(kernel, setup.sdet.line_size, rec, suggestion.layout.clone()),
                sdet: setup.sdet.clone(),
                machine: machine.clone(),
            });
        }
    }

    let outcome = measure_cells(&ctx, "ablation_min_heuristic", kernel, &cells, setup.runs)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let measured = require_complete("ablation_min_heuristic", &ctx, &cells, outcome);
    let baseline = &measured[0];

    println!("=== ablation: Minimum Heuristic vs group-frequency affinity (128-way) ===");
    println!(
        "{:<8} {:>14} {:>18}",
        "struct", "minimum", "group-frequency"
    );
    for (i, (letter, _)) in kernel.records.all().iter().enumerate() {
        let group = &measured[1 + i * MODES.len()..1 + (i + 1) * MODES.len()];
        println!(
            "{letter:<8} {:>13.2}% {:>17.2}%",
            group[0].pct_vs(baseline),
            group[1].pct_vs(baseline)
        );
    }

    ctx.finish();
}
