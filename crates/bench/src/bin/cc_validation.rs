//! Code Concurrency validation (paper §4.2–4.3).
//!
//! Two checks that the paper performs or assumes:
//!
//! 1. **Sampling fidelity** — Code Concurrency computed from periodic PMU
//!    samples should identify the same highly concurrent source-line pairs
//!    as exact (per-block-execution) counts. We run the same workload with
//!    the sampler and with an exact counter and report the overlap of the
//!    top-K pairs plus a rank-agreement score.
//! 2. **Machine-size stability** — the paper collected concurrency on
//!    4-way and 16-way machines and found "source line pairs with high
//!    concurrency values remain more or less the same". We compare the
//!    top-K sets across machine sizes.
//!
//! Usage: `cargo run --release -p slopt-bench --bin cc_validation [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{default_figure_setup, CommonArgs};
use slopt_sample::{concurrency_map, ConcurrencyConfig, ConcurrencyMap, ExactCounter, Sampler};
use slopt_workload::{baseline_layouts, run_once, Machine};

/// Fraction of `a`'s top-k pairs that also appear in `b`'s top-k.
fn top_overlap(a: &ConcurrencyMap, b: &ConcurrencyMap, k: usize) -> f64 {
    let ta: std::collections::HashSet<_> =
        a.top_pairs(k).into_iter().map(|(x, y, _)| (x, y)).collect();
    let tb: std::collections::HashSet<_> =
        b.top_pairs(k).into_iter().map(|(x, y, _)| (x, y)).collect();
    if ta.is_empty() {
        return 0.0;
    }
    ta.intersection(&tb).count() as f64 / ta.len() as f64
}

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "cc_validation",
        "Code Concurrency sampling-fidelity and machine-size checks",
        "",
        &[],
    );
    let setup = default_figure_setup(args.scale);
    let kernel = &setup.kernel;
    let layouts = baseline_layouts(kernel, setup.sdet.line_size);
    let cc_cfg = ConcurrencyConfig {
        interval: setup.analysis.interval,
    };

    // 1. Sampled vs exact, same 16-way run (same seed => same execution).
    let machine = Machine::superdome(16);
    let mut sampler = Sampler::new(machine.cpus(), setup.analysis.sampler);
    run_once(
        kernel,
        &layouts,
        &machine,
        &setup.sdet,
        setup.analysis.seed,
        &mut sampler,
    );
    let sampled = concurrency_map(sampler.samples(), &cc_cfg);

    let mut exact = ExactCounter::new();
    run_once(
        kernel,
        &layouts,
        &machine,
        &setup.sdet,
        setup.analysis.seed,
        &mut exact,
    );
    let exact_cc = concurrency_map(exact.samples(), &cc_cfg);

    println!("=== Code Concurrency validation ===");
    println!(
        "16-way: {} sampled pairs, {} exact pairs",
        sampled.len(),
        exact_cc.len()
    );
    for k in [10, 20, 50] {
        println!(
            "  top-{k} overlap sampled vs exact: {:.0}%",
            100.0 * top_overlap(&sampled, &exact_cc, k)
        );
    }

    // 2. 4-way vs 16-way stability (sampled, like the paper).
    let machine4 = Machine::superdome(4);
    let mut sampler4 = Sampler::new(machine4.cpus(), setup.analysis.sampler);
    run_once(
        kernel,
        &layouts,
        &machine4,
        &setup.sdet,
        setup.analysis.seed,
        &mut sampler4,
    );
    let sampled4 = concurrency_map(sampler4.samples(), &cc_cfg);
    for k in [10, 20] {
        println!(
            "  top-{k} overlap 4-way vs 16-way: {:.0}% (paper: 'more or less the same')",
            100.0 * top_overlap(&sampled4, &sampled, k)
        );
    }

    // Show the most concurrent pairs for the curious.
    println!("top sampled pairs (16-way):");
    for (l1, l2, cc) in sampled.top_pairs(8) {
        println!("  {l1} -- {l2}: {cc}");
    }
}
