//! Figure 10: the best layout per struct — fully automatic clustering
//! versus the §5.2 constrained edit of the baseline (important-edge
//! subgraph), on the 128-way Superdome.
//!
//! Paper's shape: the constrained mode rescues struct A (the automatic
//! layout loses ~5% there; the constrained edit turns that into a gain)
//! and slightly beats automatic on B; C and D stay best with the
//! automatic layout. Best-case improvement ≈ 3.2%.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig10 [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).
//!
//! With `--fault-plan` (see `slopt-fault`), grid items run under the
//! supervised pool: transient faults are retried away (output stays
//! bit-identical to a clean run), permanent faults degrade to a partial
//! table plus exit code 4.

use slopt_bench::{figure, figure_setup, require_figure, CommonArgs};
use slopt_workload::{best_rows, compute_paper_layouts_jobs_obs, LayoutKind, Machine};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "fig10",
        "best layout per struct (automatic vs constrained) on the 128-way Superdome",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();

    eprintln!("[fig10] measurement run (16-way) + layout derivation...");
    let layouts = compute_paper_layouts_jobs_obs(
        &setup.kernel,
        &setup.sdet,
        &setup.analysis,
        setup.tool,
        setup.jobs,
        &ctx.obs,
    );

    eprintln!(
        "[fig10] measuring on superdome128 ({} runs per layout, {} jobs)...",
        setup.runs, setup.jobs
    );
    let machine = Machine::superdome(128);
    let outcome = figure(
        &ctx,
        "fig10",
        &setup.kernel,
        &machine,
        &setup.sdet,
        setup.runs,
        &layouts,
        &[LayoutKind::Tool, LayoutKind::Constrained],
        "Figure 10: best layout per struct (automatic vs constrained)",
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let fig = require_figure("fig10", &ctx, outcome);
    println!("{fig}");

    println!("best layout per struct:");
    for (letter, kind, pct) in best_rows(&fig) {
        println!("  {letter}: {kind} ({pct:+.2}%)");
    }

    ctx.finish();
}
