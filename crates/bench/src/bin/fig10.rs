//! Figure 10: the best layout per struct — fully automatic clustering
//! versus the §5.2 constrained edit of the baseline (important-edge
//! subgraph), on the 128-way Superdome.
//!
//! Paper's shape: the constrained mode rescues struct A (the automatic
//! layout loses ~5% there; the constrained edit turns that into a gain)
//! and slightly beats automatic on B; C and D stay best with the
//! automatic layout. Best-case improvement ≈ 3.2%.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig10 [-- --scale N]`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_workload::{best_rows, compute_paper_layouts, figure_rows, LayoutKind, Machine};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));

    eprintln!("[fig10] measurement run (16-way) + layout derivation...");
    let layouts = compute_paper_layouts(&setup.kernel, &setup.sdet, &setup.analysis, setup.tool);

    eprintln!("[fig10] measuring on superdome128 ({} runs per layout)...", setup.runs);
    let machine = Machine::superdome(128);
    let fig = figure_rows(
        &setup.kernel,
        &machine,
        &setup.sdet,
        setup.runs,
        &layouts,
        &[LayoutKind::Tool, LayoutKind::Constrained],
        "Figure 10: best layout per struct (automatic vs constrained)",
    );
    println!("{fig}");

    println!("best layout per struct:");
    for (letter, kind, pct) in best_rows(&fig) {
        println!("  {letter}: {kind} ({pct:+.2}%)");
    }
}
