//! `fig_search` — greedy clustering vs the stochastic layout search.
//!
//! Not a paper figure: the paper stops at greedy clustering (§7 lists a
//! "better clustering algorithm" as future work). This bin runs the
//! `slopt-search` annealing portfolio on the same per-record FLG the
//! tool clusters, over two workloads:
//!
//! * the built-in kernel (structs A–E), where the affinity groups are
//!   small and symmetric and greedy is already optimal — the search
//!   matches it bit-for-bit, which is the honest baseline column;
//! * the shipped stress workload (`slopt_workload::stress`), whose
//!   records pair every hot field with a strong companion that is not
//!   its best line-mate — greedy lands in a local optimum of the
//!   single-move neighbourhood and only the annealing search escapes.
//!
//! Per struct it reports the FLG objective of the greedy clustering vs
//! the search winner, and simulated-cycle throughput vs the baseline
//! layout for the tool (greedy), sort-by-hotness and search layouts —
//! the search column picked by re-measuring the top `--top` candidates
//! in the simulator (objective wins that don't survive simulation lose
//! here).
//!
//! Deterministic: one master seed (`--seed`) fixes every chain, and the
//! output is bit-identical for every `--jobs` value.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig_search [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]) plus
//! `--seed`, `--chains`, `--steps`, `--top`.

use slopt_bench::{figure_setup, CommonArgs};
use slopt_core::{sort_by_hotness, ToolParams};
use slopt_ir::types::RecordId;
use slopt_obs::Obs;
use slopt_search::{Portfolio, SearchParams};
use slopt_workload::{
    analyze_obs, baseline_layouts, layouts_with, measure_jobs, search_for_obs, stress_records,
    stress_workload, suggest_for_obs, validate_top_k, KernelAnalysis, Machine, SdetConfig,
    WorkloadSpec,
};

const EXTRA_FLAGS: &str = "SEARCH OPTIONS:
    --seed <u64>          master seed for the annealing portfolio [default: 42]
    --chains <n>          independent annealing chains per record [default: 6]
    --steps <n>           annealing steps per chain [default: 1200]
    --top <n>             candidates re-measured in the simulator [default: 2]
";

fn uint_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.windows(2)
        .find(|w| w[0] == name)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// Everything one table section needs beyond the workload itself.
struct SectionCfg<'a> {
    sdet: &'a SdetConfig,
    tool: ToolParams,
    params: &'a SearchParams,
    portfolio: Portfolio,
    machine: &'a Machine,
    runs: usize,
    jobs: usize,
    top: usize,
}

/// Runs the greedy-vs-search comparison over one workload's records and
/// prints its table. Returns how many records the search's winning
/// objective strictly beat greedy on.
fn section<W: WorkloadSpec + Sync>(
    label: &str,
    w: &W,
    records: &[(String, RecordId)],
    analysis: &KernelAnalysis,
    cfg: &SectionCfg<'_>,
    obs: &Obs,
) -> usize {
    let base_table = baseline_layouts(w, cfg.sdet.line_size);
    let base = measure_jobs(w, &base_table, cfg.machine, cfg.sdet, cfg.runs, cfg.jobs);

    println!(
        "[{label}] {:<12} {:>14} {:>14} {:>10}  {:>8} {:>8} {:>8}",
        "struct", "greedy obj", "search obj", "delta", "tool%", "hot%", "search%"
    );
    let mut better = 0usize;
    for (name, rec) in records {
        let rec = *rec;
        let search = search_for_obs(
            w,
            analysis,
            rec,
            cfg.tool,
            cfg.params,
            cfg.portfolio,
            cfg.jobs,
            obs,
        );
        let (validated, best_i) = validate_top_k(
            w,
            &search,
            cfg.tool,
            cfg.machine,
            cfg.sdet,
            cfg.top,
            cfg.runs,
            cfg.jobs,
        );
        let suggestion = suggest_for_obs(w, analysis, rec, cfg.tool, obs);
        let ty = w.record_type(rec);
        let hot: Vec<u64> = ty
            .field_indices()
            .map(|f| suggestion.flg.hotness(f))
            .collect();
        let hot_layout =
            sort_by_hotness(ty, &hot, cfg.tool.layout.line_size).expect("valid record");
        let measure_layout = |layout: slopt_ir::layout::StructLayout| {
            let table = layouts_with(w, cfg.sdet.line_size, rec, layout);
            measure_jobs(w, &table, cfg.machine, cfg.sdet, cfg.runs, cfg.jobs)
        };
        let tool_tp = measure_layout(suggestion.layout.clone());
        let hot_tp = measure_layout(hot_layout);
        let win = search.outcome.winner();
        let delta = win.score - search.outcome.greedy_score;
        if search.outcome.improved() {
            better += 1;
        }
        println!(
            "[{label}] {:<12} {:>14.6} {:>14.6} {:>+10.6}  {:>+8.2} {:>+8.2} {:>+8.2}",
            name,
            search.outcome.greedy_score,
            win.score,
            delta,
            tool_tp.pct_vs(&base),
            hot_tp.pct_vs(&base),
            validated[best_i].throughput.pct_vs(&base),
        );
    }
    println!(
        "[{label}] search: strictly better objective than greedy on {better}/{} structs",
        records.len()
    );
    better
}

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "fig_search",
        "greedy clustering vs the stochastic layout search",
        EXTRA_FLAGS,
        &[
            ("--seed", true),
            ("--chains", true),
            ("--steps", true),
            ("--top", true),
        ],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let raw: Vec<String> = std::env::args().collect();
    let seed = uint_flag(&raw, "--seed", 42);
    let chains = uint_flag(&raw, "--chains", 6) as usize;
    let steps = uint_flag(&raw, "--steps", 1_200) as usize;
    let top = (uint_flag(&raw, "--top", 2) as usize).max(1);
    let obs = &ctx.obs;

    let params = SearchParams {
        steps,
        ..SearchParams::default()
    };
    let cfg = SectionCfg {
        sdet: &setup.sdet,
        tool: setup.tool,
        params: &params,
        portfolio: Portfolio {
            chains,
            master_seed: seed,
        },
        machine: &Machine::superdome(16),
        runs: setup.runs,
        jobs: setup.jobs,
        top,
    };

    eprintln!(
        "[fig_search] seed {seed}, {chains} chains x {steps} steps, \
         validating top {top} in simulated cycles ({} runs, {} jobs)...",
        setup.runs, setup.jobs
    );
    let kernel_records: Vec<(String, RecordId)> = setup
        .kernel
        .records
        .all()
        .iter()
        .map(|&(l, r)| (l.to_string(), r))
        .collect();
    let kernel_analysis = analyze_obs(&setup.kernel, &setup.sdet, &setup.analysis, obs);
    let kernel_better = section(
        "kernel",
        &setup.kernel,
        &kernel_records,
        &kernel_analysis,
        &cfg,
        obs,
    );

    eprintln!("[fig_search] stress workload measurement run...");
    let stress = stress_workload();
    let stress_recs = stress_records(&stress);
    let stress_analysis = analyze_obs(&stress, &setup.sdet, &setup.analysis, obs);
    let stress_better = section("stress", &stress, &stress_recs, &stress_analysis, &cfg, obs);

    println!(
        "search vs greedy: kernel {kernel_better}/{} (greedy already optimal there), \
         stress {stress_better}/{} strictly better",
        kernel_records.len(),
        stress_recs.len()
    );

    ctx.finish();
}
