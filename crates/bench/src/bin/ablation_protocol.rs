//! Ablation: MESI vs MSI coherence (paper §1 lists MESI, MSI, MOSI and
//! MOESI as the protocol family; the HP machines run MESI-style
//! protocols).
//!
//! The Exclusive state lets a sole reader upgrade to Modified silently;
//! MSI charges a directory round trip for every S→M transition. The
//! workload's pooled read-then-write paths (file positions, LRU ticks)
//! make the difference visible, while *false-sharing* behaviour — the
//! paper's subject — is protocol-independent: the sort-by-hotness
//! catastrophe on struct A is reproduced under both.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_protocol [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{figure_setup, measure_cells, require_complete, Cell, CommonArgs};
use slopt_sim::Protocol;
use slopt_workload::{
    baseline_layouts, compute_paper_layouts_jobs_obs, layouts_with, LayoutKind, Machine, SdetConfig,
};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_protocol",
        "MESI vs MSI coherence, struct A (128-way)",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let machine = Machine::superdome(128);
    let layouts = compute_paper_layouts_jobs_obs(
        &setup.kernel,
        &setup.sdet,
        &setup.analysis,
        setup.tool,
        setup.jobs,
        &ctx.obs,
    );
    let a = setup.kernel.records.a;
    let protocols = [Protocol::Mesi, Protocol::Msi];

    // The grid: per protocol, a baseline cell and a hotness-A cell.
    let mut cells = Vec::new();
    for protocol in protocols {
        let sdet = SdetConfig {
            protocol,
            ..setup.sdet.clone()
        };
        cells.push(Cell {
            label: format!("{protocol:?}/baseline"),
            table: baseline_layouts(&setup.kernel, sdet.line_size),
            sdet: sdet.clone(),
            machine: machine.clone(),
        });
        cells.push(Cell {
            label: format!("{protocol:?}/hotness-A"),
            table: layouts_with(
                &setup.kernel,
                sdet.line_size,
                a,
                layouts.layout(a, LayoutKind::SortByHotness).clone(),
            ),
            sdet,
            machine: machine.clone(),
        });
    }

    let outcome = measure_cells(&ctx, "ablation_protocol", &setup.kernel, &cells, setup.runs)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let measured = require_complete("ablation_protocol", &ctx, &cells, outcome);

    println!("=== ablation: MESI vs MSI (128-way) ===");
    println!(
        "{:>10} {:>22} {:>24}",
        "protocol", "baseline tput", "hotness-A vs baseline"
    );
    for (i, protocol) in protocols.iter().enumerate() {
        let baseline = &measured[2 * i];
        let hot = &measured[2 * i + 1];
        println!(
            "{:>10} {:>22.1} {:>23.2}%",
            format!("{protocol:?}"),
            baseline.mean,
            hot.pct_vs(baseline)
        );
    }

    ctx.finish();
}
