//! Ablation: MESI vs MSI coherence (paper §1 lists MESI, MSI, MOSI and
//! MOESI as the protocol family; the HP machines run MESI-style
//! protocols).
//!
//! The Exclusive state lets a sole reader upgrade to Modified silently;
//! MSI charges a directory round trip for every S→M transition. The
//! workload's pooled read-then-write paths (file positions, LRU ticks)
//! make the difference visible, while *false-sharing* behaviour — the
//! paper's subject — is protocol-independent: the sort-by-hotness
//! catastrophe on struct A is reproduced under both.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_protocol`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_sim::Protocol;
use slopt_workload::{
    baseline_layouts, compute_paper_layouts, layouts_with, measure, LayoutKind, Machine,
    SdetConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let machine = Machine::superdome(128);
    let layouts = compute_paper_layouts(&setup.kernel, &setup.sdet, &setup.analysis, setup.tool);
    let a = setup.kernel.records.a;

    println!("=== ablation: MESI vs MSI (128-way) ===");
    println!(
        "{:>10} {:>22} {:>24}",
        "protocol", "baseline tput", "hotness-A vs baseline"
    );
    for protocol in [Protocol::Mesi, Protocol::Msi] {
        let sdet = SdetConfig { protocol, ..setup.sdet.clone() };
        let base_table = baseline_layouts(&setup.kernel, sdet.line_size);
        let baseline = measure(&setup.kernel, &base_table, &machine, &sdet, setup.runs);
        let table = layouts_with(
            &setup.kernel,
            sdet.line_size,
            a,
            layouts.layout(a, LayoutKind::SortByHotness).clone(),
        );
        let hot = measure(&setup.kernel, &table, &machine, &sdet, setup.runs);
        println!(
            "{:>10} {:>22.1} {:>23.2}%",
            format!("{protocol:?}"),
            baseline.mean,
            hot.pct_vs(&baseline)
        );
    }
}
