//! Figure 8: performance of the automatic (tool) layout and the naïve
//! sort-by-hotness layout versus the hand-tuned baseline, on the 128-way
//! Superdome, one transformed struct at a time.
//!
//! Paper's shape: the tool layout is within a few percent of baseline
//! (around −5% for struct A, small gains for B–E); sort-by-hotness is
//! comparable on B–E but degrades struct A by **more than 2×** because it
//! packs the false-sharing counters together.
//!
//! Usage: `cargo run --release -p slopt-bench --bin fig8 [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).
//!
//! With `--fault-plan` (see `slopt-fault`), grid items run under the
//! supervised pool: transient faults are retried away (output stays
//! bit-identical to a clean run), permanent faults degrade to a partial
//! table plus exit code 4.

use slopt_bench::{figure, figure_setup, require_figure, CommonArgs};
use slopt_workload::{compute_paper_layouts_jobs_obs, LayoutKind, Machine};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "fig8",
        "automatic layout vs sort-by-hotness on the 128-way Superdome",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();

    eprintln!("[fig8] measurement run (16-way) + layout derivation...");
    let layouts = compute_paper_layouts_jobs_obs(
        &setup.kernel,
        &setup.sdet,
        &setup.analysis,
        setup.tool,
        setup.jobs,
        &ctx.obs,
    );

    eprintln!(
        "[fig8] measuring on superdome128 ({} runs per layout, {} jobs)...",
        setup.runs, setup.jobs
    );
    let machine = Machine::superdome(128);
    let outcome = figure(
        &ctx,
        "fig8",
        &setup.kernel,
        &machine,
        &setup.sdet,
        setup.runs,
        &layouts,
        &[LayoutKind::Tool, LayoutKind::SortByHotness],
        "Figure 8: automatic layout vs sort-by-hotness (128-way Superdome)",
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let fig = require_figure("fig8", &ctx, outcome);
    println!("{fig}");

    // The paper's headline observation, checked mechanically.
    let row_a = &fig.rows[0];
    let tool_a = row_a.results[0].1;
    let hot_a = row_a.results[1].1;
    println!(
        "struct A: tool {tool_a:+.2}% vs sort-by-hotness {hot_a:+.2}% \
         (paper: ~-5% vs worse than -50%)"
    );

    ctx.finish();
}
