//! `debug_search` — diagnostic probe for the stochastic layout search.
//!
//! For each kernel struct, reports the greedy FLG objective, what the
//! `refine` hill-climber finds, and what annealing portfolios find from
//! three different starts (greedy, sort-by-hotness, per-field
//! singletons), plus the FLG's weight scale vs the typical accepted move
//! delta. Use it to tell "greedy is optimal here" apart from "the
//! search is mis-tuned" when the `fig_search` deltas come out flat.
//!
//! Usage: `cargo run --release -p slopt-bench --bin debug_search [-- --chains C --steps K --seed S]`

use slopt_core::{
    cluster, clustering_score_with, refine, Clustering, DeltaObjective, Flg, RefineParams,
};
use slopt_search::{run_chain, SearchParams};
use slopt_workload::analyze::affinity_for;
use slopt_workload::{analyze, loss_for, SdetConfig};

fn uint_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.windows(2)
        .find(|w| w[0] == name)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

fn main() {
    let raw: Vec<String> = std::env::args().collect();
    let chains = uint_flag(&raw, "--chains", 8) as usize;
    let steps = uint_flag(&raw, "--steps", 2_000) as usize;
    let seed = uint_flag(&raw, "--seed", 42);
    let line_override = raw
        .windows(2)
        .find(|w| w[0] == "--line")
        .and_then(|w| w[1].parse::<u64>().ok());

    let kernel = slopt_workload::build_kernel();
    let sdet = SdetConfig::default();
    let analysis = analyze(&kernel, &sdet, &Default::default());
    let tool = slopt_core::ToolParams::default();

    for (name, rec) in kernel.records.all() {
        let affinity = affinity_for(&kernel, &analysis, rec);
        let loss = loss_for(&kernel, &analysis, rec);
        let flg = Flg::build(&affinity, Some(&loss), tool.flg);
        let record = kernel.record_type(rec);
        let line = line_override.unwrap_or(sdet.line_size);
        let params = SearchParams {
            steps,
            line_size: line,
            ..SearchParams::default()
        };

        let greedy = cluster(&flg, record, line);
        let greedy_score = clustering_score_with(&flg, &greedy);
        let (refined, refined_score) = refine(&flg, record, &greedy, line, RefineParams::default());
        let _ = refined;

        let singles = Clustering::new(
            (0..record.field_count())
                .map(|i| vec![slopt_ir::types::FieldIdx(i as u32)])
                .collect(),
        );

        let best_from = |label: &str, start: &Clustering| {
            let mut best = f64::NEG_INFINITY;
            let mut best_clusters: Vec<Vec<slopt_ir::types::FieldIdx>> = Vec::new();
            let mut rng = slopt_ir::interp::SplitMix64::new(seed);
            for c in 0..chains {
                let r = run_chain(&flg, record, start, &params, c, rng.next_u64());
                if r.score > best {
                    best = r.score;
                    best_clusters = r.clusters.clone();
                }
            }
            // Capacity audit: packed bytes and line count of the winner.
            let max_lines = best_clusters
                .iter()
                .map(|c| {
                    let mut cursor = 0u64;
                    for &f in c {
                        let def = record.field(f);
                        let a = def.align();
                        cursor = (cursor + a - 1) & !(a - 1);
                        cursor += def.size();
                    }
                    cursor.div_ceil(line).max(1)
                })
                .max()
                .unwrap_or(1);
            let max_fields = best_clusters.iter().map(Vec::len).max().unwrap_or(0);
            println!(
                "  {label:<12} best {best:>14.6}  ({:+.6} vs greedy, max {max_lines} lines / {max_fields} fields per cluster)",
                best - greedy_score
            );
            best
        };
        println!(
            "struct {name}: {} fields, greedy {greedy_score:.6}, refine {refined_score:.6} ({:+.6})",
            record.field_count(),
            refined_score - greedy_score
        );
        best_from("anneal@greedy", &greedy);
        best_from("anneal@single", &singles);

        // Weight scale vs move-delta scale: how hot the default t0 is.
        let d = DeltaObjective::new(&flg, record, &greedy, line);
        let n = record.field_count();
        let mut deltas = Vec::new();
        for f in 0..n {
            for dst in 0..d.cluster_count() {
                if let Some(est) = d.score_move(slopt_core::Move::MoveField {
                    field: slopt_ir::types::FieldIdx(f as u32),
                    dst,
                }) {
                    deltas.push(est.abs());
                }
            }
        }
        deltas.sort_by(f64::total_cmp);
        let med = deltas.get(deltas.len() / 2).copied().unwrap_or(0.0);
        println!(
            "  weight-scale: {} feasible single moves, median |delta| {med:.6}",
            deltas.len()
        );
    }
}
