//! Ablation: greedy clustering vs. greedy + local-search refinement
//! (the §7 "better clustering algorithm" future work, implemented in
//! `slopt_core::refine`).
//!
//! Reports the clustering objective (total intra-cluster weight) and the
//! measured throughput of both variants' automatic layouts per struct on
//! the 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_refine [-- --help]` —
//! accepts the shared execution-context flags ([`slopt_bench::args`]).

use slopt_bench::{figure_setup, measure_cells, require_complete, Cell, CommonArgs};
use slopt_core::{clustering_score, RefineParams, ToolParams};
use slopt_workload::{analyze, baseline_layouts, layouts_with, suggest_for, Machine};

fn main() {
    let args = CommonArgs::from_env_or_exit(
        "ablation_refine",
        "greedy vs refined clustering (128-way)",
        "",
        &[],
    );
    let setup = figure_setup(&args);
    let ctx = args.ctx_or_exit();
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let machine = Machine::superdome(128);

    // The grid: one baseline cell, then (greedy, refined) cells per
    // struct; clustering scores are recorded while building the grid.
    let mut cells = vec![Cell {
        label: "baseline".to_string(),
        table: baseline_layouts(kernel, setup.sdet.line_size),
        sdet: setup.sdet.clone(),
        machine: machine.clone(),
    }];
    let mut scores = Vec::new();
    for (letter, rec) in kernel.records.all() {
        let greedy = suggest_for(kernel, &analysis, rec, setup.tool);
        let refined_params = ToolParams {
            refine: Some(RefineParams::default()),
            ..setup.tool
        };
        let refined = suggest_for(kernel, &analysis, rec, refined_params);
        scores.push((
            clustering_score(&greedy.flg, &greedy.clustering),
            clustering_score(&refined.flg, &refined.clustering),
        ));
        for (variant, suggestion) in [("greedy", &greedy), ("refined", &refined)] {
            cells.push(Cell {
                label: format!("{letter}/{variant}"),
                table: layouts_with(kernel, setup.sdet.line_size, rec, suggestion.layout.clone()),
                sdet: setup.sdet.clone(),
                machine: machine.clone(),
            });
        }
    }

    let outcome = measure_cells(&ctx, "ablation_refine", kernel, &cells, setup.runs)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    let measured = require_complete("ablation_refine", &ctx, &cells, outcome);
    let baseline = &measured[0];

    println!("=== ablation: greedy vs refined clustering (128-way) ===");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "struct", "greedy score", "refined score", "greedy %", "refined %"
    );
    for (i, (letter, _)) in kernel.records.all().iter().enumerate() {
        let (gs, rs) = scores[i];
        let t_g = &measured[1 + 2 * i];
        let t_r = &measured[2 + 2 * i];
        println!(
            "{letter:<8} {gs:>14.0} {rs:>14.0} {:>11.2}% {:>11.2}%",
            t_g.pct_vs(baseline),
            t_r.pct_vs(baseline)
        );
    }

    ctx.finish();
}
