//! Ablation: greedy clustering vs. greedy + local-search refinement
//! (the §7 "better clustering algorithm" future work, implemented in
//! `slopt_core::refine`).
//!
//! Reports the clustering objective (total intra-cluster weight) and the
//! measured throughput of both variants' automatic layouts per struct on
//! the 128-way machine.
//!
//! Usage: `cargo run --release -p slopt-bench --bin ablation_refine`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_core::{clustering_score, RefineParams, ToolParams};
use slopt_workload::{
    analyze, baseline_layouts, layouts_with, measure, suggest_for, Machine,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let kernel = &setup.kernel;
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let machine = Machine::superdome(128);
    let base_table = baseline_layouts(kernel, setup.sdet.line_size);
    let baseline = measure(kernel, &base_table, &machine, &setup.sdet, setup.runs);

    println!("=== ablation: greedy vs refined clustering (128-way) ===");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "struct", "greedy score", "refined score", "greedy %", "refined %"
    );
    for (letter, rec) in kernel.records.all() {
        let greedy = suggest_for(kernel, &analysis, rec, setup.tool);
        let refined_params = ToolParams { refine: Some(RefineParams::default()), ..setup.tool };
        let refined = suggest_for(kernel, &analysis, rec, refined_params);
        let gs = clustering_score(&greedy.flg, &greedy.clustering);
        let rs = clustering_score(&refined.flg, &refined.clustering);

        let t_g = measure(
            kernel,
            &layouts_with(kernel, setup.sdet.line_size, rec, greedy.layout.clone()),
            &machine,
            &setup.sdet,
            setup.runs,
        );
        let t_r = measure(
            kernel,
            &layouts_with(kernel, setup.sdet.line_size, rec, refined.layout.clone()),
            &machine,
            &setup.sdet,
            setup.runs,
        );
        println!(
            "{letter:<8} {gs:>14.0} {rs:>14.0} {:>11.2}% {:>11.2}%",
            t_g.pct_vs(&baseline),
            t_r.pct_vs(&baseline)
        );
    }
}
