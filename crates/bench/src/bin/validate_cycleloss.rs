//! Validating the CycleLoss *estimate* against measured reality.
//!
//! The paper's central approximation (§3.2) is that Code Concurrency ×
//! Field-Mapping-File join predicts which field pairs would false-share
//! if co-located. The paper could not check this (no hardware measures
//! per-field-pair false sharing); the simulator can. Protocol:
//!
//! 1. Estimate CycleLoss for struct A from a sampled baseline run, as
//!    the tool does.
//! 2. Run the *sort-by-hotness* layout (which actually co-locates the
//!    risky fields) with byte-level sharing-miss logging, and attribute
//!    each false-sharing miss to its (reader field, written field) pair.
//! 3. Compare: does the estimate rank the pairs that actually collide?
//!
//! Usage: `cargo run --release -p slopt-bench --bin validate_cycleloss`

use slopt_bench::{default_figure_setup, parse_scale};
use slopt_workload::{
    analyze, compute_paper_layouts, ground_truth_loss, layouts_with, loss_for, run_once_logged,
    LayoutKind, Machine,
};
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setup = default_figure_setup(parse_scale(&args));
    let kernel = &setup.kernel;
    let a = kernel.records.a;
    let ty = kernel.record_type(a);

    // 1. The estimate (computed on the baseline layout, before the
    //    dangerous layout exists — exactly the tool's situation).
    let analysis = analyze(kernel, &setup.sdet, &setup.analysis);
    let estimated = loss_for(kernel, &analysis, a);

    // 2. Ground truth under the co-locating layout.
    let paper = compute_paper_layouts(kernel, &setup.sdet, &setup.analysis, setup.tool);
    let table = layouts_with(
        kernel,
        setup.sdet.line_size,
        a,
        paper.layout(a, LayoutKind::SortByHotness).clone(),
    );
    let machine = Machine::superdome(64);
    let (_, events, instances) = run_once_logged(
        kernel,
        &table,
        &machine,
        &setup.sdet,
        7,
        &mut slopt_sim::NullObserver,
        true,
    );
    let truth = ground_truth_loss(
        &table,
        &instances,
        &events,
        a,
        machine.cpus(),
        setup.sdet.pool_instances,
    );

    println!("=== CycleLoss estimate vs measured false sharing (struct A) ===");
    println!(
        "measured collisions: {} across {} field pairs ({} unresolved)",
        truth.total(),
        truth.pairs().len(),
        truth.unresolved
    );

    println!("\ntop measured pairs vs their estimated CycleLoss:");
    println!(
        "{:<16} {:<16} {:>12} {:>14}",
        "field 1", "field 2", "measured", "estimated"
    );
    for (f1, f2, n) in truth.pairs().iter().take(10) {
        println!(
            "{:<16} {:<16} {:>12} {:>14.1}",
            ty.field(*f1).name(),
            ty.field(*f2).name(),
            n,
            estimated.get(*f1, *f2)
        );
    }

    // 3. Score: recall of the measured top pairs in the estimate's
    //    non-zero set, and top-10 overlap.
    let measured_pairs: Vec<_> = truth.pairs();
    let est_nonzero: HashSet<(u32, u32)> = estimated
        .pairs()
        .into_iter()
        .map(|(x, y, _)| (x.0, y.0))
        .collect();
    let covered = measured_pairs
        .iter()
        .filter(|(x, y, _)| est_nonzero.contains(&(x.0.min(y.0), x.0.max(y.0))))
        .count();
    let recall = if measured_pairs.is_empty() {
        1.0
    } else {
        covered as f64 / measured_pairs.len() as f64
    };
    // The estimate ranks *potential* collisions; ground truth can only
    // contain pairs this particular layout co-located. So restrict the
    // ranking comparison to co-located pairs: of the estimate's top
    // co-located pairs, how many actually collided?
    let layout = table.layout(a);
    let est_top_colocated: Vec<(u32, u32)> = estimated
        .pairs()
        .into_iter()
        .filter(|(x, y, _)| layout.share_line(*x, *y))
        .take(10)
        .map(|(x, y, _)| (x.0, y.0))
        .collect();
    let truth_set: HashSet<(u32, u32)> = measured_pairs
        .iter()
        .map(|(x, y, _)| (x.0.min(y.0), x.0.max(y.0)))
        .collect();
    let precision = if est_top_colocated.is_empty() {
        1.0
    } else {
        est_top_colocated
            .iter()
            .filter(|p| truth_set.contains(p))
            .count() as f64
            / est_top_colocated.len() as f64
    };
    println!(
        "\nestimate covers {:.0}% of measured colliding pairs (recall);",
        recall * 100.0
    );
    println!(
        "of the estimate's top-10 co-located risk pairs, {:.0}% actually collided (precision)",
        precision * 100.0
    );
}
