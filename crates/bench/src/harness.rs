//! Shared scaffolding for the figure binaries.

use slopt_core::ToolParams;
use slopt_workload::{AnalysisConfig, Kernel, SdetConfig};

/// Everything a figure binary needs: the kernel, workload sizing, analysis
/// configuration and tool parameters.
#[derive(Debug)]
pub struct FigureSetup {
    /// The synthetic kernel.
    pub kernel: Kernel,
    /// Workload sizing.
    pub sdet: SdetConfig,
    /// Measurement-run configuration (16-way, per the paper).
    pub analysis: AnalysisConfig,
    /// Layout tool parameters.
    pub tool: ToolParams,
    /// Measured runs per layout (the paper uses 10; the default here is 5
    /// to keep the full figure under a couple of minutes — pass a scale
    /// argument to change it).
    pub runs: usize,
    /// Host threads to fan the measurement grid across (`--jobs N`;
    /// defaults to the host's available parallelism).
    pub jobs: usize,
}

/// The default setup used by `fig8`/`fig9`/`fig10`.
///
/// `scale` stretches the workload (scripts per CPU) and the number of
/// measured runs: `1` is the fast default; `2`+ approaches the paper's
/// 10-run methodology at proportionally longer wall time.
pub fn default_figure_setup(scale: usize) -> FigureSetup {
    let scale = scale.max(1);
    let kernel = slopt_workload::build_kernel();
    let sdet = SdetConfig {
        scripts_per_cpu: 24 * scale,
        ..SdetConfig::default()
    };
    let analysis = AnalysisConfig::default();
    FigureSetup {
        kernel,
        sdet,
        analysis,
        tool: ToolParams::default(),
        runs: (5 + scale).min(10),
        jobs: slopt_core::default_jobs(),
    }
}

/// The setup for a parsed command line: [`default_figure_setup`] at the
/// requested scale, with the measurement grid fanned across
/// `args.jobs` threads.
pub fn figure_setup(args: &crate::args::CommonArgs) -> FigureSetup {
    let mut setup = default_figure_setup(args.scale);
    setup.jobs = args.jobs;
    setup
}

/// Parses the optional `--scale N` argument of the figure binaries.
pub fn parse_scale(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_setup_scales() {
        let s1 = default_figure_setup(1);
        let s2 = default_figure_setup(2);
        assert!(s2.sdet.scripts_per_cpu > s1.sdet.scripts_per_cpu);
        assert!(s2.runs >= s1.runs);
        assert_eq!(default_figure_setup(0).runs, default_figure_setup(1).runs);
    }

    #[test]
    fn scale_flag_parses() {
        let args: Vec<String> = ["--scale", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_scale(&args), 3);
        assert_eq!(parse_scale(&[]), 1);
        let bad: Vec<String> = ["--scale", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_scale(&bad), 1);
    }
}
