//! # slopt-bench — harnesses regenerating the paper's figures
//!
//! Each binary reruns one experiment of the paper's evaluation section and
//! prints the corresponding table (see `EXPERIMENTS.md` at the repository
//! root for paper-vs-measured records):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig8` | Fig. 8 — automatic layout vs sort-by-hotness, 128-way Superdome |
//! | `fig9` | Fig. 9 — the same layouts on the 4-way bus machine |
//! | `fig10` | Fig. 10 — best layout per struct (automatic vs constrained) |
//! | `cc_validation` | §4.2–4.3 — sampled Code Concurrency vs exact counts, 4-way vs 16-way stability |
//! | `ablation_k2` | CycleLoss constant sweep |
//! | `ablation_min_heuristic` | Minimum Heuristic vs naive group weights |
//! | `ablation_blocksize` | 64 B vs 128 B coherence blocks |
//! | `ablation_sampling` | sampling period / interval sensitivity |
//!
//! This library exposes the shared experiment scaffolding those binaries
//! use; `cargo bench` additionally runs Criterion micro-benchmarks of the
//! tool itself and a *real-hardware* false-sharing benchmark using
//! `#[repr(C)]` layouts on host threads.

pub mod args;
pub mod checkpoint;
pub mod harness;
pub mod runner;

pub use args::{help_text, ArgError, CommonArgs, EXIT_CODE_TABLE, FLAG_REFERENCE};
pub use checkpoint::{fingerprint, guard_cc_snapshot, Checkpoint, CheckpointSpec};
pub use harness::{default_figure_setup, figure_setup, parse_scale, FigureSetup};
pub use runner::{
    figure, measure_cells, require_complete, require_figure, resolve, Cell, Degraded, ExecCtx,
    FaultConfig, FigureOutcome, GridOutcome, SITE_CKPT, SITE_WORKER,
};
