//! The one command-line vocabulary of the experiment binaries.
//!
//! Every figure/ablation binary (and `slopt-tool figures`/`search`)
//! accepts the same execution-context flags; [`CommonArgs`] is their
//! single parser, help text and validation, so flag semantics — and the
//! `--help` output documenting them — cannot drift between binaries.
//!
//! Parsing is *strict*: a malformed value for any known flag is a usage
//! error ([`exit::USAGE`], code 2) with a message naming the offending
//! argument position, never a silent fallback to a default. Unknown
//! dash-prefixed tokens are usage errors too — a typo like
//! `--trace-ouf` must not silently run without its trace — unless the
//! binary *registers* them as extras (e.g. `fig_search --seed`) via
//! [`CommonArgs::parse_with`].

use slopt_core::SupervisePolicy;
use slopt_fault::{exit, FaultPlan};

use crate::checkpoint::CheckpointSpec;
use crate::runner::{ExecCtx, FaultConfig};
use std::path::PathBuf;
use std::time::Duration;

/// The flag reference shared by every experiment binary's `--help`.
/// `tests/help_matrix.rs` diffs each binary's output against this text.
pub const FLAG_REFERENCE: &str = "OPTIONS:
    --scale N            Workload scale factor (default 1).
    --jobs N             Host threads to fan the measurement grid across
                         (default: all cores; the output is bit-identical
                         for every N; 0 is clamped to 1).
    --trace-out <path>   Write a machine-readable run trace (slopt-trace/1
                         JSONL, Chrome trace events) to <path>.
    --stats              Print the aggregate counter/span summary table at
                         exit.
    --checkpoint-dir DIR Persist every completed grid item to DIR as it
                         finishes.
    --resume             Resume from the checkpoint in --checkpoint-dir,
                         recomputing only the missing items (bit-identical
                         result).
    --fault-plan SPEC    Inject seed-deterministic faults into the worker
                         pool (e.g. `seed=7,transient=0.1,panic=0.05`;
                         kinds: panic, transient, permanent, slow,
                         write-error, read-error, corrupt).
    --max-retries N      Retry budget per grid item for transient faults
                         (default 3).
    --deadline-ms N      Cooperative per-item deadline in milliseconds; an
                         item over budget is holed and never checkpointed
                         as completed.
    --help, -h           This text.";

/// The process exit-code vocabulary shared by every experiment binary's
/// `--help` (and `slopt-tool help`).
pub const EXIT_CODE_TABLE: &str = "EXIT CODES:
    0  success
    1  internal failure (I/O on outputs, trace sink, ...)
    2  usage error (bad flag or flag value)
    3  bad input (unreadable or unparseable user file)
    4  degraded run (permanent faults holed part of the measurement
       grid; partial results were printed)";

/// A strict parse failure: which argument position (1-based) broke, and
/// why. Rendered as `arg N: message` so scripts can locate the culprit
/// the way compilers point at line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError {
    /// 1-based position of the offending argument.
    pub pos: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "arg {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ArgError {}

/// The command-line arguments shared by every experiment binary,
/// validated at parse time.
#[derive(Clone, Debug, PartialEq)]
pub struct CommonArgs {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: usize,
    /// Host threads to fan work across (`--jobs N`, default: available
    /// parallelism; 0 clamps to 1).
    pub jobs: usize,
    /// Machine-readable run trace destination (`--trace-out <path>`,
    /// `slopt-trace/1` JSONL).
    pub trace_out: Option<String>,
    /// Print the human counter/span summary table at exit (`--stats`).
    pub stats: bool,
    /// Grid checkpoint directory (`--checkpoint-dir <dir>`).
    pub checkpoint_dir: Option<String>,
    /// Resume from the checkpoint instead of starting fresh (`--resume`).
    pub resume: bool,
    /// Fault injection + supervision, already validated (`--fault-plan` /
    /// `--max-retries` / `--deadline-ms`). `None` when none of the three
    /// flags were given.
    pub fault: Option<FaultConfig>,
    /// `--help` / `-h` was given; the caller should print the help text
    /// and exit 0.
    pub help: bool,
}

impl Default for CommonArgs {
    fn default() -> CommonArgs {
        CommonArgs {
            scale: 1,
            jobs: slopt_core::default_jobs(),
            trace_out: None,
            stats: false,
            checkpoint_dir: None,
            resume: false,
            fault: None,
            help: false,
        }
    }
}

impl CommonArgs {
    /// Strictly parses an argument list (without the program name).
    /// Known flags with malformed or missing values are [`ArgError`]s,
    /// and so is any unknown dash-prefixed token (likely a typo). Flag
    /// order never matters: the last occurrence of a repeated flag wins.
    pub fn parse(args: &[String]) -> Result<CommonArgs, ArgError> {
        CommonArgs::parse_with(args, &[])
    }

    /// [`CommonArgs::parse`] with binary-specific *extra* flags
    /// registered as `(name, takes_value)` pairs. Registered extras are
    /// skipped (their value slot consumed when `takes_value`) so the
    /// binary can parse them from the raw argv itself; every other
    /// dash-prefixed token is still a usage error.
    pub fn parse_with(args: &[String], extras: &[(&str, bool)]) -> Result<CommonArgs, ArgError> {
        let mut out = CommonArgs::default();
        let mut fault_plan: Option<FaultPlan> = None;
        let mut max_retries: Option<u32> = None;
        let mut deadline: Option<Duration> = None;
        // The value slot of a `--flag value` pair, 1-based for messages.
        let value = |i: usize, flag: &str| -> Result<&String, ArgError> {
            args.get(i + 1).ok_or(ArgError {
                pos: i + 1,
                msg: format!("{flag} needs a value"),
            })
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let pos = i + 2;
            match flag {
                "--help" | "-h" => out.help = true,
                "--stats" => out.stats = true,
                "--resume" => out.resume = true,
                "--scale" => {
                    let raw = value(i, flag)?;
                    out.scale = raw.parse().map_err(|_| ArgError {
                        pos,
                        msg: format!(
                            "bad value `{raw}` for --scale (expected an unsigned integer)"
                        ),
                    })?;
                    i += 1;
                }
                "--jobs" => {
                    let raw = value(i, flag)?;
                    let jobs: usize = raw.parse().map_err(|_| ArgError {
                        pos,
                        msg: format!("bad value `{raw}` for --jobs (expected an unsigned integer)"),
                    })?;
                    out.jobs = jobs.max(1);
                    i += 1;
                }
                "--trace-out" => {
                    out.trace_out = Some(value(i, flag)?.clone());
                    i += 1;
                }
                "--checkpoint-dir" => {
                    out.checkpoint_dir = Some(value(i, flag)?.clone());
                    i += 1;
                }
                "--fault-plan" => {
                    let raw = value(i, flag)?;
                    fault_plan = Some(FaultPlan::parse(raw).map_err(|e| ArgError {
                        pos,
                        msg: format!("bad value for --fault-plan: {e}"),
                    })?);
                    i += 1;
                }
                "--max-retries" => {
                    let raw = value(i, flag)?;
                    max_retries = Some(raw.parse().map_err(|_| ArgError {
                        pos,
                        msg: format!(
                            "bad value `{raw}` for --max-retries (expected an unsigned integer)"
                        ),
                    })?);
                    i += 1;
                }
                "--deadline-ms" => {
                    let raw = value(i, flag)?;
                    let ms: u64 = raw.parse().map_err(|_| ArgError {
                        pos,
                        msg: format!(
                            "bad value `{raw}` for --deadline-ms (expected a positive integer)"
                        ),
                    })?;
                    if ms == 0 {
                        return Err(ArgError {
                            pos,
                            msg: "--deadline-ms must be positive".to_string(),
                        });
                    }
                    deadline = Some(Duration::from_millis(ms));
                    i += 1;
                }
                _ => {
                    if let Some(&(_, takes_value)) = extras.iter().find(|&&(n, _)| n == flag) {
                        // A registered binary-specific flag: the binary
                        // parses it from the raw argv itself; we only
                        // step over it (and its value slot).
                        if takes_value {
                            value(i, flag)?;
                            i += 1;
                        }
                    } else if flag.starts_with('-') && flag.len() > 1 {
                        return Err(ArgError {
                            pos: i + 1,
                            msg: format!("unknown flag `{flag}` (see --help)"),
                        });
                    }
                    // A bare non-dash token is a positional value for
                    // the caller (e.g. `slopt-tool stats <trace>`).
                }
            }
            i += 1;
        }
        if fault_plan.is_some() || max_retries.is_some() || deadline.is_some() {
            let mut policy = SupervisePolicy::default();
            if let Some(n) = max_retries {
                policy.max_retries = n;
            }
            policy.deadline = deadline;
            out.fault = Some(FaultConfig {
                plan: fault_plan.unwrap_or_else(FaultPlan::none),
                policy,
            });
        }
        Ok(out)
    }

    /// Parses `std::env::args()`, handling `--help` (print and exit 0)
    /// and parse errors (report and exit [`exit::USAGE`]) — the whole
    /// prologue of an experiment binary. `bin` and `about` head the help
    /// text; `extra` documents any binary-specific flags (empty for
    /// most) and `extras` registers them as `(name, takes_value)` pairs
    /// so strict parsing doesn't reject them as typos.
    pub fn from_env_or_exit(
        bin: &str,
        about: &str,
        extra: &str,
        extras: &[(&str, bool)],
    ) -> CommonArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match CommonArgs::parse_with(&argv, extras) {
            Ok(args) if args.help => {
                println!("{}", help_text(bin, about, extra));
                std::process::exit(0);
            }
            Ok(args) => args,
            Err(e) => {
                eprintln!("{bin}: {e}");
                eprintln!("try `{bin} --help`");
                std::process::exit(i32::from(exit::USAGE));
            }
        }
    }

    /// The checkpoint request, if `--checkpoint-dir` was given.
    /// `--resume` without a checkpoint directory is meaningless and
    /// ignored.
    pub fn checkpoint_spec(&self) -> Option<CheckpointSpec> {
        self.checkpoint_dir.as_ref().map(|dir| CheckpointSpec {
            dir: PathBuf::from(dir),
            resume: self.resume,
        })
    }

    /// Builds the [`ExecCtx`] these flags describe. `Err` carries the
    /// trace-sink failure message when `--trace-out` points somewhere
    /// unwritable.
    pub fn try_ctx(&self) -> Result<ExecCtx, String> {
        let obs =
            slopt_obs::obs_from_flags(self.trace_out.as_deref(), self.stats).map_err(|e| {
                let path = self.trace_out.as_deref().unwrap_or("<none>");
                format!("cannot open trace output {path}: {e}")
            })?;
        Ok(ExecCtx {
            obs,
            checkpoint: self.checkpoint_spec(),
            fault: self.fault.clone(),
            jobs: self.jobs,
            stats: self.stats,
            trace_out: self.trace_out.clone(),
        })
    }

    /// [`CommonArgs::try_ctx`], exiting 1 on a trace-sink failure — the
    /// experiment binaries' second prologue line.
    pub fn ctx_or_exit(&self) -> ExecCtx {
        self.try_ctx().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        })
    }
}

/// Assembles a binary's `--help` text around the shared
/// [`FLAG_REFERENCE`] and [`EXIT_CODE_TABLE`].
pub fn help_text(bin: &str, about: &str, extra: &str) -> String {
    let extra = if extra.is_empty() {
        String::new()
    } else {
        format!("{extra}\n\n")
    };
    format!("{bin} — {about}\n\nUSAGE:\n    {bin} [options]\n\n{extra}{FLAG_REFERENCE}\n\n{EXIT_CODE_TABLE}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jobs_flag_parses_with_default() {
        let args = CommonArgs::parse(&strs(&["--jobs", "3"])).unwrap();
        assert_eq!(args.jobs, 3);
        assert_eq!(
            CommonArgs::parse(&[]).unwrap().jobs,
            slopt_core::default_jobs()
        );
        assert_eq!(CommonArgs::parse(&strs(&["--jobs", "0"])).unwrap().jobs, 1);
        let both = CommonArgs::parse(&strs(&["--scale", "2", "--jobs", "5"])).unwrap();
        assert_eq!((both.scale, both.jobs), (2, 5));
    }

    #[test]
    fn trace_flags_parse() {
        let args = CommonArgs::parse(&strs(&["--trace-out", "/tmp/t.jsonl", "--stats"])).unwrap();
        assert_eq!(args.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(args.stats);
        let none = CommonArgs::parse(&[]).unwrap();
        assert!(none.trace_out.is_none());
        assert!(!none.stats);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let args = CommonArgs::parse(&strs(&["--checkpoint-dir", "/tmp/ck", "--resume"])).unwrap();
        assert_eq!(args.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert!(args.resume);
        let spec = args.checkpoint_spec().expect("dir given");
        assert_eq!(spec.dir, PathBuf::from("/tmp/ck"));
        assert!(spec.resume);
        assert!(CommonArgs::parse(&[]).unwrap().checkpoint_spec().is_none());
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let args = CommonArgs::parse(&strs(&[
            "--fault-plan",
            "seed=1,transient=0.5",
            "--max-retries",
            "7",
            "--deadline-ms",
            "250",
        ]))
        .unwrap();
        let fc = args.fault.expect("flags given");
        assert_eq!(fc.plan.seed(), 1);
        assert_eq!(fc.policy.max_retries, 7);
        assert_eq!(fc.policy.deadline, Some(Duration::from_millis(250)));

        // No flags at all: supervision stays off entirely.
        assert!(CommonArgs::parse(&[]).unwrap().fault.is_none());
        // Supervision flags alone give the no-op plan.
        let only = CommonArgs::parse(&strs(&["--max-retries", "2"])).unwrap();
        assert_eq!(only.fault.expect("flag given").plan, FaultPlan::none());
    }

    #[test]
    fn malformed_values_are_positional_errors() {
        for (bad, pos) in [
            (&["--fault-plan", "transient=2.0"][..], 2),
            (&["--fault-plan", "bogus=1"][..], 2),
            (&["--max-retries", "x"][..], 2),
            (&["--deadline-ms", "0"][..], 2),
            (&["--jobs", "many"][..], 2),
            (&["--scale", "-1"][..], 2),
            (&["--stats", "--jobs", "1.5"][..], 3),
            (&["--trace-out"][..], 1),
        ] {
            let err = CommonArgs::parse(&strs(bad)).expect_err("must be rejected");
            assert_eq!(err.pos, pos, "{bad:?}");
            assert!(
                err.to_string().starts_with(&format!("arg {pos}: ")),
                "{err}"
            );
        }
        // The offending value is named in the message.
        let err = CommonArgs::parse(&strs(&["--fault-plan", "bogus=1"])).unwrap_err();
        assert!(err.msg.contains("bogus"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected_with_their_position() {
        // The typo that motivated strictness: a mistyped flag must not
        // silently run without its capability.
        let err = CommonArgs::parse(&strs(&["--trace-ouf", "/tmp/t.jsonl"])).unwrap_err();
        assert_eq!(err.pos, 1);
        assert!(err.msg.contains("--trace-ouf"), "{err}");
        let err = CommonArgs::parse(&strs(&["--stats", "--bogus"])).unwrap_err();
        assert_eq!(err.pos, 2);
        // Bare non-dash tokens stay skipped: they are the caller's
        // positional values (`slopt-tool stats <trace>`).
        assert!(
            CommonArgs::parse(&strs(&["some/trace.jsonl", "--stats"]))
                .unwrap()
                .stats
        );
    }

    #[test]
    fn registered_extras_are_stepped_over() {
        let extras: &[(&str, bool)] = &[("--seed", true), ("--top", true), ("--stress", false)];
        let args = CommonArgs::parse_with(
            &strs(&["--seed", "42", "--jobs", "2", "--stress", "--top", "3"]),
            extras,
        )
        .unwrap();
        assert_eq!(args.jobs, 2);
        assert_eq!(args.scale, 1);
        // A value-taking extra consumes its value slot, so a dash-valued
        // slot is not re-parsed as a flag... but a *missing* value is
        // still an error at the extra's position.
        let err = CommonArgs::parse_with(&strs(&["--jobs", "2", "--seed"]), extras).unwrap_err();
        assert_eq!(err.pos, 3);
        // Unregistered flags are still rejected even with extras given.
        let err = CommonArgs::parse_with(&strs(&["--chains", "4"]), extras).unwrap_err();
        assert_eq!(err.pos, 1);
    }

    #[test]
    fn help_flag_is_recognized() {
        assert!(CommonArgs::parse(&strs(&["--help"])).unwrap().help);
        assert!(CommonArgs::parse(&strs(&["-h"])).unwrap().help);
        assert!(!CommonArgs::parse(&[]).unwrap().help);
        let text = help_text("fig9", "about", "");
        assert!(text.contains(FLAG_REFERENCE));
        assert!(text.contains(EXIT_CODE_TABLE));
    }

    #[test]
    fn try_ctx_carries_every_capability() {
        let args = CommonArgs::parse(&strs(&[
            "--jobs",
            "3",
            "--checkpoint-dir",
            "/tmp/ck",
            "--fault-plan",
            "seed=2,transient=0.1",
            "--deadline-ms",
            "100",
        ]))
        .unwrap();
        let ctx = args.ctx_or_exit();
        assert_eq!(ctx.jobs, 3);
        assert_eq!(ctx.deadline_ms(), Some(100));
        assert_eq!(
            ctx.checkpoint.expect("dir given").dir,
            PathBuf::from("/tmp/ck")
        );
        assert!(!ctx.obs.enabled());
    }
}
