//! Deprecated forwarders for the pre-[`ExecCtx`] runner entry points.
//!
//! The runner used to grow one function per capability combination
//! (observability × checkpointing × fault supervision); those twins are
//! now thin shims over the single [`measure_cells`] / [`figure`] path,
//! kept for exactly one release so out-of-tree callers get a
//! deprecation warning instead of a build break. They will be removed
//! in the next PR — migrate to [`ExecCtx`].
//!
//! [`measure_cells`]: crate::runner::measure_cells
//! [`figure`]: crate::runner::figure

#![allow(deprecated)]

use slopt_core::FaultReport;
use slopt_workload::{Figure, Kernel, LayoutKind, Machine, PaperLayouts, Throughput, WorkloadSpec};

use crate::checkpoint::CheckpointSpec;
use crate::runner::{figure, measure_cells, Cell, ExecCtx, FaultConfig, FigureOutcome};

fn ctx_from(
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    fault: Option<&FaultConfig>,
    obs: &slopt_obs::Obs,
) -> ExecCtx {
    ExecCtx {
        obs: obs.clone(),
        checkpoint: spec.cloned(),
        fault: fault.cloned(),
        jobs,
        stats: false,
        trace_out: None,
    }
}

/// [`measure_cells`](crate::runner::measure_cells) with instrumentation.
#[deprecated(note = "build an `ExecCtx` and call `measure_cells(&ctx, ...)` instead")]
pub fn measure_cells_obs(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    obs: &slopt_obs::Obs,
) -> Vec<Throughput> {
    let ctx = ctx_from(jobs, None, None, obs);
    let out = measure_cells(&ctx, "grid", kernel, cells, runs)
        .expect("no checkpoint requested, so no I/O can fail");
    out.measured
        .into_iter()
        .map(|m| m.expect("no fault plan, so no holes"))
        .collect()
}

/// [`measure_cells`](crate::runner::measure_cells) with optional
/// checkpoint/resume.
#[deprecated(note = "build an `ExecCtx` and call `measure_cells(&ctx, ...)` instead")]
pub fn measure_cells_ckpt_obs(
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Vec<Throughput>> {
    let ctx = ctx_from(jobs, spec, None, obs);
    let out = measure_cells(&ctx, name, kernel, cells, runs)?;
    Ok(out
        .measured
        .into_iter()
        .map(|m| m.expect("no fault plan, so no holes"))
        .collect())
}

/// [`measure_cells`](crate::runner::measure_cells) under fault
/// supervision.
#[deprecated(note = "build an `ExecCtx` and call `measure_cells(&ctx, ...)` instead")]
#[allow(clippy::too_many_arguments)]
pub fn measure_cells_fault_obs(
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    fault: Option<&FaultConfig>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<(Vec<Option<Throughput>>, FaultReport)> {
    let ctx = ctx_from(jobs, spec, fault, obs);
    let out = measure_cells(&ctx, name, kernel, cells, runs)?;
    Ok((out.measured, out.report))
}

/// [`figure`](crate::runner::figure) with optional checkpoint/resume,
/// returning the assembled figure directly (no fault plan, so the grid
/// is always complete).
#[deprecated(note = "build an `ExecCtx` and call `figure(&ctx, ...)` instead")]
#[allow(clippy::too_many_arguments)]
pub fn figure_ckpt_obs(
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &slopt_workload::SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Figure> {
    let ctx = ctx_from(jobs, spec, None, obs);
    let outcome = figure(
        &ctx, name, kernel, machine, sdet, runs, layouts, kinds, title,
    )?;
    Ok(outcome
        .figure
        .expect("no fault plan, so the grid is complete"))
}

/// [`figure`](crate::runner::figure) under fault supervision.
#[deprecated(note = "build an `ExecCtx` and call `figure(&ctx, ...)` instead")]
#[allow(clippy::too_many_arguments)]
pub fn figure_fault_obs(
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &slopt_workload::SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    fault: Option<&FaultConfig>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<FigureOutcome> {
    let ctx = ctx_from(jobs, spec, fault, obs);
    figure(
        &ctx, name, kernel, machine, sdet, runs, layouts, kinds, title,
    )
}
