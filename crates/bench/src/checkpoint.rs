//! Checkpoint/resume for long grid runs (`slopt-ckpt/1`).
//!
//! A figure or ablation grid at production scale is hours of independent
//! `(cell, seed)` simulations; losing the whole run to a kill at 95 % is
//! unacceptable. A [`Checkpoint`] persists every completed grid item to
//! an append-only log as it finishes, so a re-invocation with
//! `--resume` recomputes only the missing items. Because the runner
//! assembles results by grid index (never completion or arrival order)
//! and the logged values are exact `f64` bit patterns, a resumed run's
//! output is bit-identical to an uninterrupted one — enforced by
//! `tests/checkpoint_resume.rs`.
//!
//! ## On-disk layout
//!
//! A checkpoint directory holds:
//!
//! * `<name>.ckpt` — the item log. Line 1 is the header
//!   `slopt-ckpt/1 name=<name> items=<n> fp=<hex16>`, where `fp`
//!   fingerprints the grid shape (cell labels, run count, machine and
//!   workload sizing). Each later line is `item <index> <f64-bits-hex>`.
//!   A torn final line (the process died mid-append) is tolerated and
//!   dropped with a warning; a header mismatch means the resuming
//!   invocation changed the grid and is an error.
//! * `cc.snap` — a `slopt-ccsnap/1` snapshot of the analysis'
//!   concurrency map (figure grids only; see
//!   [`guard_cc_snapshot`]). Layout derivation is deterministic given
//!   the concurrency map, so snapshot equality proves the resumed run
//!   is continuing the *same* analysis even though the measurement run
//!   is re-executed.

use slopt_sample::{load_concurrency, save_concurrency, ConcurrencyMap, SnapshotError};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema tag of the item log.
pub const CKPT_SCHEMA: &str = "slopt-ckpt/1";

/// File name of the concurrency snapshot inside a checkpoint directory.
pub const CC_SNAPSHOT_FILE: &str = "cc.snap";

/// Where and whether to checkpoint, as requested by
/// `--checkpoint-dir <dir>` / `--resume`.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// The checkpoint directory (created if missing).
    pub dir: PathBuf,
    /// Resume from existing state instead of starting fresh.
    pub resume: bool,
}

/// FNV-1a over the parts, separated by `\n`. Stable across runs and
/// platforms; used to fingerprint a grid's shape in the log header.
pub fn fingerprint<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An open item log: completed values loaded at open, new completions
/// appended (and flushed) as they happen. `record` is called from
/// `par_map` workers, so the appender is behind a mutex.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    items: usize,
    done: Vec<Option<f64>>,
    /// Count of already-completed items loaded at open.
    resumed: usize,
    /// True when a torn final line was dropped during open.
    torn: bool,
    file: Mutex<fs::File>,
}

impl Checkpoint {
    /// Opens (or creates) the item log `<name>.ckpt` under `spec.dir`.
    ///
    /// With `spec.resume` and an existing log whose header matches
    /// `(name, items, fp)`, previously completed items are loaded; a
    /// header mismatch is an error (the grid changed between
    /// invocations). Without `resume`, any existing log is truncated.
    pub fn open(
        spec: &CheckpointSpec,
        name: &str,
        items: usize,
        fp: u64,
    ) -> io::Result<Checkpoint> {
        fs::create_dir_all(&spec.dir)?;
        let path = spec.dir.join(format!("{name}.ckpt"));
        let header = format!("{CKPT_SCHEMA} name={name} items={items} fp={fp:016x}");
        let mut done: Vec<Option<f64>> = vec![None; items];
        let mut torn = false;

        if spec.resume && path.exists() {
            let text = fs::read_to_string(&path)?;
            let mut lines = text.lines().enumerate().peekable();
            let Some((_, got_header)) = lines.next() else {
                return Err(bad_ckpt(&path, "empty checkpoint file"));
            };
            if got_header != header {
                return Err(bad_ckpt(
                    &path,
                    &format!(
                        "header mismatch — the resuming invocation runs a different grid\n  \
                         found:    {got_header}\n  expected: {header}"
                    ),
                ));
            }
            while let Some((lineno, line)) = lines.next() {
                match parse_item(line, items) {
                    Some((idx, value)) => done[idx] = Some(value),
                    None if lines.peek().is_none() => {
                        // A torn final line: the previous run died
                        // mid-append. Drop it; the item recomputes.
                        torn = true;
                    }
                    None => {
                        return Err(bad_ckpt(
                            &path,
                            &format!("corrupt entry at line {}", lineno + 1),
                        ));
                    }
                }
            }
            // Rewrite the log canonically so the dropped torn line does
            // not accumulate and appends start from a clean tail.
            let mut file = fs::File::create(&path)?;
            writeln!(file, "{header}")?;
            for (idx, v) in done.iter().enumerate() {
                if let Some(v) = v {
                    writeln!(file, "item {idx} {:016x}", v.to_bits())?;
                }
            }
            file.flush()?;
            let resumed = done.iter().filter(|v| v.is_some()).count();
            let appender = fs::OpenOptions::new().append(true).open(&path)?;
            return Ok(Checkpoint {
                path,
                items,
                done,
                resumed,
                torn,
                file: Mutex::new(appender),
            });
        }

        let mut file = fs::File::create(&path)?;
        writeln!(file, "{header}")?;
        file.flush()?;
        Ok(Checkpoint {
            path,
            items,
            done,
            resumed: 0,
            torn,
            file: Mutex::new(file),
        })
    }

    /// Total grid items this log covers.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The value of item `idx` if a previous run completed it.
    pub fn get(&self, idx: usize) -> Option<f64> {
        self.done[idx]
    }

    /// Number of items loaded as already completed at open.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Whether a torn final line was dropped at open.
    pub fn dropped_torn_line(&self) -> bool {
        self.torn
    }

    /// Path of the item log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends (and flushes) one completed item. Exact: the `f64` is
    /// logged as its bit pattern, so a resumed run reads back the very
    /// value this run computed.
    pub fn record(&self, idx: usize, value: f64) {
        debug_assert!(idx < self.items);
        let mut file = self.file.lock().unwrap();
        // A failed append must not kill the run — the checkpoint
        // degrades (that item recomputes on resume), the measurement
        // continues.
        let line = format!("item {idx} {:016x}\n", value.to_bits());
        if file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .is_err()
        {
            eprintln!(
                "[ckpt] warning: failed to append item {idx} to {}",
                self.path.display()
            );
        }
    }
}

fn parse_item(line: &str, items: usize) -> Option<(usize, f64)> {
    let rest = line.strip_prefix("item ")?;
    let (idx, bits) = rest.split_once(' ')?;
    let idx: usize = idx.parse().ok()?;
    if idx >= items || bits.len() != 16 {
        return None;
    }
    let bits = u64::from_str_radix(bits, 16).ok()?;
    Some((idx, f64::from_bits(bits)))
}

fn bad_ckpt(path: &Path, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("checkpoint {}: {what}", path.display()),
    )
}

/// Persists or verifies the analysis' concurrency map under a
/// checkpoint directory: a fresh run writes `cc.snap`; a resumed run
/// loads it and requires equality with `map`. Inequality means the
/// resuming invocation's analysis drifted (different seed, scale,
/// sampler or interval config) and its remaining cells would not belong
/// to the same experiment — an error, not a warning.
pub fn guard_cc_snapshot(spec: &CheckpointSpec, map: &ConcurrencyMap) -> io::Result<()> {
    fs::create_dir_all(&spec.dir)?;
    let path = spec.dir.join(CC_SNAPSHOT_FILE);
    if spec.resume && path.exists() {
        let saved = load_concurrency(&path).map_err(|e| match e {
            SnapshotError::Io(e) => e,
            other => io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot {}: {other}", path.display()),
            ),
        })?;
        if &saved != map {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot {}: concurrency map differs from the checkpointed analysis — \
                     the resuming invocation is configured differently",
                    path.display()
                ),
            ));
        }
        return Ok(());
    }
    save_concurrency(&path, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spec(tag: &str, resume: bool) -> CheckpointSpec {
        let dir = std::env::temp_dir().join(format!("slopt_ckpt_{}_{tag}", std::process::id()));
        CheckpointSpec { dir, resume }
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_stable() {
        let a = fingerprint(["x", "y"]);
        assert_eq!(a, fingerprint(["x", "y"]));
        assert_ne!(a, fingerprint(["y", "x"]));
        assert_ne!(fingerprint(["ab"]), fingerprint(["a", "b"]));
    }

    #[test]
    fn records_persist_and_resume_exactly() {
        let spec = temp_spec("persist", false);
        let _ = fs::remove_dir_all(&spec.dir);
        let values = [1.5f64, -0.0, f64::MIN_POSITIVE, 1234.567890123];
        {
            let ck = Checkpoint::open(&spec, "grid", 10, 7).unwrap();
            assert_eq!(ck.resumed(), 0);
            for (i, &v) in values.iter().enumerate() {
                ck.record(i * 2, v);
            }
        }
        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        let ck = Checkpoint::open(&resume, "grid", 10, 7).unwrap();
        assert_eq!(ck.resumed(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ck.get(i * 2).map(f64::to_bits), Some(v.to_bits()));
            assert_eq!(ck.get(i * 2 + 1), None);
        }
        assert!(!ck.dropped_torn_line());
        fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_with_the_rest_kept() {
        let spec = temp_spec("torn", false);
        let _ = fs::remove_dir_all(&spec.dir);
        {
            let ck = Checkpoint::open(&spec, "grid", 4, 1).unwrap();
            ck.record(0, 2.0);
            ck.record(3, 4.0);
        }
        // Simulate a kill mid-append.
        let path = spec.dir.join("grid.ckpt");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("item 2 0123456789");
        fs::write(&path, &text).unwrap();

        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        let ck = Checkpoint::open(&resume, "grid", 4, 1).unwrap();
        assert!(ck.dropped_torn_line());
        assert_eq!(ck.resumed(), 2);
        assert_eq!(ck.get(0), Some(2.0));
        assert_eq!(ck.get(2), None, "torn item must recompute");
        assert_eq!(ck.get(3), Some(4.0));
        fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let spec = temp_spec("mismatch", false);
        let _ = fs::remove_dir_all(&spec.dir);
        drop(Checkpoint::open(&spec, "grid", 4, 1).unwrap());
        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        assert!(
            Checkpoint::open(&resume, "grid", 5, 1).is_err(),
            "item count drift"
        );
        assert!(
            Checkpoint::open(&resume, "grid", 4, 2).is_err(),
            "fingerprint drift"
        );
        assert!(Checkpoint::open(&resume, "grid", 4, 1).is_ok());
        fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn corrupt_middle_entry_is_an_error() {
        let spec = temp_spec("corrupt", false);
        let _ = fs::remove_dir_all(&spec.dir);
        {
            let ck = Checkpoint::open(&spec, "grid", 4, 1).unwrap();
            ck.record(1, 1.0);
        }
        let path = spec.dir.join("grid.ckpt");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            format!("{}garbage here\nitem 2 {:016x}\n", text, 2.0f64.to_bits()),
        )
        .unwrap();
        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        assert!(Checkpoint::open(&resume, "grid", 4, 1).is_err());
        fs::remove_dir_all(&spec.dir).unwrap();
    }

    #[test]
    fn fresh_open_truncates_previous_state() {
        let spec = temp_spec("truncate", false);
        let _ = fs::remove_dir_all(&spec.dir);
        {
            let ck = Checkpoint::open(&spec, "grid", 4, 1).unwrap();
            ck.record(0, 1.0);
        }
        let ck = Checkpoint::open(&spec, "grid", 4, 1).unwrap();
        assert_eq!(ck.resumed(), 0);
        assert_eq!(ck.get(0), None);
        fs::remove_dir_all(&spec.dir).unwrap();
    }
}
