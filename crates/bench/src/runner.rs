//! The shared parallel experiment runner.
//!
//! Every figure/ablation binary is, at heart, the same program: build a
//! grid of *measurement cells* — each a layout table measured under some
//! workload/machine configuration — measure all of them, and print a
//! table. This module owns that shape once:
//!
//! * [`RunnerArgs`] — the common `--scale N` / `--jobs N` command line;
//! * [`Cell`] — one grid cell (label + layout table + config + machine);
//! * [`measure_cells`] — measures the whole grid, fanned out over host
//!   threads at `(cell, run-seed)` granularity via
//!   [`slopt_core::par_map`].
//!
//! Determinism contract: cells carry their entire configuration, run
//! seeds come from [`slopt_workload::measurement_seeds`], and results are
//! collected by `(cell, seed)` index — so the output is bit-identical for
//! every `--jobs` value, including `--jobs 1` (which spawns no threads at
//! all).

use slopt_sim::LayoutTable;
use slopt_workload::{measurement_seeds, run_once, Machine, SdetConfig, Throughput, WorkloadSpec};

use crate::harness::parse_scale;

/// The command-line arguments shared by every figure/ablation binary.
#[derive(Clone, Debug)]
pub struct RunnerArgs {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: usize,
    /// Host threads to fan work across (`--jobs N`, default: available
    /// parallelism).
    pub jobs: usize,
    /// Machine-readable run trace destination (`--trace-out <path>`,
    /// `slopt-trace/1` JSONL).
    pub trace_out: Option<String>,
    /// Print the human counter/span summary table at exit (`--stats`).
    pub stats: bool,
}

impl RunnerArgs {
    /// Parses `std::env::args()`.
    pub fn from_env() -> RunnerArgs {
        let args: Vec<String> = std::env::args().collect();
        RunnerArgs::from_args(&args)
    }

    /// Parses `--scale N`, `--jobs N`, `--trace-out <path>` and `--stats`
    /// from an argument list.
    pub fn from_args(args: &[String]) -> RunnerArgs {
        RunnerArgs {
            scale: parse_scale(args),
            jobs: parse_jobs(args),
            trace_out: parse_trace_out(args),
            stats: args.iter().any(|a| a == "--stats"),
        }
    }

    /// Builds the observability handle the flags ask for: a trace-file
    /// sink for `--trace-out`, aggregate-only for plain `--stats`, the
    /// zero-cost disabled handle otherwise.
    ///
    /// Exits with an error message if the trace file cannot be created.
    pub fn obs(&self) -> slopt_obs::Obs {
        match slopt_obs::obs_from_flags(self.trace_out.as_deref(), self.stats) {
            Ok(obs) => obs,
            Err(e) => {
                let path = self.trace_out.as_deref().unwrap_or("<none>");
                eprintln!("error: cannot open trace output {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Flushes the trace sink and, under `--stats`, prints the aggregate
    /// summary table. Call once at the end of `main`.
    pub fn finish(&self, obs: &slopt_obs::Obs) {
        obs.finish();
        if self.stats && obs.enabled() {
            println!("=== run stats ===");
            print!("{}", obs.summary());
        }
        if let Some(path) = &self.trace_out {
            eprintln!("[runner] trace written to {path}");
        }
    }
}

/// Parses the optional `--trace-out <path>` argument.
pub fn parse_trace_out(args: &[String]) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == "--trace-out")
        .map(|w| w[1].clone())
}

/// Parses the optional `--jobs N` argument; defaults to the host's
/// available parallelism, and clamps 0 to 1.
pub fn parse_jobs(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or_else(slopt_core::default_jobs)
        .max(1)
}

/// One measurement cell of an experiment grid.
///
/// A cell owns its whole configuration so grids may vary anything between
/// cells — layouts (the figures), block size (`ablation_blocksize`),
/// protocol (`ablation_protocol`), machine — while staying independent
/// work items.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display label (used in progress output only).
    pub label: String,
    /// The layout table to measure.
    pub table: LayoutTable,
    /// Workload sizing for this cell.
    pub sdet: SdetConfig,
    /// The machine to measure on.
    pub machine: Machine,
}

/// Measures every cell — a warm-up plus `runs` measured runs each — and
/// returns one [`Throughput`] per cell, in cell order.
///
/// The grid is flattened to `(cell, run seed)` work items, the finest
/// independent unit of simulation, so even a handful of cells scales to
/// many threads. Results are bit-identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
) -> Vec<Throughput> {
    measure_cells_obs(kernel, cells, runs, jobs, &slopt_obs::Obs::disabled())
}

/// [`measure_cells`] with instrumentation: the whole grid runs under a
/// `measure_grid` span, every `(cell, seed)` simulation under its own
/// `measure_cell` span (workers get distinct trace thread ids), and the
/// grid shape plus per-worker utilization — each worker's `measure_cell`
/// wall time divided by the grid's — are flushed as `runner.*` counters
/// and gauges.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells_obs(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    obs: &slopt_obs::Obs,
) -> Vec<Throughput> {
    assert!(runs > 0, "need at least one measured run");
    let seeds = measurement_seeds(runs);
    eprintln!(
        "[runner] measuring {} cells x {} runs (+warm-up) on {} thread(s)...",
        cells.len(),
        runs,
        jobs.max(1).min(cells.len() * seeds.len())
    );
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&seed| (c, seed)))
        .collect();
    let t0 = std::time::Instant::now();
    let values = {
        let _span = obs.span("measure_grid");
        slopt_core::par_map(jobs, &grid, |_, &(c, seed)| {
            let _cell = obs.span("measure_cell");
            let cell = &cells[c];
            run_once(
                kernel,
                &cell.table,
                &cell.machine,
                &cell.sdet,
                seed,
                &mut slopt_sim::NullObserver,
            )
            .result
            .throughput()
        })
    };
    if obs.enabled() {
        obs.counter("runner.cells", cells.len() as u64);
        obs.counter("runner.runs_per_cell", seeds.len() as u64);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        if wall_ns > 0 {
            let summary = obs.summary();
            for row in summary.span_rows("measure_cell") {
                obs.gauge(
                    &format!("runner.worker{}.utilization", row.tid),
                    row.total_ns as f64 / wall_ns as f64,
                );
            }
        }
    }
    values
        .chunks_exact(seeds.len())
        .map(|chunk| Throughput::from_runs(chunk[1..].to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_sim::CacheConfig;
    use slopt_workload::{baseline_layouts, build_kernel, measure};

    fn small_cfg() -> SdetConfig {
        SdetConfig {
            scripts_per_cpu: 4,
            invocations_per_script: 6,
            pool_instances: 32,
            cache: CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
            ..SdetConfig::default()
        }
    }

    #[test]
    fn jobs_flag_parses_with_default() {
        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&args), 3);
        assert_eq!(parse_jobs(&[]), slopt_core::default_jobs());
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&zero), 1);
        let both: Vec<String> = ["--scale", "2", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&both);
        assert_eq!((ra.scale, ra.jobs), (2, 5));
    }

    #[test]
    fn trace_flags_parse() {
        let args: Vec<String> = ["--trace-out", "/tmp/t.jsonl", "--stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&args);
        assert_eq!(ra.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(ra.stats);
        let none = RunnerArgs::from_args(&[]);
        assert!(none.trace_out.is_none());
        assert!(!none.stats);
    }

    #[test]
    fn instrumented_cells_match_plain_cells() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells = vec![Cell {
            label: "c".into(),
            table: table.clone(),
            sdet: cfg.clone(),
            machine: machine.clone(),
        }];
        let plain = measure_cells(&kernel, &cells, 2, 2);
        let obs = slopt_obs::Obs::aggregating();
        let traced = measure_cells_obs(&kernel, &cells, 2, 2, &obs);
        assert_eq!(plain[0].runs, traced[0].runs);
        let s = obs.summary();
        // One warm-up + two measured runs for the single cell.
        assert_eq!(s.span_count("measure_cell"), 3);
        assert_eq!(s.span_count("measure_grid"), 1);
        assert_eq!(s.metrics.counter("runner.cells"), 1);
    }

    #[test]
    fn cells_match_direct_measure_for_any_job_count() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..3)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let direct = measure(&kernel, &table, &machine, &cfg, 3);
        for jobs in [1, 4] {
            let out = measure_cells(&kernel, &cells, 3, jobs);
            assert_eq!(out.len(), 3);
            for t in &out {
                assert_eq!(t.runs, direct.runs, "jobs={jobs}");
                assert_eq!(t.mean, direct.mean, "jobs={jobs}");
            }
        }
    }
}
