//! The shared parallel experiment runner.
//!
//! Every figure/ablation binary is, at heart, the same program: build a
//! grid of *measurement cells* — each a layout table measured under some
//! workload/machine configuration — measure all of them, and print a
//! table. This module owns that shape once:
//!
//! * [`RunnerArgs`] — the common `--scale N` / `--jobs N` command line;
//! * [`Cell`] — one grid cell (label + layout table + config + machine);
//! * [`measure_cells`] — measures the whole grid, fanned out over host
//!   threads at `(cell, run-seed)` granularity via
//!   [`slopt_core::par_map`].
//!
//! Determinism contract: cells carry their entire configuration, run
//! seeds come from [`slopt_workload::measurement_seeds`], and results are
//! collected by `(cell, seed)` index — so the output is bit-identical for
//! every `--jobs` value, including `--jobs 1` (which spawns no threads at
//! all).

use slopt_sim::LayoutTable;
use slopt_workload::{
    figure_from_throughputs, figure_tables, measurement_seeds, run_once, Figure, Kernel,
    LayoutKind, Machine, PaperLayouts, SdetConfig, Throughput, WorkloadSpec,
};

use crate::checkpoint::{fingerprint, guard_cc_snapshot, Checkpoint, CheckpointSpec};
use crate::harness::parse_scale;
use std::path::PathBuf;

/// The command-line arguments shared by every figure/ablation binary.
#[derive(Clone, Debug)]
pub struct RunnerArgs {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: usize,
    /// Host threads to fan work across (`--jobs N`, default: available
    /// parallelism).
    pub jobs: usize,
    /// Machine-readable run trace destination (`--trace-out <path>`,
    /// `slopt-trace/1` JSONL).
    pub trace_out: Option<String>,
    /// Print the human counter/span summary table at exit (`--stats`).
    pub stats: bool,
    /// Grid checkpoint directory (`--checkpoint-dir <dir>`).
    pub checkpoint_dir: Option<String>,
    /// Resume from the checkpoint instead of starting fresh (`--resume`).
    pub resume: bool,
}

impl RunnerArgs {
    /// Parses `std::env::args()`.
    pub fn from_env() -> RunnerArgs {
        let args: Vec<String> = std::env::args().collect();
        RunnerArgs::from_args(&args)
    }

    /// Parses `--scale N`, `--jobs N`, `--trace-out <path>`, `--stats`,
    /// `--checkpoint-dir <dir>` and `--resume` from an argument list.
    pub fn from_args(args: &[String]) -> RunnerArgs {
        RunnerArgs {
            scale: parse_scale(args),
            jobs: parse_jobs(args),
            trace_out: parse_trace_out(args),
            stats: args.iter().any(|a| a == "--stats"),
            checkpoint_dir: parse_checkpoint_dir(args),
            resume: args.iter().any(|a| a == "--resume"),
        }
    }

    /// The checkpoint request, if `--checkpoint-dir` was given. `--resume`
    /// without a checkpoint directory is meaningless and ignored.
    pub fn checkpoint_spec(&self) -> Option<CheckpointSpec> {
        self.checkpoint_dir.as_ref().map(|dir| CheckpointSpec {
            dir: PathBuf::from(dir),
            resume: self.resume,
        })
    }

    /// Builds the observability handle the flags ask for: a trace-file
    /// sink for `--trace-out`, aggregate-only for plain `--stats`, the
    /// zero-cost disabled handle otherwise.
    ///
    /// Exits with an error message if the trace file cannot be created.
    pub fn obs(&self) -> slopt_obs::Obs {
        match slopt_obs::obs_from_flags(self.trace_out.as_deref(), self.stats) {
            Ok(obs) => obs,
            Err(e) => {
                let path = self.trace_out.as_deref().unwrap_or("<none>");
                eprintln!("error: cannot open trace output {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Flushes the trace sink and, under `--stats`, prints the aggregate
    /// summary table. Call once at the end of `main`.
    pub fn finish(&self, obs: &slopt_obs::Obs) {
        obs.finish();
        if self.stats && obs.enabled() {
            println!("=== run stats ===");
            print!("{}", obs.summary());
        }
        if let Some(path) = &self.trace_out {
            eprintln!("[runner] trace written to {path}");
        }
    }
}

/// Parses the optional `--trace-out <path>` argument.
pub fn parse_trace_out(args: &[String]) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == "--trace-out")
        .map(|w| w[1].clone())
}

/// Parses the optional `--checkpoint-dir <dir>` argument.
pub fn parse_checkpoint_dir(args: &[String]) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == "--checkpoint-dir")
        .map(|w| w[1].clone())
}

/// Parses the optional `--jobs N` argument; defaults to the host's
/// available parallelism, and clamps 0 to 1.
pub fn parse_jobs(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or_else(slopt_core::default_jobs)
        .max(1)
}

/// One measurement cell of an experiment grid.
///
/// A cell owns its whole configuration so grids may vary anything between
/// cells — layouts (the figures), block size (`ablation_blocksize`),
/// protocol (`ablation_protocol`), machine — while staying independent
/// work items.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display label (used in progress output only).
    pub label: String,
    /// The layout table to measure.
    pub table: LayoutTable,
    /// Workload sizing for this cell.
    pub sdet: SdetConfig,
    /// The machine to measure on.
    pub machine: Machine,
}

/// Measures every cell — a warm-up plus `runs` measured runs each — and
/// returns one [`Throughput`] per cell, in cell order.
///
/// The grid is flattened to `(cell, run seed)` work items, the finest
/// independent unit of simulation, so even a handful of cells scales to
/// many threads. Results are bit-identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
) -> Vec<Throughput> {
    measure_cells_obs(kernel, cells, runs, jobs, &slopt_obs::Obs::disabled())
}

/// [`measure_cells`] with instrumentation: the whole grid runs under a
/// `measure_grid` span, every `(cell, seed)` simulation under its own
/// `measure_cell` span (workers get distinct trace thread ids), and the
/// grid shape plus per-worker utilization — each worker's `measure_cell`
/// wall time divided by the grid's — are flushed as `runner.*` counters
/// and gauges.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells_obs(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    obs: &slopt_obs::Obs,
) -> Vec<Throughput> {
    measure_cells_ckpt_obs("grid", kernel, cells, runs, jobs, None, obs)
        .expect("no checkpoint requested, so no I/O can fail")
}

/// [`measure_cells_obs`] with optional checkpoint/resume.
///
/// With a [`CheckpointSpec`], every completed `(cell, seed)` grid item is
/// appended to `<name>.ckpt` under the checkpoint directory as it
/// finishes; a later invocation with `resume` loads those items and
/// recomputes only the rest. Persisted values are exact `f64` bit
/// patterns and results are assembled by grid index either way, so a
/// resumed run's output is bit-identical to an uninterrupted one. The
/// log header fingerprints the grid (name, run count, per-cell label +
/// machine + workload config), so resuming a *different* grid is an
/// error rather than a silent mix of experiments.
///
/// Emits `ckpt.items_total` / `ckpt.items_resumed` counters and a
/// `ckpt.torn_line` warning when the previous run died mid-append.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells_ckpt_obs(
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Vec<Throughput>> {
    assert!(runs > 0, "need at least one measured run");
    let seeds = measurement_seeds(runs);
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&seed| (c, seed)))
        .collect();

    let ckpt = match spec {
        Some(spec) => {
            let mut parts: Vec<String> = vec![name.to_string(), format!("runs={runs}")];
            for cell in cells {
                parts.push(format!("{} {:?} {:?}", cell.label, cell.machine, cell.sdet));
            }
            let fp = fingerprint(parts.iter().map(String::as_str));
            let ck = Checkpoint::open(spec, name, grid.len(), fp)?;
            if obs.enabled() {
                obs.counter("ckpt.items_total", grid.len() as u64);
                obs.counter("ckpt.items_resumed", ck.resumed() as u64);
                if ck.dropped_torn_line() {
                    obs.warning("ckpt.torn_line");
                }
            }
            if spec.resume {
                eprintln!(
                    "[runner] checkpoint {}: {} of {} grid items already done",
                    ck.path().display(),
                    ck.resumed(),
                    grid.len()
                );
            }
            Some(ck)
        }
        None => None,
    };

    let mut values: Vec<Option<f64>> = (0..grid.len())
        .map(|i| ckpt.as_ref().and_then(|ck| ck.get(i)))
        .collect();
    let pending: Vec<(usize, usize, u64)> = grid
        .iter()
        .enumerate()
        .filter(|&(i, _)| values[i].is_none())
        .map(|(i, &(c, seed))| (i, c, seed))
        .collect();
    eprintln!(
        "[runner] measuring {} cells x {} runs (+warm-up), {} item(s) on {} thread(s)...",
        cells.len(),
        runs,
        pending.len(),
        jobs.max(1).min(pending.len().max(1))
    );
    let t0 = std::time::Instant::now();
    let computed = {
        let _span = obs.span("measure_grid");
        slopt_core::par_map(jobs, &pending, |_, &(i, c, seed)| {
            let _cell = obs.span("measure_cell");
            let cell = &cells[c];
            let value = run_once(
                kernel,
                &cell.table,
                &cell.machine,
                &cell.sdet,
                seed,
                &mut slopt_sim::NullObserver,
            )
            .result
            .throughput();
            if let Some(ck) = &ckpt {
                ck.record(i, value);
            }
            (i, value)
        })
    };
    for (i, value) in computed {
        values[i] = Some(value);
    }
    if obs.enabled() {
        obs.counter("runner.cells", cells.len() as u64);
        obs.counter("runner.runs_per_cell", seeds.len() as u64);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        if wall_ns > 0 {
            let summary = obs.summary();
            for row in summary.span_rows("measure_cell") {
                obs.gauge(
                    &format!("runner.worker{}.utilization", row.tid),
                    row.total_ns as f64 / wall_ns as f64,
                );
            }
        }
    }
    let values: Vec<f64> = values
        .into_iter()
        .map(|v| v.expect("every grid item was loaded or computed"))
        .collect();
    Ok(values
        .chunks_exact(seeds.len())
        .map(|chunk| Throughput::from_runs(chunk[1..].to_vec()))
        .collect())
}

/// Measures one figure's grid — the all-baseline table plus one
/// transformed struct at a time — with optional checkpoint/resume, and
/// assembles the [`Figure`].
///
/// This is [`slopt_workload::figure_rows_jobs_obs`] routed through
/// [`measure_cells_ckpt_obs`]: the grid comes from the same
/// [`figure_tables`] call (the single source of cell order), so the
/// result is bit-identical to the direct path for every `jobs` value,
/// checkpointed or not. With a spec, the analysis' concurrency map is
/// additionally snapshotted to `cc.snap` ([`guard_cc_snapshot`]): a
/// resumed run whose analysis drifted from the checkpointed one fails
/// instead of mixing two experiments.
#[allow(clippy::too_many_arguments)]
pub fn figure_ckpt_obs(
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Figure> {
    if let Some(spec) = spec {
        guard_cc_snapshot(spec, &layouts.analysis.concurrency)?;
    }
    let (tables, meta) = figure_tables(kernel, sdet, layouts, kinds);
    let cells: Vec<Cell> = tables
        .into_iter()
        .enumerate()
        .map(|(i, table)| Cell {
            label: if i == 0 {
                "baseline".to_string()
            } else {
                let (letter, _, kind) = meta[i - 1];
                format!("{letter}/{kind}")
            },
            table,
            sdet: sdet.clone(),
            machine: machine.clone(),
        })
        .collect();
    let mut per_table =
        measure_cells_ckpt_obs(name, kernel, &cells, runs, jobs, spec, obs)?.into_iter();
    let baseline = per_table.next().expect("table 0 is always present");
    Ok(figure_from_throughputs(
        title,
        &meta,
        baseline,
        per_table.collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_sim::CacheConfig;
    use slopt_workload::{baseline_layouts, build_kernel, measure};

    fn small_cfg() -> SdetConfig {
        SdetConfig {
            scripts_per_cpu: 4,
            invocations_per_script: 6,
            pool_instances: 32,
            cache: CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
            ..SdetConfig::default()
        }
    }

    #[test]
    fn jobs_flag_parses_with_default() {
        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&args), 3);
        assert_eq!(parse_jobs(&[]), slopt_core::default_jobs());
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&zero), 1);
        let both: Vec<String> = ["--scale", "2", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&both);
        assert_eq!((ra.scale, ra.jobs), (2, 5));
    }

    #[test]
    fn trace_flags_parse() {
        let args: Vec<String> = ["--trace-out", "/tmp/t.jsonl", "--stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&args);
        assert_eq!(ra.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(ra.stats);
        let none = RunnerArgs::from_args(&[]);
        assert!(none.trace_out.is_none());
        assert!(!none.stats);
    }

    #[test]
    fn instrumented_cells_match_plain_cells() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells = vec![Cell {
            label: "c".into(),
            table: table.clone(),
            sdet: cfg.clone(),
            machine: machine.clone(),
        }];
        let plain = measure_cells(&kernel, &cells, 2, 2);
        let obs = slopt_obs::Obs::aggregating();
        let traced = measure_cells_obs(&kernel, &cells, 2, 2, &obs);
        assert_eq!(plain[0].runs, traced[0].runs);
        let s = obs.summary();
        // One warm-up + two measured runs for the single cell.
        assert_eq!(s.span_count("measure_cell"), 3);
        assert_eq!(s.span_count("measure_grid"), 1);
        assert_eq!(s.metrics.counter("runner.cells"), 1);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let args: Vec<String> = ["--checkpoint-dir", "/tmp/ck", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&args);
        assert_eq!(ra.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert!(ra.resume);
        let spec = ra.checkpoint_spec().expect("dir given");
        assert_eq!(spec.dir, PathBuf::from("/tmp/ck"));
        assert!(spec.resume);
        let none = RunnerArgs::from_args(&[]);
        assert!(none.checkpoint_spec().is_none());
    }

    #[test]
    fn checkpointed_cells_match_plain_cells_after_partial_run() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..2)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let plain = measure_cells(&kernel, &cells, 3, 2);

        let dir = std::env::temp_dir().join(format!("slopt_runner_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CheckpointSpec {
            dir: dir.clone(),
            resume: false,
        };
        let obs = slopt_obs::Obs::disabled();
        // Full checkpointed run, then truncate the log to simulate a kill
        // after the first two grid items.
        let full = measure_cells_ckpt_obs("t", &kernel, &cells, 3, 1, Some(&spec), &obs).unwrap();
        let path = dir.join("t.ckpt");
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();

        let resume = CheckpointSpec {
            dir: dir.clone(),
            resume: true,
        };
        let obs = slopt_obs::Obs::aggregating();
        let resumed =
            measure_cells_ckpt_obs("t", &kernel, &cells, 3, 2, Some(&resume), &obs).unwrap();
        let s = obs.summary();
        assert_eq!(s.metrics.counter("ckpt.items_resumed"), 2);
        assert_eq!(s.metrics.counter("ckpt.items_total"), 8);
        for ((a, b), c) in plain.iter().zip(&full).zip(&resumed) {
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.runs, c.runs);
            assert_eq!(a.mean, c.mean, "resumed result must be bit-identical");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cells_match_direct_measure_for_any_job_count() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..3)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let direct = measure(&kernel, &table, &machine, &cfg, 3);
        for jobs in [1, 4] {
            let out = measure_cells(&kernel, &cells, 3, jobs);
            assert_eq!(out.len(), 3);
            for t in &out {
                assert_eq!(t.runs, direct.runs, "jobs={jobs}");
                assert_eq!(t.mean, direct.mean, "jobs={jobs}");
            }
        }
    }
}
