//! The shared parallel experiment runner.
//!
//! Every figure/ablation binary is, at heart, the same program: build a
//! grid of *measurement cells* — each a layout table measured under some
//! workload/machine configuration — measure all of them, and print a
//! table. This module owns that shape once:
//!
//! * [`RunnerArgs`] — the common `--scale N` / `--jobs N` command line;
//! * [`Cell`] — one grid cell (label + layout table + config + machine);
//! * [`measure_cells`] — measures the whole grid, fanned out over host
//!   threads at `(cell, run-seed)` granularity via
//!   [`slopt_core::par_map`].
//!
//! Determinism contract: cells carry their entire configuration, run
//! seeds come from [`slopt_workload::measurement_seeds`], and results are
//! collected by `(cell, seed)` index — so the output is bit-identical for
//! every `--jobs` value, including `--jobs 1` (which spawns no threads at
//! all).

use slopt_core::{par_map_supervised, FaultReport, SupervisePolicy, WorkerError};
use slopt_fault::{exit, FaultKind, FaultPlan};
use slopt_sim::LayoutTable;
use slopt_workload::{
    figure_from_throughputs, figure_tables, measurement_seeds, run_once, Figure, Kernel,
    LayoutKind, Machine, PaperLayouts, SdetConfig, Throughput, WorkloadSpec,
};

use crate::checkpoint::{fingerprint, guard_cc_snapshot, Checkpoint, CheckpointSpec};
use crate::harness::parse_scale;
use std::path::PathBuf;
use std::time::Duration;

/// Fault-decision site for worker execution (`--fault-plan` panics,
/// transients, permanent failures, stalls).
pub const SITE_WORKER: &str = "worker";
/// Fault-decision site for checkpoint appends (`write-error`).
pub const SITE_CKPT: &str = "ckpt";

/// The command-line arguments shared by every figure/ablation binary.
#[derive(Clone, Debug)]
pub struct RunnerArgs {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: usize,
    /// Host threads to fan work across (`--jobs N`, default: available
    /// parallelism).
    pub jobs: usize,
    /// Machine-readable run trace destination (`--trace-out <path>`,
    /// `slopt-trace/1` JSONL).
    pub trace_out: Option<String>,
    /// Print the human counter/span summary table at exit (`--stats`).
    pub stats: bool,
    /// Grid checkpoint directory (`--checkpoint-dir <dir>`).
    pub checkpoint_dir: Option<String>,
    /// Resume from the checkpoint instead of starting fresh (`--resume`).
    pub resume: bool,
    /// Raw fault-plan spec (`--fault-plan <spec>`), validated by
    /// [`RunnerArgs::fault_config`].
    pub fault_plan: Option<String>,
    /// Raw retry budget (`--max-retries N`).
    pub max_retries: Option<String>,
    /// Raw per-item deadline (`--deadline-ms N`).
    pub deadline_ms: Option<String>,
}

/// Fault injection plus the supervision policy that contains it, as
/// requested by `--fault-plan` / `--max-retries` / `--deadline-ms`.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// The seeded injection schedule (the no-op plan when only the
    /// supervision flags were given).
    pub plan: FaultPlan,
    /// Retry/deadline policy of the supervised pool.
    pub policy: SupervisePolicy,
}

impl RunnerArgs {
    /// Parses `std::env::args()`.
    pub fn from_env() -> RunnerArgs {
        let args: Vec<String> = std::env::args().collect();
        RunnerArgs::from_args(&args)
    }

    /// Parses `--scale N`, `--jobs N`, `--trace-out <path>`, `--stats`,
    /// `--checkpoint-dir <dir>` and `--resume` from an argument list.
    pub fn from_args(args: &[String]) -> RunnerArgs {
        RunnerArgs {
            scale: parse_scale(args),
            jobs: parse_jobs(args),
            trace_out: parse_trace_out(args),
            stats: args.iter().any(|a| a == "--stats"),
            checkpoint_dir: parse_checkpoint_dir(args),
            resume: args.iter().any(|a| a == "--resume"),
            fault_plan: parse_flag_value(args, "--fault-plan"),
            max_retries: parse_flag_value(args, "--max-retries"),
            deadline_ms: parse_flag_value(args, "--deadline-ms"),
        }
    }

    /// Validates the fault/supervision flags into a [`FaultConfig`].
    /// `Ok(None)` when none of the three flags were given; `Err` carries
    /// a usage message naming the offending value.
    pub fn fault_config(&self) -> Result<Option<FaultConfig>, String> {
        if self.fault_plan.is_none() && self.max_retries.is_none() && self.deadline_ms.is_none() {
            return Ok(None);
        }
        let plan = match &self.fault_plan {
            Some(spec) => FaultPlan::parse(spec).map_err(|e| e.to_string())?,
            None => FaultPlan::none(),
        };
        let mut policy = SupervisePolicy::default();
        if let Some(raw) = &self.max_retries {
            policy.max_retries = raw
                .parse()
                .map_err(|_| format!("bad --max-retries `{raw}`"))?;
        }
        if let Some(raw) = &self.deadline_ms {
            let ms: u64 = raw
                .parse()
                .map_err(|_| format!("bad --deadline-ms `{raw}`"))?;
            if ms == 0 {
                return Err("--deadline-ms must be positive".to_string());
            }
            policy.deadline = Some(Duration::from_millis(ms));
        }
        Ok(Some(FaultConfig { plan, policy }))
    }

    /// [`RunnerArgs::fault_config`], exiting with [`exit::USAGE`] on a
    /// malformed flag — the shared prologue of the figure/ablation
    /// binaries.
    pub fn fault_config_or_exit(&self) -> Option<FaultConfig> {
        self.fault_config().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(i32::from(exit::USAGE));
        })
    }

    /// The checkpoint request, if `--checkpoint-dir` was given. `--resume`
    /// without a checkpoint directory is meaningless and ignored.
    pub fn checkpoint_spec(&self) -> Option<CheckpointSpec> {
        self.checkpoint_dir.as_ref().map(|dir| CheckpointSpec {
            dir: PathBuf::from(dir),
            resume: self.resume,
        })
    }

    /// Builds the observability handle the flags ask for: a trace-file
    /// sink for `--trace-out`, aggregate-only for plain `--stats`, the
    /// zero-cost disabled handle otherwise.
    ///
    /// Exits with an error message if the trace file cannot be created.
    pub fn obs(&self) -> slopt_obs::Obs {
        match slopt_obs::obs_from_flags(self.trace_out.as_deref(), self.stats) {
            Ok(obs) => obs,
            Err(e) => {
                let path = self.trace_out.as_deref().unwrap_or("<none>");
                eprintln!("error: cannot open trace output {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Flushes the trace sink and, under `--stats`, prints the aggregate
    /// summary table. Call once at the end of `main`.
    pub fn finish(&self, obs: &slopt_obs::Obs) {
        obs.finish();
        if self.stats && obs.enabled() {
            println!("=== run stats ===");
            print!("{}", obs.summary());
        }
        if let Some(path) = &self.trace_out {
            eprintln!("[runner] trace written to {path}");
        }
    }
}

/// Parses an optional `<name> <value>` argument pair.
pub fn parse_flag_value(args: &[String], name: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

/// Parses the optional `--trace-out <path>` argument.
pub fn parse_trace_out(args: &[String]) -> Option<String> {
    parse_flag_value(args, "--trace-out")
}

/// Parses the optional `--checkpoint-dir <dir>` argument.
pub fn parse_checkpoint_dir(args: &[String]) -> Option<String> {
    parse_flag_value(args, "--checkpoint-dir")
}

/// Parses the optional `--jobs N` argument; defaults to the host's
/// available parallelism, and clamps 0 to 1.
pub fn parse_jobs(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or_else(slopt_core::default_jobs)
        .max(1)
}

/// One measurement cell of an experiment grid.
///
/// A cell owns its whole configuration so grids may vary anything between
/// cells — layouts (the figures), block size (`ablation_blocksize`),
/// protocol (`ablation_protocol`), machine — while staying independent
/// work items.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display label (used in progress output only).
    pub label: String,
    /// The layout table to measure.
    pub table: LayoutTable,
    /// Workload sizing for this cell.
    pub sdet: SdetConfig,
    /// The machine to measure on.
    pub machine: Machine,
}

/// Measures every cell — a warm-up plus `runs` measured runs each — and
/// returns one [`Throughput`] per cell, in cell order.
///
/// The grid is flattened to `(cell, run seed)` work items, the finest
/// independent unit of simulation, so even a handful of cells scales to
/// many threads. Results are bit-identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
) -> Vec<Throughput> {
    measure_cells_obs(kernel, cells, runs, jobs, &slopt_obs::Obs::disabled())
}

/// [`measure_cells`] with instrumentation: the whole grid runs under a
/// `measure_grid` span, every `(cell, seed)` simulation under its own
/// `measure_cell` span (workers get distinct trace thread ids), and the
/// grid shape plus per-worker utilization — each worker's `measure_cell`
/// wall time divided by the grid's — are flushed as `runner.*` counters
/// and gauges.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells_obs(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    obs: &slopt_obs::Obs,
) -> Vec<Throughput> {
    measure_cells_ckpt_obs("grid", kernel, cells, runs, jobs, None, obs)
        .expect("no checkpoint requested, so no I/O can fail")
}

/// [`measure_cells_obs`] with optional checkpoint/resume.
///
/// With a [`CheckpointSpec`], every completed `(cell, seed)` grid item is
/// appended to `<name>.ckpt` under the checkpoint directory as it
/// finishes; a later invocation with `resume` loads those items and
/// recomputes only the rest. Persisted values are exact `f64` bit
/// patterns and results are assembled by grid index either way, so a
/// resumed run's output is bit-identical to an uninterrupted one. The
/// log header fingerprints the grid (name, run count, per-cell label +
/// machine + workload config), so resuming a *different* grid is an
/// error rather than a silent mix of experiments.
///
/// Emits `ckpt.items_total` / `ckpt.items_resumed` counters and a
/// `ckpt.torn_line` warning when the previous run died mid-append.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells_ckpt_obs(
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Vec<Throughput>> {
    let (measured, _report) =
        measure_cells_fault_obs(name, kernel, cells, runs, jobs, spec, None, obs)?;
    Ok(measured
        .into_iter()
        .map(|m| m.expect("no fault plan, so no holes"))
        .collect())
}

/// [`measure_cells_ckpt_obs`] under fault supervision.
///
/// With a [`FaultConfig`], grid items run through the supervised pool
/// ([`par_map_supervised`]): injected (or real) panics are contained,
/// transient failures retry with bounded deterministic backoff, and
/// items that still fail become `None` *holes* in the per-cell result.
/// Fault decisions are keyed by **grid index**, so they are identical
/// under any `jobs` value and compose with `--resume` (a resumed run
/// re-rolls the same decisions for its remaining items).
///
/// Degradation contract:
///
/// * **transient faults are invisible** — once retries recover every
///   item, the returned throughputs are bit-identical to a clean run's;
/// * **permanent faults degrade explicitly** — a cell missing any
///   measured run becomes `None`, the [`FaultReport`] lists each
///   poisoned grid item (indices remapped to grid positions), and the
///   caller must exit with [`exit::DEGRADED`].
///
/// Fault activity is surfaced as `warn.fault.injected.*`,
/// `warn.fault.poisoned`, `warn.fault.deadline` and `retry.*` counters
/// on `obs`.
///
/// # Panics
///
/// Panics if `runs == 0`.
#[allow(clippy::too_many_arguments)]
pub fn measure_cells_fault_obs(
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    fault: Option<&FaultConfig>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<(Vec<Option<Throughput>>, FaultReport)> {
    assert!(runs > 0, "need at least one measured run");
    let seeds = measurement_seeds(runs);
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&seed| (c, seed)))
        .collect();

    let ckpt = match spec {
        Some(spec) => {
            let mut parts: Vec<String> = vec![name.to_string(), format!("runs={runs}")];
            for cell in cells {
                parts.push(format!("{} {:?} {:?}", cell.label, cell.machine, cell.sdet));
            }
            let fp = fingerprint(parts.iter().map(String::as_str));
            let ck = Checkpoint::open(spec, name, grid.len(), fp)?;
            if obs.enabled() {
                obs.counter("ckpt.items_total", grid.len() as u64);
                obs.counter("ckpt.items_resumed", ck.resumed() as u64);
                if ck.dropped_torn_line() {
                    obs.warning("ckpt.torn_line");
                }
            }
            if spec.resume {
                eprintln!(
                    "[runner] checkpoint {}: {} of {} grid items already done",
                    ck.path().display(),
                    ck.resumed(),
                    grid.len()
                );
            }
            Some(ck)
        }
        None => None,
    };

    let mut values: Vec<Option<f64>> = (0..grid.len())
        .map(|i| ckpt.as_ref().and_then(|ck| ck.get(i)))
        .collect();
    let pending: Vec<(usize, usize, u64)> = grid
        .iter()
        .enumerate()
        .filter(|&(i, _)| values[i].is_none())
        .map(|(i, &(c, seed))| (i, c, seed))
        .collect();
    eprintln!(
        "[runner] measuring {} cells x {} runs (+warm-up), {} item(s) on {} thread(s)...",
        cells.len(),
        runs,
        pending.len(),
        jobs.max(1).min(pending.len().max(1))
    );
    let t0 = std::time::Instant::now();
    // One grid item: the simulation plus (optionally faulty) checkpoint
    // append. Shared by the trusting and the supervised scheduler.
    let measure_item = |i: usize, c: usize, seed: u64, attempt: u32| -> f64 {
        let _cell = obs.span("measure_cell");
        let cell = &cells[c];
        let out = run_once(
            kernel,
            &cell.table,
            &cell.machine,
            &cell.sdet,
            seed,
            &mut slopt_sim::NullObserver,
        );
        // Per-cell simulated makespan distribution. Simulated cycles are
        // a pure function of (cell, seed), so unlike the wall-clock span
        // histograms this one is bit-identical at any --jobs value and
        // trace_diff compares it structurally.
        obs.histogram("figure.cell_makespan", out.result.makespan);
        let value = out.result.throughput();
        if let Some(ck) = &ckpt {
            let dropped = fault.is_some_and(|f| {
                f.plan
                    .fires(FaultKind::WriteError, SITE_CKPT, i as u64, attempt)
            });
            if dropped {
                // The degrade path checkpointing already has: a failed
                // append loses only resumability of this item.
                obs.warning("fault.injected.write_error");
            } else {
                ck.record(i, value);
            }
        }
        value
    };
    let report = match fault {
        None => {
            let computed = {
                let _span = obs.span("measure_grid");
                slopt_core::par_map(jobs, &pending, |_, &(i, c, seed)| {
                    (i, measure_item(i, c, seed, 0))
                })
            };
            for (i, value) in computed {
                values[i] = Some(value);
            }
            FaultReport {
                items: pending.len(),
                completed: pending.len(),
                ..FaultReport::default()
            }
        }
        Some(fault) => {
            let plan = &fault.plan;
            let (computed, mut report) = {
                let _span = obs.span("measure_grid");
                par_map_supervised(
                    jobs,
                    &pending,
                    &fault.policy,
                    |_, &(i, c, seed), attempt| {
                        // Injection points, all keyed by grid index `i` so
                        // decisions are jobs- and resume-invariant.
                        let gi = i as u64;
                        if plan.fires(FaultKind::Permanent, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.permanent");
                            return Err(WorkerError::permanent(format!(
                                "injected permanent fault (grid item {i})"
                            )));
                        }
                        if plan.fires(FaultKind::Panic, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.panic");
                            panic!("injected worker panic (grid item {i}, attempt {attempt})");
                        }
                        if plan.fires(FaultKind::Transient, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.transient");
                            return Err(WorkerError::transient(format!(
                                "injected transient fault (grid item {i}, attempt {attempt})"
                            )));
                        }
                        if plan.fires(FaultKind::Slow, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.slow");
                            std::thread::sleep(Duration::from_millis(plan.slow_ms()));
                        }
                        Ok((i, measure_item(i, c, seed, attempt)))
                    },
                )
            };
            // The supervisor numbers items by position in `pending`;
            // remap poisoned entries to grid indices for reporting.
            for failure in &mut report.poisoned {
                failure.index = pending[failure.index].0;
            }
            for (i, value) in computed.into_iter().flatten() {
                values[i] = Some(value);
            }
            if obs.enabled() {
                obs.counter("retry.attempts", report.retries);
                obs.counter("retry.recovered", report.recovered as u64);
                if !report.poisoned.is_empty() {
                    obs.warning_n("fault.poisoned", report.poisoned.len() as u64);
                }
                if report.deadline_hits > 0 {
                    obs.warning_n("fault.deadline", report.deadline_hits);
                }
            }
            report
        }
    };
    if obs.enabled() {
        obs.counter("runner.cells", cells.len() as u64);
        obs.counter("runner.runs_per_cell", seeds.len() as u64);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        if wall_ns > 0 {
            let summary = obs.summary();
            for row in summary.span_rows("measure_cell") {
                obs.gauge(
                    &format!("runner.worker{}.utilization", row.tid),
                    row.total_ns as f64 / wall_ns as f64,
                );
            }
        }
    }
    // Assemble per-cell results. A cell is a hole iff any of its
    // *measured* runs (chunk[1..]; chunk[0] is the warm-up) is missing.
    let measured = values
        .chunks_exact(seeds.len())
        .map(|chunk| {
            chunk[1..]
                .iter()
                .copied()
                .collect::<Option<Vec<f64>>>()
                .map(Throughput::from_runs)
        })
        .collect();
    Ok((measured, report))
}

/// Measures one figure's grid — the all-baseline table plus one
/// transformed struct at a time — with optional checkpoint/resume, and
/// assembles the [`Figure`].
///
/// This is [`slopt_workload::figure_rows_jobs_obs`] routed through
/// [`measure_cells_ckpt_obs`]: the grid comes from the same
/// [`figure_tables`] call (the single source of cell order), so the
/// result is bit-identical to the direct path for every `jobs` value,
/// checkpointed or not. With a spec, the analysis' concurrency map is
/// additionally snapshotted to `cc.snap` ([`guard_cc_snapshot`]): a
/// resumed run whose analysis drifted from the checkpointed one fails
/// instead of mixing two experiments.
#[allow(clippy::too_many_arguments)]
pub fn figure_ckpt_obs(
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<Figure> {
    if let Some(spec) = spec {
        guard_cc_snapshot(spec, &layouts.analysis.concurrency)?;
    }
    let (tables, meta) = figure_tables(kernel, sdet, layouts, kinds);
    let cells: Vec<Cell> = tables
        .into_iter()
        .enumerate()
        .map(|(i, table)| Cell {
            label: if i == 0 {
                "baseline".to_string()
            } else {
                let (letter, _, kind) = meta[i - 1];
                format!("{letter}/{kind}")
            },
            table,
            sdet: sdet.clone(),
            machine: machine.clone(),
        })
        .collect();
    let (measured, _report) =
        measure_cells_fault_obs(name, kernel, &cells, runs, jobs, spec, None, obs)?;
    let mut per_table = measured
        .into_iter()
        .map(|m| m.expect("no fault plan, so no holes"));
    let baseline = per_table.next().expect("table 0 is always present");
    Ok(figure_from_throughputs(
        title,
        &meta,
        baseline,
        per_table.collect(),
    ))
}

/// The result of measuring a figure's grid under fault supervision.
#[derive(Debug)]
pub struct FigureOutcome {
    /// The assembled figure — `Some` iff every cell completed.
    pub figure: Option<Figure>,
    /// Per-cell label and (possibly holed) measurement, in grid order
    /// (cell 0 is the all-baseline table).
    pub cells: Vec<(String, Option<Throughput>)>,
    /// What the supervised pool saw.
    pub report: FaultReport,
}

/// [`figure_ckpt_obs`] under fault supervision.
///
/// Same grid and cell order, routed through
/// [`measure_cells_fault_obs`]. When every cell survives (clean run, or
/// all faults transient) the [`FigureOutcome`] carries the assembled
/// figure, bit-identical to the unsupervised path; when permanent
/// faults poison cells it carries the partial per-cell values instead,
/// and the caller is expected to degrade via [`require_figure`].
#[allow(clippy::too_many_arguments)]
pub fn figure_fault_obs(
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
    jobs: usize,
    spec: Option<&CheckpointSpec>,
    fault: Option<&FaultConfig>,
    obs: &slopt_obs::Obs,
) -> std::io::Result<FigureOutcome> {
    if let Some(spec) = spec {
        guard_cc_snapshot(spec, &layouts.analysis.concurrency)?;
    }
    let (tables, meta) = figure_tables(kernel, sdet, layouts, kinds);
    let cells: Vec<Cell> = tables
        .into_iter()
        .enumerate()
        .map(|(i, table)| Cell {
            label: if i == 0 {
                "baseline".to_string()
            } else {
                let (letter, _, kind) = meta[i - 1];
                format!("{letter}/{kind}")
            },
            table,
            sdet: sdet.clone(),
            machine: machine.clone(),
        })
        .collect();
    let (measured, report) =
        measure_cells_fault_obs(name, kernel, &cells, runs, jobs, spec, fault, obs)?;
    let labelled: Vec<(String, Option<Throughput>)> = cells
        .iter()
        .map(|c| c.label.clone())
        .zip(measured)
        .collect();
    let figure = if labelled.iter().all(|(_, m)| m.is_some()) {
        let mut per_table = labelled
            .iter()
            .map(|(_, m)| m.clone().expect("all present"));
        let baseline = per_table.next().expect("table 0 is always present");
        Some(figure_from_throughputs(
            title,
            &meta,
            baseline,
            per_table.collect(),
        ))
    } else {
        None
    };
    Ok(FigureOutcome {
        figure,
        cells: labelled,
        report,
    })
}

/// Prints the explicit partial-result table of the degradation
/// contract — every cell with its value or a `HOLE` marker, then the
/// poisoned grid items — flushes the trace, and exits
/// [`exit::DEGRADED`].
fn degrade_and_exit(
    tag: &str,
    cells: &[(String, Option<Throughput>)],
    report: &FaultReport,
    args: &RunnerArgs,
    obs: &slopt_obs::Obs,
) -> ! {
    eprintln!("[{tag}] DEGRADED: {}", report.summary_line());
    println!("=== {tag}: PARTIAL RESULTS (degraded run) ===");
    for (label, m) in cells {
        match m {
            Some(t) => println!("  {label:<28} {:>12.2}", t.mean),
            None => println!("  {label:<28} {:>12}", "HOLE"),
        }
    }
    for f in &report.poisoned {
        eprintln!("[{tag}] poisoned: {f}");
    }
    args.finish(obs);
    std::process::exit(i32::from(exit::DEGRADED));
}

/// Unwraps a [`measure_cells_fault_obs`] outcome for binaries that print
/// their own tables. A complete grid (no holes) yields the per-cell
/// throughputs — after logging the recovery summary if anything was
/// injected; a holed grid prints the partial table plus poisoned items
/// and exits [`exit::DEGRADED`].
pub fn require_complete(
    tag: &str,
    cells: &[Cell],
    measured: Vec<Option<Throughput>>,
    report: &FaultReport,
    args: &RunnerArgs,
    obs: &slopt_obs::Obs,
) -> Vec<Throughput> {
    if measured.iter().all(Option::is_some) {
        if report.had_faults() {
            eprintln!("[{tag}] {}", report.summary_line());
        }
        return measured.into_iter().flatten().collect();
    }
    let labelled: Vec<(String, Option<Throughput>)> = cells
        .iter()
        .map(|c| c.label.clone())
        .zip(measured)
        .collect();
    degrade_and_exit(tag, &labelled, report, args, obs)
}

/// Unwraps a [`FigureOutcome`] for the figure binaries: the assembled
/// [`Figure`] when complete, the partial-table-and-exit degradation path
/// otherwise.
pub fn require_figure(
    tag: &str,
    outcome: FigureOutcome,
    args: &RunnerArgs,
    obs: &slopt_obs::Obs,
) -> Figure {
    match outcome.figure {
        Some(figure) => {
            if outcome.report.had_faults() {
                eprintln!("[{tag}] {}", outcome.report.summary_line());
            }
            figure
        }
        None => degrade_and_exit(tag, &outcome.cells, &outcome.report, args, obs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_sim::CacheConfig;
    use slopt_workload::{baseline_layouts, build_kernel, measure};

    fn small_cfg() -> SdetConfig {
        SdetConfig {
            scripts_per_cpu: 4,
            invocations_per_script: 6,
            pool_instances: 32,
            cache: CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
            ..SdetConfig::default()
        }
    }

    #[test]
    fn jobs_flag_parses_with_default() {
        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&args), 3);
        assert_eq!(parse_jobs(&[]), slopt_core::default_jobs());
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&zero), 1);
        let both: Vec<String> = ["--scale", "2", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&both);
        assert_eq!((ra.scale, ra.jobs), (2, 5));
    }

    #[test]
    fn trace_flags_parse() {
        let args: Vec<String> = ["--trace-out", "/tmp/t.jsonl", "--stats"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&args);
        assert_eq!(ra.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(ra.stats);
        let none = RunnerArgs::from_args(&[]);
        assert!(none.trace_out.is_none());
        assert!(!none.stats);
    }

    #[test]
    fn instrumented_cells_match_plain_cells() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells = vec![Cell {
            label: "c".into(),
            table: table.clone(),
            sdet: cfg.clone(),
            machine: machine.clone(),
        }];
        let plain = measure_cells(&kernel, &cells, 2, 2);
        let obs = slopt_obs::Obs::aggregating();
        let traced = measure_cells_obs(&kernel, &cells, 2, 2, &obs);
        assert_eq!(plain[0].runs, traced[0].runs);
        let s = obs.summary();
        // One warm-up + two measured runs for the single cell.
        assert_eq!(s.span_count("measure_cell"), 3);
        assert_eq!(s.span_count("measure_grid"), 1);
        assert_eq!(s.metrics.counter("runner.cells"), 1);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let args: Vec<String> = ["--checkpoint-dir", "/tmp/ck", "--resume"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&args);
        assert_eq!(ra.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert!(ra.resume);
        let spec = ra.checkpoint_spec().expect("dir given");
        assert_eq!(spec.dir, PathBuf::from("/tmp/ck"));
        assert!(spec.resume);
        let none = RunnerArgs::from_args(&[]);
        assert!(none.checkpoint_spec().is_none());
    }

    #[test]
    fn checkpointed_cells_match_plain_cells_after_partial_run() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..2)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let plain = measure_cells(&kernel, &cells, 3, 2);

        let dir = std::env::temp_dir().join(format!("slopt_runner_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CheckpointSpec {
            dir: dir.clone(),
            resume: false,
        };
        let obs = slopt_obs::Obs::disabled();
        // Full checkpointed run, then truncate the log to simulate a kill
        // after the first two grid items.
        let full = measure_cells_ckpt_obs("t", &kernel, &cells, 3, 1, Some(&spec), &obs).unwrap();
        let path = dir.join("t.ckpt");
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();

        let resume = CheckpointSpec {
            dir: dir.clone(),
            resume: true,
        };
        let obs = slopt_obs::Obs::aggregating();
        let resumed =
            measure_cells_ckpt_obs("t", &kernel, &cells, 3, 2, Some(&resume), &obs).unwrap();
        let s = obs.summary();
        assert_eq!(s.metrics.counter("ckpt.items_resumed"), 2);
        assert_eq!(s.metrics.counter("ckpt.items_total"), 8);
        for ((a, b), c) in plain.iter().zip(&full).zip(&resumed) {
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.runs, c.runs);
            assert_eq!(a.mean, c.mean, "resumed result must be bit-identical");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cells_match_direct_measure_for_any_job_count() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..3)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let direct = measure(&kernel, &table, &machine, &cfg, 3);
        for jobs in [1, 4] {
            let out = measure_cells(&kernel, &cells, 3, jobs);
            assert_eq!(out.len(), 3);
            for t in &out {
                assert_eq!(t.runs, direct.runs, "jobs={jobs}");
                assert_eq!(t.mean, direct.mean, "jobs={jobs}");
            }
        }
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn small_cells(n: usize) -> (slopt_workload::Kernel, Vec<Cell>) {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells = (0..n)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        (kernel, cells)
    }

    fn fault_cfg(spec: &str, retries: u32) -> FaultConfig {
        FaultConfig {
            plan: FaultPlan::parse(spec).expect("valid spec"),
            policy: SupervisePolicy {
                max_retries: retries,
                ..SupervisePolicy::default()
            },
        }
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let ra = RunnerArgs::from_args(&strs(&[
            "--fault-plan",
            "seed=1,transient=0.5",
            "--max-retries",
            "7",
            "--deadline-ms",
            "250",
        ]));
        let fc = ra.fault_config().expect("valid").expect("flags given");
        assert_eq!(fc.plan.seed(), 1);
        assert_eq!(fc.policy.max_retries, 7);
        assert_eq!(fc.policy.deadline, Some(Duration::from_millis(250)));

        // No flags at all: supervision stays off entirely.
        assert!(RunnerArgs::from_args(&[])
            .fault_config()
            .expect("valid")
            .is_none());
        // Supervision flags alone give the no-op plan.
        let only = RunnerArgs::from_args(&strs(&["--max-retries", "2"]));
        let fc = only.fault_config().expect("valid").expect("flag given");
        assert_eq!(fc.plan, FaultPlan::none());

        for bad in [
            &["--fault-plan", "transient=2.0"][..],
            &["--fault-plan", "bogus=1"][..],
            &["--max-retries", "x"][..],
            &["--deadline-ms", "0"][..],
        ] {
            assert!(
                RunnerArgs::from_args(&strs(bad)).fault_config().is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn transient_fault_plans_are_invisible_in_output() {
        let (kernel, cells) = small_cells(2);
        let clean = measure_cells(&kernel, &cells, 2, 2);
        let fc = fault_cfg("seed=7,transient=0.5,panic=0.2", 16);
        for jobs in [1, 3] {
            let obs = slopt_obs::Obs::aggregating();
            let (measured, report) =
                measure_cells_fault_obs("t", &kernel, &cells, 2, jobs, None, Some(&fc), &obs)
                    .unwrap();
            assert!(report.had_faults(), "plan should fire on this grid");
            assert!(!report.degraded(), "transients must all recover");
            assert!(report.poisoned.is_empty());
            assert!(report.recovered > 0);
            let s = obs.summary();
            assert!(s.metrics.counter("retry.attempts") > 0);
            for (m, c) in measured.iter().zip(&clean) {
                let m = m.as_ref().expect("no holes on a recovered run");
                assert_eq!(m.runs, c.runs, "bit-identical under jobs={jobs}");
            }
        }
    }

    #[test]
    fn permanent_fault_plans_hole_everything_with_grid_indices() {
        let (kernel, cells) = small_cells(2);
        let fc = fault_cfg("seed=3,permanent=1", 2);
        let obs = slopt_obs::Obs::disabled();
        let (measured, report) =
            measure_cells_fault_obs("t", &kernel, &cells, 2, 1, None, Some(&fc), &obs).unwrap();
        assert!(measured.iter().all(Option::is_none));
        assert!(report.degraded());
        // 2 cells x (warm-up + 2 runs) grid items, each poisoned on its
        // first attempt (permanent faults never retry).
        assert_eq!(report.poisoned.len(), 6);
        for (gi, f) in report.poisoned.iter().enumerate() {
            assert_eq!(f.index, gi, "poisoned indices are grid indices");
            assert_eq!(f.attempts, 1);
            assert_eq!(f.kind, slopt_core::FailureKind::Permanent);
        }
    }

    #[test]
    fn fault_reports_and_holes_are_jobs_invariant() {
        let (kernel, cells) = small_cells(2);
        let fc = fault_cfg("seed=5,permanent=0.4,transient=0.3", 4);
        let obs = slopt_obs::Obs::disabled();
        let (m1, r1) =
            measure_cells_fault_obs("t", &kernel, &cells, 2, 1, None, Some(&fc), &obs).unwrap();
        let (m4, r4) =
            measure_cells_fault_obs("t", &kernel, &cells, 2, 4, None, Some(&fc), &obs).unwrap();
        assert!(r1.degraded(), "this seed poisons at least one item");
        assert_eq!(r1, r4, "fault report is scheduling-invariant");
        let runs = |m: &[Option<Throughput>]| -> Vec<Option<Vec<f64>>> {
            m.iter()
                .map(|t| t.as_ref().map(|t| t.runs.clone()))
                .collect()
        };
        assert_eq!(runs(&m1), runs(&m4), "holes and values match across jobs");
    }
}
