//! The shared parallel experiment runner.
//!
//! Every figure/ablation binary is, at heart, the same program: build a
//! grid of *measurement cells* — each a layout table measured under some
//! workload/machine configuration — measure all of them, and print a
//! table. This module owns that shape once:
//!
//! * [`ExecCtx`] — the execution context: observability, checkpointing,
//!   fault supervision and the thread count, composed as *data* rather
//!   than as a combinatorial family of function variants;
//! * [`Cell`] — one grid cell (label + layout table + config + machine);
//! * [`measure_cells`] — measures the whole grid under an [`ExecCtx`],
//!   fanned out over host threads at `(cell, run-seed)` granularity;
//! * [`figure`] — the figure-shaped wrapper: same grid, cells generated
//!   by [`figure_tables`], assembled into a [`Figure`];
//! * [`resolve`] — the one complete-vs-degraded decision shared by every
//!   caller, so exit-4 semantics cannot diverge between the figure and
//!   cell paths.
//!
//! Determinism contract: cells carry their entire configuration, run
//! seeds come from [`slopt_workload::measurement_seeds`], fault decisions
//! are keyed by grid index, and results are collected by `(cell, seed)`
//! index — so the output is bit-identical for every `jobs` value,
//! including `jobs == 1` (which spawns no threads at all), and invariant
//! under checkpoint resume.

use slopt_core::{par_map_supervised_commit, FaultReport, SupervisePolicy, WorkerError};
use slopt_fault::{exit, FaultKind, FaultPlan};
use slopt_sim::LayoutTable;
use slopt_workload::{
    figure_from_throughputs, figure_tables, measurement_seeds, run_once, Figure, Kernel,
    LayoutKind, Machine, PaperLayouts, SdetConfig, Throughput, WorkloadSpec,
};

use crate::checkpoint::{fingerprint, guard_cc_snapshot, Checkpoint, CheckpointSpec};
use std::time::Duration;

/// Fault-decision site for worker execution (`--fault-plan` panics,
/// transients, permanent failures, stalls).
pub const SITE_WORKER: &str = "worker";
/// Fault-decision site for checkpoint appends (`write-error`).
pub const SITE_CKPT: &str = "ckpt";

/// Fault injection plus the supervision policy that contains it, as
/// requested by `--fault-plan` / `--max-retries` / `--deadline-ms`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// The seeded injection schedule (the no-op plan when only the
    /// supervision flags were given).
    pub plan: FaultPlan,
    /// Retry/deadline policy of the supervised pool.
    pub policy: SupervisePolicy,
}

/// The execution context: every capability a grid run can carry,
/// composed as plain data.
///
/// Historically each capability combination had its own entry point (an
/// `_obs` / checkpoint / fault suffix per axis — deleted forwarders);
/// the lattice grew multiplicatively with each new capability. An
/// `ExecCtx` collapses that into one
/// [`measure_cells`] / [`figure`] path: a capability that is "off" is
/// simply `None` (or a disabled [`slopt_obs::Obs`] handle), and the
/// runner's behavior with everything off is bit-identical to the old
/// plain path.
#[derive(Clone)]
pub struct ExecCtx {
    /// Observability handle. [`slopt_obs::Obs::disabled`] is zero-cost.
    pub obs: slopt_obs::Obs,
    /// Grid checkpoint/resume request (`--checkpoint-dir` / `--resume`).
    pub checkpoint: Option<CheckpointSpec>,
    /// Fault injection + supervision (`--fault-plan` / `--max-retries` /
    /// `--deadline-ms`). `None` runs the trusting scheduler.
    pub fault: Option<FaultConfig>,
    /// Host threads to fan work across.
    pub jobs: usize,
    /// Print the human counter/span summary table from [`ExecCtx::finish`]
    /// (`--stats`).
    pub stats: bool,
    /// Where the trace sink writes, if anywhere (`--trace-out`) — kept so
    /// [`ExecCtx::finish`] can tell the user where the trace went.
    pub trace_out: Option<String>,
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("obs_enabled", &self.obs.enabled())
            .field("checkpoint", &self.checkpoint)
            .field("fault", &self.fault)
            .field("jobs", &self.jobs)
            .field("stats", &self.stats)
            .field("trace_out", &self.trace_out)
            .finish()
    }
}

impl ExecCtx {
    /// The bare context: no observability, no checkpoint, no fault
    /// supervision — the old `measure_cells(kernel, cells, runs, jobs)`
    /// behavior.
    pub fn bare(jobs: usize) -> ExecCtx {
        ExecCtx {
            obs: slopt_obs::Obs::disabled(),
            checkpoint: None,
            fault: None,
            jobs,
            stats: false,
            trace_out: None,
        }
    }

    /// Replaces the observability handle.
    pub fn with_obs(mut self, obs: slopt_obs::Obs) -> ExecCtx {
        self.obs = obs;
        self
    }

    /// Adds a checkpoint request.
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> ExecCtx {
        self.checkpoint = Some(spec);
        self
    }

    /// Adds fault supervision.
    pub fn with_fault(mut self, fault: FaultConfig) -> ExecCtx {
        self.fault = Some(fault);
        self
    }

    /// The per-item deadline in milliseconds, if fault supervision
    /// carries one. The deadline lives inside the supervision policy —
    /// it is only enforceable by the supervised pool — but callers ask
    /// the context, not the policy.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.fault
            .as_ref()
            .and_then(|f| f.policy.deadline)
            .map(|d| d.as_millis() as u64)
    }

    /// Flushes the trace sink and, under `stats`, prints the aggregate
    /// summary table. Call once at the end of `main`.
    pub fn finish(&self) {
        self.obs.finish();
        if self.stats && self.obs.enabled() {
            println!("=== run stats ===");
            print!("{}", self.obs.summary());
        }
        if let Some(path) = &self.trace_out {
            eprintln!("[runner] trace written to {path}");
        }
    }
}

/// One measurement cell of an experiment grid.
///
/// A cell owns its whole configuration so grids may vary anything between
/// cells — layouts (the figures), block size (`ablation_blocksize`),
/// protocol (`ablation_protocol`), machine — while staying independent
/// work items.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display label (used in progress output only).
    pub label: String,
    /// The layout table to measure.
    pub table: LayoutTable,
    /// Workload sizing for this cell.
    pub sdet: SdetConfig,
    /// The machine to measure on.
    pub machine: Machine,
}

/// What [`measure_cells`] produced: one (possibly holed) measurement per
/// cell plus the supervised pool's report.
#[derive(Debug)]
pub struct GridOutcome {
    /// Per-cell measurement in cell order; `None` marks a hole (a cell
    /// that lost at least one measured run to a permanent fault).
    pub measured: Vec<Option<Throughput>>,
    /// What the supervised pool saw. The trusting path reports
    /// all-completed with no faults.
    pub report: FaultReport,
}

/// Measures every cell — a warm-up plus `runs` measured runs each —
/// under the given execution context, and returns one (possibly holed)
/// [`Throughput`] per cell, in cell order.
///
/// The grid is flattened to `(cell, run seed)` work items, the finest
/// independent unit of simulation, so even a handful of cells scales to
/// many threads. Results are bit-identical for every `ctx.jobs` value.
///
/// Capabilities, per the context:
///
/// * **Observability** (`ctx.obs`): the whole grid runs under a
///   `measure_grid` span, every `(cell, seed)` simulation under its own
///   `measure_cell` span (workers get distinct trace thread ids), and
///   the grid shape plus per-worker utilization are flushed as
///   `runner.*` counters and gauges. Disabled handles cost nothing.
/// * **Checkpointing** (`ctx.checkpoint`): every completed grid item is
///   appended to `<name>.ckpt` as it is *accepted* — deadline-holed or
///   quarantined items are never recorded as completed — and a later
///   `resume` run loads those items and recomputes only the rest.
///   Persisted values are exact `f64` bit patterns and results are
///   assembled by grid index either way, so a resumed run's output is
///   bit-identical to an uninterrupted one. The log header fingerprints
///   the grid (name, run count, per-cell label + machine + workload
///   config), so resuming a *different* grid is an error rather than a
///   silent mix of experiments. Emits `ckpt.items_total` /
///   `ckpt.items_resumed` counters and a `ckpt.torn_line` warning when
///   the previous run died mid-append.
/// * **Fault supervision** (`ctx.fault`): grid items run through the
///   supervised pool; injected (or real) panics are contained, transient
///   failures retry with bounded deterministic backoff, and items that
///   still fail become `None` *holes*. Fault decisions are keyed by
///   **grid index**, so they are identical under any `jobs` value and
///   compose with resume. Transient faults are invisible (recovered
///   items are bit-identical to a clean run's); permanent faults degrade
///   explicitly (the [`FaultReport`] lists each poisoned grid item and
///   the caller must exit [`exit::DEGRADED`], via [`resolve`]). Fault
///   activity is surfaced as `warn.fault.injected.*`,
///   `warn.fault.poisoned`, `warn.fault.deadline` and `retry.*`
///   counters.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells(
    ctx: &ExecCtx,
    name: &str,
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
) -> std::io::Result<GridOutcome> {
    assert!(runs > 0, "need at least one measured run");
    let obs = &ctx.obs;
    let seeds = measurement_seeds(runs);
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&seed| (c, seed)))
        .collect();

    let ckpt = match &ctx.checkpoint {
        Some(spec) => {
            let mut parts: Vec<String> = vec![name.to_string(), format!("runs={runs}")];
            for cell in cells {
                parts.push(format!("{} {:?} {:?}", cell.label, cell.machine, cell.sdet));
            }
            let fp = fingerprint(parts.iter().map(String::as_str));
            let ck = Checkpoint::open(spec, name, grid.len(), fp)?;
            if obs.enabled() {
                obs.counter("ckpt.items_total", grid.len() as u64);
                obs.counter("ckpt.items_resumed", ck.resumed() as u64);
                if ck.dropped_torn_line() {
                    obs.warning("ckpt.torn_line");
                }
            }
            if spec.resume {
                eprintln!(
                    "[runner] checkpoint {}: {} of {} grid items already done",
                    ck.path().display(),
                    ck.resumed(),
                    grid.len()
                );
            }
            Some(ck)
        }
        None => None,
    };

    let mut values: Vec<Option<f64>> = (0..grid.len())
        .map(|i| ckpt.as_ref().and_then(|ck| ck.get(i)))
        .collect();
    let pending: Vec<(usize, usize, u64)> = grid
        .iter()
        .enumerate()
        .filter(|&(i, _)| values[i].is_none())
        .map(|(i, &(c, seed))| (i, c, seed))
        .collect();
    eprintln!(
        "[runner] measuring {} cells x {} runs (+warm-up), {} item(s) on {} thread(s)...",
        cells.len(),
        runs,
        pending.len(),
        ctx.jobs.max(1).min(pending.len().max(1))
    );
    let t0 = std::time::Instant::now();
    // One grid item's simulation, shared by both schedulers.
    let simulate = |c: usize, seed: u64| -> f64 {
        let _cell = obs.span("measure_cell");
        let cell = &cells[c];
        let out = run_once(
            kernel,
            &cell.table,
            &cell.machine,
            &cell.sdet,
            seed,
            &mut slopt_sim::NullObserver,
        );
        // Per-cell simulated makespan distribution. Simulated cycles are
        // a pure function of (cell, seed), so unlike the wall-clock span
        // histograms this one is bit-identical at any --jobs value and
        // trace_diff compares it structurally.
        obs.histogram("figure.cell_makespan", out.result.makespan);
        out.result.throughput()
    };
    // Committing an *accepted* grid item to the checkpoint. This is the
    // run's only durable side effect, so it sits behind the supervised
    // pool's acceptance boundary: an item the pool rejects (deadline
    // overrun, quarantine) must never be recorded as completed.
    let commit_value = |i: usize, value: f64, attempt: u32| {
        if let Some(ck) = &ckpt {
            let dropped = ctx.fault.as_ref().is_some_and(|f| {
                f.plan
                    .fires(FaultKind::WriteError, SITE_CKPT, i as u64, attempt)
            });
            if dropped {
                // The degrade path checkpointing already has: a failed
                // append loses only resumability of this item.
                obs.warning("fault.injected.write_error");
            } else {
                ck.record(i, value);
            }
        }
    };
    let report = match &ctx.fault {
        None => {
            let computed = {
                let _span = obs.span("measure_grid");
                slopt_core::par_map(ctx.jobs, &pending, |_, &(i, c, seed)| {
                    let value = simulate(c, seed);
                    commit_value(i, value, 0);
                    (i, value)
                })
            };
            for (i, value) in computed {
                values[i] = Some(value);
            }
            FaultReport {
                items: pending.len(),
                completed: pending.len(),
                ..FaultReport::default()
            }
        }
        Some(fault) => {
            let plan = &fault.plan;
            let (computed, mut report) = {
                let _span = obs.span("measure_grid");
                par_map_supervised_commit(
                    ctx.jobs,
                    &pending,
                    &fault.policy,
                    |_, &(i, c, seed), attempt| {
                        // Injection points, all keyed by grid index `i` so
                        // decisions are jobs- and resume-invariant.
                        let gi = i as u64;
                        if plan.fires(FaultKind::Permanent, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.permanent");
                            return Err(WorkerError::permanent(format!(
                                "injected permanent fault (grid item {i})"
                            )));
                        }
                        if plan.fires(FaultKind::Panic, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.panic");
                            panic!("injected worker panic (grid item {i}, attempt {attempt})");
                        }
                        if plan.fires(FaultKind::Transient, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.transient");
                            return Err(WorkerError::transient(format!(
                                "injected transient fault (grid item {i}, attempt {attempt})"
                            )));
                        }
                        if plan.fires(FaultKind::Slow, SITE_WORKER, gi, attempt) {
                            obs.warning("fault.injected.slow");
                            std::thread::sleep(Duration::from_millis(plan.slow_ms()));
                        }
                        Ok((i, simulate(c, seed)))
                    },
                    |_, _, &(i, value), attempt| commit_value(i, value, attempt),
                )
            };
            // The supervisor numbers items by position in `pending`;
            // remap poisoned entries to grid indices for reporting.
            for failure in &mut report.poisoned {
                failure.index = pending[failure.index].0;
            }
            for (i, value) in computed.into_iter().flatten() {
                values[i] = Some(value);
            }
            if obs.enabled() {
                obs.counter("retry.attempts", report.retries);
                obs.counter("retry.recovered", report.recovered as u64);
                if !report.poisoned.is_empty() {
                    obs.warning_n("fault.poisoned", report.poisoned.len() as u64);
                }
                if report.deadline_hits > 0 {
                    obs.warning_n("fault.deadline", report.deadline_hits);
                }
            }
            report
        }
    };
    if obs.enabled() {
        obs.counter("runner.cells", cells.len() as u64);
        obs.counter("runner.runs_per_cell", seeds.len() as u64);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        if wall_ns > 0 {
            let summary = obs.summary();
            for row in summary.span_rows("measure_cell") {
                obs.gauge(
                    &format!("runner.worker{}.utilization", row.tid),
                    row.total_ns as f64 / wall_ns as f64,
                );
            }
        }
    }
    // Assemble per-cell results. A cell is a hole iff any of its
    // *measured* runs (chunk[1..]; chunk[0] is the warm-up) is missing.
    let measured = values
        .chunks_exact(seeds.len())
        .map(|chunk| {
            chunk[1..]
                .iter()
                .copied()
                .collect::<Option<Vec<f64>>>()
                .map(Throughput::from_runs)
        })
        .collect();
    Ok(GridOutcome { measured, report })
}

/// The result of measuring a figure's grid.
#[derive(Debug)]
pub struct FigureOutcome {
    /// The assembled figure — `Some` iff every cell completed.
    pub figure: Option<Figure>,
    /// Per-cell label and (possibly holed) measurement, in grid order
    /// (cell 0 is the all-baseline table).
    pub cells: Vec<(String, Option<Throughput>)>,
    /// What the supervised pool saw.
    pub report: FaultReport,
}

/// Measures one figure's grid — the all-baseline table plus one
/// transformed struct at a time — under the given execution context, and
/// assembles the [`Figure`] when every cell completes.
///
/// This is [`slopt_workload::figure_rows_jobs_obs`] routed through
/// [`measure_cells`]: the grid comes from the same [`figure_tables`]
/// call (the single source of cell order), so the result is
/// bit-identical to the direct path for every `jobs` value,
/// checkpointed or not. With a checkpoint, the analysis' concurrency
/// map is additionally snapshotted to `cc.snap` ([`guard_cc_snapshot`]):
/// a resumed run whose analysis drifted from the checkpointed one fails
/// instead of mixing two experiments.
///
/// When permanent faults poison cells the [`FigureOutcome`] carries the
/// partial per-cell values instead of a figure, and the caller is
/// expected to degrade via [`require_figure`] (or [`resolve`]).
#[allow(clippy::too_many_arguments)]
pub fn figure(
    ctx: &ExecCtx,
    name: &str,
    kernel: &Kernel,
    machine: &Machine,
    sdet: &SdetConfig,
    runs: usize,
    layouts: &PaperLayouts,
    kinds: &[LayoutKind],
    title: impl Into<String>,
) -> std::io::Result<FigureOutcome> {
    if let Some(spec) = &ctx.checkpoint {
        guard_cc_snapshot(spec, &layouts.analysis.concurrency)?;
    }
    let (tables, meta) = figure_tables(kernel, sdet, layouts, kinds);
    let cells: Vec<Cell> = tables
        .into_iter()
        .enumerate()
        .map(|(i, table)| Cell {
            label: if i == 0 {
                "baseline".to_string()
            } else {
                let (letter, _, kind) = meta[i - 1];
                format!("{letter}/{kind}")
            },
            table,
            sdet: sdet.clone(),
            machine: machine.clone(),
        })
        .collect();
    let GridOutcome { measured, report } = measure_cells(ctx, name, kernel, &cells, runs)?;
    let labelled: Vec<(String, Option<Throughput>)> = cells
        .iter()
        .map(|c| c.label.clone())
        .zip(measured)
        .collect();
    let figure = if labelled.iter().all(|(_, m)| m.is_some()) {
        let mut per_table = labelled
            .iter()
            .map(|(_, m)| m.clone().expect("all present"));
        let baseline = per_table.next().expect("table 0 is always present");
        Some(figure_from_throughputs(
            title,
            &meta,
            baseline,
            per_table.collect(),
        ))
    } else {
        None
    };
    Ok(FigureOutcome {
        figure,
        cells: labelled,
        report,
    })
}

/// A degraded run: permanent faults holed part of the grid. Carries the
/// process exit code so every caller agrees on it.
#[derive(Debug)]
pub struct Degraded {
    /// How many grid items were poisoned.
    pub poisoned: usize,
}

impl Degraded {
    /// The exit code of the degradation contract.
    pub fn exit_code(&self) -> u8 {
        exit::DEGRADED
    }

    /// Flushes the context and exits with [`exit::DEGRADED`] — the
    /// binaries' terminal degrade step.
    pub fn finish_and_exit(&self, ctx: &ExecCtx) -> ! {
        ctx.finish();
        std::process::exit(i32::from(self.exit_code()))
    }
}

/// The one complete-vs-degraded decision, shared by the figure and cell
/// paths (and `slopt-tool figures`) so the degradation contract cannot
/// diverge between them.
///
/// A complete grid (no holes) yields the per-cell throughputs — after
/// logging the recovery summary if anything was injected. A holed grid
/// prints the explicit partial-result table — every cell with its value
/// or a `HOLE` marker — then the poisoned grid items, and returns
/// [`Degraded`]; the caller decides how to exit (binaries call
/// [`Degraded::finish_and_exit`], the CLI maps it to its error type).
pub fn resolve(
    tag: &str,
    cells: Vec<(String, Option<Throughput>)>,
    report: &FaultReport,
) -> Result<Vec<Throughput>, Degraded> {
    if cells.iter().all(|(_, m)| m.is_some()) {
        if report.had_faults() {
            eprintln!("[{tag}] {}", report.summary_line());
        }
        return Ok(cells.into_iter().filter_map(|(_, m)| m).collect());
    }
    eprintln!("[{tag}] DEGRADED: {}", report.summary_line());
    println!("=== {tag}: PARTIAL RESULTS (degraded run) ===");
    for (label, m) in &cells {
        match m {
            Some(t) => println!("  {label:<28} {:>12.2}", t.mean),
            None => println!("  {label:<28} {:>12}", "HOLE"),
        }
    }
    for f in &report.poisoned {
        eprintln!("[{tag}] poisoned: {f}");
    }
    Err(Degraded {
        poisoned: report.poisoned.len(),
    })
}

/// Unwraps a [`measure_cells`] outcome for binaries that print their own
/// tables: the per-cell throughputs when complete, the partial table
/// plus [`exit::DEGRADED`] otherwise (via [`resolve`]).
pub fn require_complete(
    tag: &str,
    ctx: &ExecCtx,
    cells: &[Cell],
    outcome: GridOutcome,
) -> Vec<Throughput> {
    let labelled: Vec<(String, Option<Throughput>)> = cells
        .iter()
        .map(|c| c.label.clone())
        .zip(outcome.measured)
        .collect();
    resolve(tag, labelled, &outcome.report).unwrap_or_else(|d| d.finish_and_exit(ctx))
}

/// Unwraps a [`FigureOutcome`] for the figure binaries: the assembled
/// [`Figure`] when complete, the partial-table-and-exit degradation path
/// otherwise (via [`resolve`]).
pub fn require_figure(tag: &str, ctx: &ExecCtx, outcome: FigureOutcome) -> Figure {
    let FigureOutcome {
        figure,
        cells,
        report,
    } = outcome;
    match resolve(tag, cells, &report) {
        Ok(_) => figure.expect("complete grid assembles a figure"),
        Err(d) => d.finish_and_exit(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_sim::CacheConfig;
    use slopt_workload::{baseline_layouts, build_kernel, measure};

    fn small_cfg() -> SdetConfig {
        SdetConfig {
            scripts_per_cpu: 4,
            invocations_per_script: 6,
            pool_instances: 32,
            cache: CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
            ..SdetConfig::default()
        }
    }

    fn small_cells(n: usize) -> (slopt_workload::Kernel, Vec<Cell>) {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells = (0..n)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        (kernel, cells)
    }

    fn fault_cfg(spec: &str, retries: u32) -> FaultConfig {
        FaultConfig {
            plan: FaultPlan::parse(spec).expect("valid spec"),
            policy: SupervisePolicy {
                max_retries: retries,
                ..SupervisePolicy::default()
            },
        }
    }

    fn complete(out: GridOutcome) -> Vec<Throughput> {
        out.measured
            .into_iter()
            .map(|m| m.expect("no holes expected"))
            .collect()
    }

    #[test]
    fn ctx_reports_the_deadline_through_the_policy() {
        let ctx = ExecCtx::bare(2);
        assert_eq!(ctx.deadline_ms(), None);
        let mut fc = fault_cfg("", 1);
        fc.policy.deadline = Some(Duration::from_millis(250));
        let ctx = ctx.with_fault(fc);
        assert_eq!(ctx.deadline_ms(), Some(250));
    }

    #[test]
    fn instrumented_cells_match_plain_cells() {
        let (kernel, cells) = small_cells(1);
        let plain = complete(
            measure_cells(&ExecCtx::bare(2), "grid", &kernel, &cells, 2).expect("no ckpt I/O"),
        );
        let obs = slopt_obs::Obs::aggregating();
        let ctx = ExecCtx::bare(2).with_obs(obs.clone());
        let traced = complete(measure_cells(&ctx, "grid", &kernel, &cells, 2).expect("no I/O"));
        assert_eq!(plain[0].runs, traced[0].runs);
        let s = obs.summary();
        // One warm-up + two measured runs for the single cell.
        assert_eq!(s.span_count("measure_cell"), 3);
        assert_eq!(s.span_count("measure_grid"), 1);
        assert_eq!(s.metrics.counter("runner.cells"), 1);
    }

    #[test]
    fn checkpointed_cells_match_plain_cells_after_partial_run() {
        let (kernel, cells) = small_cells(2);
        let plain = complete(
            measure_cells(&ExecCtx::bare(2), "t", &kernel, &cells, 3).expect("no ckpt I/O"),
        );

        let dir = std::env::temp_dir().join(format!("slopt_runner_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CheckpointSpec {
            dir: dir.clone(),
            resume: false,
        };
        // Full checkpointed run, then truncate the log to simulate a kill
        // after the first two grid items.
        let ctx = ExecCtx::bare(1).with_checkpoint(spec);
        let full = complete(measure_cells(&ctx, "t", &kernel, &cells, 3).expect("ckpt I/O"));
        let path = dir.join("t.ckpt");
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();

        let resume = CheckpointSpec {
            dir: dir.clone(),
            resume: true,
        };
        let obs = slopt_obs::Obs::aggregating();
        let ctx = ExecCtx::bare(2)
            .with_checkpoint(resume)
            .with_obs(obs.clone());
        let resumed = complete(measure_cells(&ctx, "t", &kernel, &cells, 3).expect("ckpt I/O"));
        let s = obs.summary();
        assert_eq!(s.metrics.counter("ckpt.items_resumed"), 2);
        assert_eq!(s.metrics.counter("ckpt.items_total"), 8);
        for ((a, b), c) in plain.iter().zip(&full).zip(&resumed) {
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.runs, c.runs);
            assert_eq!(a.mean, c.mean, "resumed result must be bit-identical");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cells_match_direct_measure_for_any_job_count() {
        let (kernel, cells) = small_cells(3);
        let direct = measure(
            &kernel,
            &cells[0].table,
            &cells[0].machine,
            &cells[0].sdet,
            3,
        );
        for jobs in [1, 4] {
            let out = complete(
                measure_cells(&ExecCtx::bare(jobs), "grid", &kernel, &cells, 3)
                    .expect("no ckpt I/O"),
            );
            assert_eq!(out.len(), 3);
            for t in &out {
                assert_eq!(t.runs, direct.runs, "jobs={jobs}");
                assert_eq!(t.mean, direct.mean, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn transient_fault_plans_are_invisible_in_output() {
        let (kernel, cells) = small_cells(2);
        let clean = complete(
            measure_cells(&ExecCtx::bare(2), "t", &kernel, &cells, 2).expect("no ckpt I/O"),
        );
        let fc = fault_cfg("seed=7,transient=0.5,panic=0.2", 16);
        for jobs in [1, 3] {
            let obs = slopt_obs::Obs::aggregating();
            let ctx = ExecCtx::bare(jobs)
                .with_fault(fc.clone())
                .with_obs(obs.clone());
            let out = measure_cells(&ctx, "t", &kernel, &cells, 2).expect("no ckpt I/O");
            assert!(out.report.had_faults(), "plan should fire on this grid");
            assert!(!out.report.degraded(), "transients must all recover");
            assert!(out.report.poisoned.is_empty());
            assert!(out.report.recovered > 0);
            let s = obs.summary();
            assert!(s.metrics.counter("retry.attempts") > 0);
            for (m, c) in out.measured.iter().zip(&clean) {
                let m = m.as_ref().expect("no holes on a recovered run");
                assert_eq!(m.runs, c.runs, "bit-identical under jobs={jobs}");
            }
        }
    }

    #[test]
    fn permanent_fault_plans_hole_everything_with_grid_indices() {
        let (kernel, cells) = small_cells(2);
        let ctx = ExecCtx::bare(1).with_fault(fault_cfg("seed=3,permanent=1", 2));
        let out = measure_cells(&ctx, "t", &kernel, &cells, 2).expect("no ckpt I/O");
        assert!(out.measured.iter().all(Option::is_none));
        assert!(out.report.degraded());
        // 2 cells x (warm-up + 2 runs) grid items, each poisoned on its
        // first attempt (permanent faults never retry).
        assert_eq!(out.report.poisoned.len(), 6);
        for (gi, f) in out.report.poisoned.iter().enumerate() {
            assert_eq!(f.index, gi, "poisoned indices are grid indices");
            assert_eq!(f.attempts, 1);
            assert_eq!(f.kind, slopt_core::FailureKind::Permanent);
        }
    }

    #[test]
    fn fault_reports_and_holes_are_jobs_invariant() {
        let (kernel, cells) = small_cells(2);
        let fc = fault_cfg("seed=5,permanent=0.4,transient=0.3", 4);
        let o1 = measure_cells(
            &ExecCtx::bare(1).with_fault(fc.clone()),
            "t",
            &kernel,
            &cells,
            2,
        )
        .expect("no ckpt I/O");
        let o4 = measure_cells(&ExecCtx::bare(4).with_fault(fc), "t", &kernel, &cells, 2)
            .expect("no ckpt I/O");
        assert!(o1.report.degraded(), "this seed poisons at least one item");
        assert_eq!(o1.report, o4.report, "fault report is scheduling-invariant");
        let runs = |m: &[Option<Throughput>]| -> Vec<Option<Vec<f64>>> {
            m.iter()
                .map(|t| t.as_ref().map(|t| t.runs.clone()))
                .collect()
        };
        assert_eq!(
            runs(&o1.measured),
            runs(&o4.measured),
            "holes and values match across jobs"
        );
    }

    #[test]
    fn deadline_holes_are_never_recorded_in_the_checkpoint() {
        let (kernel, cells) = small_cells(2);
        let dir = std::env::temp_dir().join(format!("slopt_runner_dl_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fc = fault_cfg("seed=9,slow=0.4,slow-ms=200", 0);
        fc.policy.deadline = Some(Duration::from_millis(30));
        let ctx = ExecCtx::bare(2)
            .with_checkpoint(CheckpointSpec {
                dir: dir.clone(),
                resume: false,
            })
            .with_fault(fc);
        let out = measure_cells(&ctx, "dl", &kernel, &cells, 2).expect("ckpt I/O");
        assert!(
            out.report.deadline_hits > 0,
            "this seed must stall some items past the deadline"
        );
        let poisoned: Vec<usize> = out.report.poisoned.iter().map(|f| f.index).collect();
        let text = std::fs::read_to_string(dir.join("dl.ckpt")).unwrap();
        let recorded: Vec<usize> = text
            .lines()
            .filter_map(|l| l.strip_prefix("item "))
            .filter_map(|l| l.split_whitespace().next())
            .filter_map(|idx| idx.parse().ok())
            .collect();
        for idx in &poisoned {
            assert!(
                !recorded.contains(idx),
                "deadline-holed grid item {idx} must not be checkpointed as completed"
            );
        }
        // Every accepted item IS recorded (no write-error in the plan):
        // 2 cells x (warm-up + 2 runs) = 6 grid items minus the holes.
        assert_eq!(recorded.len(), 6 - poisoned.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Pins the single complete-vs-degraded decision: the cell path and
    /// the figure path must agree on holes, poisoned counts and the exit
    /// code, because both are `resolve`.
    #[test]
    fn degraded_decision_is_shared_by_cell_and_figure_paths() {
        let (kernel, cells) = small_cells(2);
        let fc = fault_cfg("seed=3,permanent=1", 1);
        let ctx = ExecCtx::bare(1).with_fault(fc);
        let out = measure_cells(&ctx, "t", &kernel, &cells, 2).expect("no ckpt I/O");
        let labelled: Vec<(String, Option<Throughput>)> = cells
            .iter()
            .map(|c| c.label.clone())
            .zip(out.measured)
            .collect();
        let cell_path = resolve("t", labelled.clone(), &out.report);
        let figure_shaped = FigureOutcome {
            figure: None,
            cells: labelled,
            report: out.report.clone(),
        };
        let fig_path = resolve("t", figure_shaped.cells, &figure_shaped.report);
        let (a, b) = (
            cell_path.expect_err("holed grid must degrade"),
            fig_path.expect_err("holed grid must degrade"),
        );
        assert_eq!(a.poisoned, b.poisoned);
        assert_eq!(a.exit_code(), 4, "the degradation contract is exit 4");
        assert_eq!(a.exit_code(), b.exit_code());

        // And a complete grid resolves to the values in cell order.
        let clean = measure_cells(&ExecCtx::bare(1), "t", &kernel, &cells, 2).expect("no I/O");
        let labelled: Vec<(String, Option<Throughput>)> = cells
            .iter()
            .map(|c| c.label.clone())
            .zip(clean.measured)
            .collect();
        let vals = resolve("t", labelled, &clean.report).expect("complete grid");
        assert_eq!(vals.len(), 2);
    }
}
