//! The shared parallel experiment runner.
//!
//! Every figure/ablation binary is, at heart, the same program: build a
//! grid of *measurement cells* — each a layout table measured under some
//! workload/machine configuration — measure all of them, and print a
//! table. This module owns that shape once:
//!
//! * [`RunnerArgs`] — the common `--scale N` / `--jobs N` command line;
//! * [`Cell`] — one grid cell (label + layout table + config + machine);
//! * [`measure_cells`] — measures the whole grid, fanned out over host
//!   threads at `(cell, run-seed)` granularity via
//!   [`slopt_core::par_map`].
//!
//! Determinism contract: cells carry their entire configuration, run
//! seeds come from [`slopt_workload::measurement_seeds`], and results are
//! collected by `(cell, seed)` index — so the output is bit-identical for
//! every `--jobs` value, including `--jobs 1` (which spawns no threads at
//! all).

use slopt_sim::LayoutTable;
use slopt_workload::{measurement_seeds, run_once, Machine, SdetConfig, Throughput, WorkloadSpec};

use crate::harness::parse_scale;

/// The command-line arguments shared by every figure/ablation binary.
#[derive(Clone, Debug)]
pub struct RunnerArgs {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: usize,
    /// Host threads to fan work across (`--jobs N`, default: available
    /// parallelism).
    pub jobs: usize,
}

impl RunnerArgs {
    /// Parses `std::env::args()`.
    pub fn from_env() -> RunnerArgs {
        let args: Vec<String> = std::env::args().collect();
        RunnerArgs::from_args(&args)
    }

    /// Parses `--scale N` and `--jobs N` from an argument list.
    pub fn from_args(args: &[String]) -> RunnerArgs {
        RunnerArgs {
            scale: parse_scale(args),
            jobs: parse_jobs(args),
        }
    }
}

/// Parses the optional `--jobs N` argument; defaults to the host's
/// available parallelism, and clamps 0 to 1.
pub fn parse_jobs(args: &[String]) -> usize {
    args.windows(2)
        .find(|w| w[0] == "--jobs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or_else(slopt_core::default_jobs)
        .max(1)
}

/// One measurement cell of an experiment grid.
///
/// A cell owns its whole configuration so grids may vary anything between
/// cells — layouts (the figures), block size (`ablation_blocksize`),
/// protocol (`ablation_protocol`), machine — while staying independent
/// work items.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Display label (used in progress output only).
    pub label: String,
    /// The layout table to measure.
    pub table: LayoutTable,
    /// Workload sizing for this cell.
    pub sdet: SdetConfig,
    /// The machine to measure on.
    pub machine: Machine,
}

/// Measures every cell — a warm-up plus `runs` measured runs each — and
/// returns one [`Throughput`] per cell, in cell order.
///
/// The grid is flattened to `(cell, run seed)` work items, the finest
/// independent unit of simulation, so even a handful of cells scales to
/// many threads. Results are bit-identical for every `jobs` value.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_cells(
    kernel: &(impl WorkloadSpec + Sync),
    cells: &[Cell],
    runs: usize,
    jobs: usize,
) -> Vec<Throughput> {
    assert!(runs > 0, "need at least one measured run");
    let seeds = measurement_seeds(runs);
    eprintln!(
        "[runner] measuring {} cells x {} runs (+warm-up) on {} thread(s)...",
        cells.len(),
        runs,
        jobs.max(1).min(cells.len() * seeds.len())
    );
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| seeds.iter().map(move |&seed| (c, seed)))
        .collect();
    let values = slopt_core::par_map(jobs, &grid, |_, &(c, seed)| {
        let cell = &cells[c];
        run_once(
            kernel,
            &cell.table,
            &cell.machine,
            &cell.sdet,
            seed,
            &mut slopt_sim::NullObserver,
        )
        .result
        .throughput()
    });
    values
        .chunks_exact(seeds.len())
        .map(|chunk| Throughput::from_runs(chunk[1..].to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_sim::CacheConfig;
    use slopt_workload::{baseline_layouts, build_kernel, measure};

    fn small_cfg() -> SdetConfig {
        SdetConfig {
            scripts_per_cpu: 4,
            invocations_per_script: 6,
            pool_instances: 32,
            cache: CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
            ..SdetConfig::default()
        }
    }

    #[test]
    fn jobs_flag_parses_with_default() {
        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&args), 3);
        assert_eq!(parse_jobs(&[]), slopt_core::default_jobs());
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_jobs(&zero), 1);
        let both: Vec<String> = ["--scale", "2", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ra = RunnerArgs::from_args(&both);
        assert_eq!((ra.scale, ra.jobs), (2, 5));
    }

    #[test]
    fn cells_match_direct_measure_for_any_job_count() {
        let kernel = build_kernel();
        let cfg = small_cfg();
        let machine = Machine::bus(2);
        let table = baseline_layouts(&kernel, cfg.line_size);
        let cells: Vec<Cell> = (0..3)
            .map(|i| Cell {
                label: format!("cell{i}"),
                table: table.clone(),
                sdet: cfg.clone(),
                machine: machine.clone(),
            })
            .collect();
        let direct = measure(&kernel, &table, &machine, &cfg, 3);
        for jobs in [1, 4] {
            let out = measure_cells(&kernel, &cells, 3, jobs);
            assert_eq!(out.len(), 3);
            for t in &out {
                assert_eq!(t.runs, direct.runs, "jobs={jobs}");
                assert_eq!(t.mean, direct.mean, "jobs={jobs}");
            }
        }
    }
}
