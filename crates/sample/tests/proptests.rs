//! Property tests for sampling and Code Concurrency: symmetry, interval
//! locality, monotonicity, and sampler grid correctness.

use proptest::prelude::*;
use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::source::SourceLine;
use slopt_sample::{
    concurrency_map, concurrency_map_naive, concurrency_map_reference, read_shard,
    shard_concurrency, write_shards, ConcurrencyConfig, Sample, Sampler, SamplerConfig,
    StreamingConcurrency, WindowedConcurrency,
};
use slopt_sim::{CpuId, Observer};
use std::sync::atomic::{AtomicUsize, Ordering};

fn mk_sample(cpu: u16, time: u64, line: u32) -> Sample {
    Sample {
        cpu: CpuId(cpu),
        time,
        func: FuncId(0),
        block: BlockId(0),
        line: SourceLine(line),
    }
}

/// A fresh per-case temp directory (proptest runs many cases; each needs
/// its own shard directory).
fn case_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slopt_prop_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    /// CC is symmetric and non-negative for any sample set.
    #[test]
    fn concurrency_is_symmetric(
        samples in prop::collection::vec((0u16..4, 0u64..10_000, 0u32..6), 0..120),
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 1_000 });
        for a in 0..6u32 {
            for b in 0..6u32 {
                prop_assert_eq!(
                    cm.get(SourceLine(a), SourceLine(b)),
                    cm.get(SourceLine(b), SourceLine(a))
                );
            }
        }
        for (_, _, cc) in cm.pairs() {
            prop_assert!(cc > 0);
        }
    }

    /// Shifting every sample by a whole number of intervals leaves the
    /// concurrency map unchanged (bucketing is translation-invariant).
    #[test]
    fn concurrency_is_translation_invariant(
        samples in prop::collection::vec((0u16..4, 0u64..5_000, 0u32..5), 0..80),
        k in 1u64..10,
    ) {
        let interval = 1_000u64;
        let base: Vec<Sample> =
            samples.iter().map(|&(c, t, l)| mk_sample(c, t, l)).collect();
        let shifted: Vec<Sample> = samples
            .iter()
            .map(|&(c, t, l)| mk_sample(c, t + k * interval, l))
            .collect();
        let cm1 = concurrency_map(&base, &ConcurrencyConfig { interval });
        let cm2 = concurrency_map(&shifted, &ConcurrencyConfig { interval });
        prop_assert_eq!(cm1.pairs(), cm2.pairs());
    }

    /// Adding samples never decreases any pair's concurrency (CC is
    /// monotone in its input).
    #[test]
    fn concurrency_is_monotone(
        samples in prop::collection::vec((0u16..3, 0u64..3_000, 0u32..4), 1..60),
        extra in (0u16..3, 0u64..3_000, 0u32..4),
    ) {
        let base: Vec<Sample> =
            samples.iter().map(|&(c, t, l)| mk_sample(c, t, l)).collect();
        let mut bigger = base.clone();
        bigger.push(mk_sample(extra.0, extra.1, extra.2));
        let cm1 = concurrency_map(&base, &ConcurrencyConfig { interval: 500 });
        let cm2 = concurrency_map(&bigger, &ConcurrencyConfig { interval: 500 });
        for (a, b, cc) in cm1.pairs() {
            prop_assert!(cm2.get(a, b) >= cc);
        }
    }

    /// The dense interned-tensor estimator equals the naive nested-map
    /// formula on arbitrary sample streams: same map, same interner, same
    /// sorted pair list, same point lookups.
    #[test]
    fn dense_concurrency_matches_naive(
        samples in prop::collection::vec((0u16..6, 0u64..20_000, 0u32..12), 0..250),
        interval_pick in 0usize..4,
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cfg = ConcurrencyConfig { interval: [1u64, 100, 1_000, 7_919][interval_pick] };
        let dense = concurrency_map(&samples, &cfg);
        let naive = concurrency_map_naive(&samples, &cfg);
        prop_assert_eq!(&dense, &naive);
        prop_assert_eq!(dense.pairs(), naive.pairs());
        prop_assert_eq!(dense.interned_pairs(), naive.interned_pairs());
        prop_assert_eq!(dense.interner(), naive.interner());
        for a in 0..12u32 {
            for b in 0..12u32 {
                prop_assert_eq!(
                    dense.get(SourceLine(a), SourceLine(b)),
                    naive.get(SourceLine(a), SourceLine(b))
                );
            }
        }
    }

    /// Interner ids are dense, sorted, and round-trip: id order equals
    /// source-line order, the invariant `cycle_loss_weighted` relies on to
    /// stay in id space.
    #[test]
    fn interner_ids_are_sorted_and_dense(
        samples in prop::collection::vec((0u16..4, 0u64..5_000, 0u32..40), 0..150),
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 1_000 });
        let it = cm.interner();
        let lines = it.lines();
        prop_assert!(lines.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        for (i, &l) in lines.iter().enumerate() {
            prop_assert_eq!(it.id(l), Some(slopt_sample::LineId(i as u32)));
            prop_assert_eq!(it.line(slopt_sample::LineId(i as u32)), l);
        }
    }

    /// The tentpole differential: streaming sharded ingestion — any shard
    /// size, any `jobs` fan-out — is bit-identical to both the batch
    /// dense estimator and the naive nested-map formula on the same
    /// samples. Covers the full triangle batch ≡ streamed ≡ naive.
    #[test]
    fn sharded_streaming_matches_batch_and_naive(
        samples in prop::collection::vec((0u16..6, 0u64..20_000, 0u32..12), 0..250),
        shard_size in 1usize..40,
        jobs in 1usize..6,
        interval_pick in 0usize..3,
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cfg = ConcurrencyConfig { interval: [100u64, 1_000, 7_919][interval_pick] };

        let dir = case_dir("stream");
        std::fs::create_dir_all(&dir).unwrap();
        let written = write_shards(&dir, &samples, shard_size).unwrap();
        prop_assert_eq!(written.len(), samples.len().div_ceil(shard_size));
        let (streamed, stats) = shard_concurrency(&dir, cfg, jobs).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(stats.samples as usize, samples.len());
        prop_assert_eq!(stats.shards_skipped, 0);

        let batch = concurrency_map(&samples, &cfg);
        let naive = concurrency_map_naive(&samples, &cfg);
        prop_assert_eq!(&streamed, &batch);
        prop_assert_eq!(streamed.pairs(), batch.pairs());
        prop_assert_eq!(streamed.interner(), batch.interner());
        prop_assert_eq!(&streamed, &naive);
    }

    /// In-memory streaming (no files): feeding samples one at a time, in
    /// any order, equals the batch estimator for any `jobs`.
    #[test]
    fn incremental_streaming_matches_batch(
        samples in prop::collection::vec((0u16..5, 0u64..10_000, 0u32..8), 0..150),
        jobs in 1usize..5,
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cfg = ConcurrencyConfig { interval: 500 };
        let mut stream = StreamingConcurrency::new(cfg);
        for s in &samples {
            stream.ingest(std::slice::from_ref(s));
        }
        prop_assert_eq!(stream.samples() as usize, samples.len());
        let streamed = stream.finish_jobs(jobs);
        let batch = concurrency_map(&samples, &cfg);
        prop_assert_eq!(&streamed, &batch);
    }

    /// Shard files round-trip: `write_shards` + `read_shard` reproduce
    /// the input samples exactly, time-sorted, partitioned into
    /// `shard_size` chunks.
    #[test]
    fn shard_files_round_trip(
        samples in prop::collection::vec((0u16..6, 0u64..50_000, 0u32..20), 0..200),
        shard_size in 1usize..64,
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let dir = case_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let written = write_shards(&dir, &samples, shard_size).unwrap();
        let mut sorted = samples.clone();
        sorted.sort_by_key(|s| s.time);
        let mut read_back = Vec::new();
        for path in &written {
            let chunk = read_shard(path).unwrap();
            prop_assert!(chunk.len() <= shard_size);
            read_back.extend(chunk);
        }
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(read_back.len(), sorted.len());
        for (a, b) in read_back.iter().zip(&sorted) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.cpu, b.cpu);
            prop_assert_eq!(a.line, b.line);
        }
    }

    /// The blocked threshold-decomposition kernel equals the retained
    /// flat-tensor reference pipeline on arbitrary streams, across line
    /// universes that straddle the kernel's lane width (8) and other
    /// non-multiple-of-tile shapes: identical map, interner and pair
    /// list, bit for bit.
    #[test]
    fn blocked_kernel_matches_reference_pipeline(
        samples in prop::collection::vec((0u16..6, 0u64..20_000, 0u32..0xFFFF), 0..250),
        lines_pick in 0usize..8,
        interval_pick in 0usize..3,
    ) {
        // Fold the raw line numbers into a universe whose width sits on,
        // just under, or just over the ROW_LANES=8 tile edge (and one
        // far past it), so the lane remainder paths all run.
        let width = [1u32, 7, 8, 9, 15, 17, 63, 130][lines_pick];
        let samples: Vec<Sample> = samples
            .into_iter()
            .map(|(c, t, l)| mk_sample(c, t, l % width))
            .collect();
        let cfg = ConcurrencyConfig { interval: [100u64, 1_000, 7_919][interval_pick] };
        let blocked = concurrency_map(&samples, &cfg);
        let reference = concurrency_map_reference(&samples, &cfg);
        prop_assert_eq!(&blocked, &reference);
        prop_assert_eq!(blocked.pairs(), reference.pairs());
        prop_assert_eq!(blocked.interner(), reference.interner());
    }

    /// The pairwise parallel accumulator merge equals the serial fold at
    /// every `jobs` fan-out that changes the reduction tree's shape
    /// (1 = the serial fold itself, then 2, 4 and 7 workers).
    #[test]
    fn pairwise_merge_matches_serial_fold_across_jobs(
        samples in prop::collection::vec((0u16..5, 0u64..40_000, 0u32..10), 1..300),
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        // interval 500 over a 40_000-cycle span: up to 80 interval
        // groups, so jobs ∈ {2, 4, 7} all get non-trivial trees.
        let cfg = ConcurrencyConfig { interval: 500 };
        let mut serial = StreamingConcurrency::new(cfg);
        serial.ingest(&samples);
        let serial_map = serial.finish_jobs(1);
        for jobs in [2usize, 4, 7] {
            let mut stream = StreamingConcurrency::new(cfg);
            stream.ingest(&samples);
            let got = stream.finish_jobs(jobs);
            prop_assert_eq!(&got, &serial_map, "jobs={}", jobs);
        }
    }

    /// The sampler emits exactly the grid points covered by the observed
    /// execution ranges (no jitter, no loss), in increasing per-CPU order.
    #[test]
    fn sampler_covers_execution_exactly(
        segments in prop::collection::vec((1u64..50, 0u32..5), 1..30),
        period in 10u64..200,
    ) {
        let cfg = SamplerConfig {
            period,
            max_phase_jitter: 0,
            loss_probability: 0.0,
            seed: 0,
        };
        let mut sampler = Sampler::new(1, cfg);
        let mut t = 0u64;
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for &(len, line) in &segments {
            sampler.on_block(CpuId(0), FuncId(0), BlockId(0), SourceLine(line), t, t + len);
            covered.push((t, t + len));
            t += len;
        }
        // Expected samples: multiples of `period` inside [period, t).
        let expected: Vec<u64> = (1..)
            .map(|i| i * period)
            .take_while(|&s| s < t)
            .collect();
        let actual: Vec<u64> = sampler.samples().iter().map(|s| s.time).collect();
        prop_assert_eq!(actual, expected);
        prop_assert_eq!(sampler.dropped(), 0);
    }
}

proptest! {
    /// The windowed decaying fold retains *exactly* the samples whose
    /// interval lies in the final window — however the stream was
    /// chunked, and in whatever order the chunks arrived. Its
    /// concurrency map is bit-identical to the batch map over those
    /// retained samples at any `--jobs` (the serve daemon's correctness
    /// contract, DESIGN.md §17).
    #[test]
    fn windowed_fold_matches_batch_over_retained_samples(
        samples in prop::collection::vec((0u16..4, 0u64..40_000, 0u32..6), 0..150),
        window in 1u64..9,
        chunk in 1usize..17,
    ) {
        let interval = 1_000u64;
        let cfg = ConcurrencyConfig { interval };
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();

        let mut win = WindowedConcurrency::new(cfg, window);
        for part in samples.chunks(chunk) {
            win.ingest(part);
        }

        prop_assert_eq!(win.window_range().is_none(), samples.is_empty());
        let (lo, hi) = win.window_range().unwrap_or((0, 0));
        // The newest interval ever seen anchors the final window: a
        // late-dropped sample is strictly older than some earlier
        // newest, so it can never be the maximum.
        let n = samples.iter().map(|s| s.time / interval).max().unwrap_or(0);
        prop_assert_eq!(hi, n);
        prop_assert_eq!(lo, n.saturating_sub(window - 1));

        // Retained state == the batch fold over exactly the in-window
        // samples, independent of arrival order and chunking.
        let retained: Vec<Sample> = samples
            .iter()
            .filter(|s| {
                let idx = s.time / interval;
                idx >= lo && idx <= hi
            })
            .cloned()
            .collect();
        prop_assert_eq!(win.retained_samples(), retained.len() as u64);
        let batch = concurrency_map(&retained, &cfg);
        for jobs in [1usize, 2, 4] {
            prop_assert_eq!(
                win.concurrency_jobs(jobs).pairs(),
                batch.pairs(),
                "jobs={} must be bit-identical to the batch map",
                jobs
            );
        }

        // Order-independence of the retained cells: replaying the same
        // chunks in reverse order lands on the same final cells (the
        // counters may differ — only retained state is order-free).
        let mut rev = WindowedConcurrency::new(cfg, window);
        for part in samples.chunks(chunk).rev() {
            rev.ingest(part);
        }
        prop_assert_eq!(rev.cells_snapshot(), win.cells_snapshot());
    }
}
