//! Property tests for sampling and Code Concurrency: symmetry, interval
//! locality, monotonicity, and sampler grid correctness.

use proptest::prelude::*;
use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::source::SourceLine;
use slopt_sample::{
    concurrency_map, concurrency_map_naive, ConcurrencyConfig, Sample, Sampler, SamplerConfig,
};
use slopt_sim::{CpuId, Observer};

fn mk_sample(cpu: u16, time: u64, line: u32) -> Sample {
    Sample {
        cpu: CpuId(cpu),
        time,
        func: FuncId(0),
        block: BlockId(0),
        line: SourceLine(line),
    }
}

proptest! {
    /// CC is symmetric and non-negative for any sample set.
    #[test]
    fn concurrency_is_symmetric(
        samples in prop::collection::vec((0u16..4, 0u64..10_000, 0u32..6), 0..120),
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 1_000 });
        for a in 0..6u32 {
            for b in 0..6u32 {
                prop_assert_eq!(
                    cm.get(SourceLine(a), SourceLine(b)),
                    cm.get(SourceLine(b), SourceLine(a))
                );
            }
        }
        for (_, _, cc) in cm.pairs() {
            prop_assert!(cc > 0);
        }
    }

    /// Shifting every sample by a whole number of intervals leaves the
    /// concurrency map unchanged (bucketing is translation-invariant).
    #[test]
    fn concurrency_is_translation_invariant(
        samples in prop::collection::vec((0u16..4, 0u64..5_000, 0u32..5), 0..80),
        k in 1u64..10,
    ) {
        let interval = 1_000u64;
        let base: Vec<Sample> =
            samples.iter().map(|&(c, t, l)| mk_sample(c, t, l)).collect();
        let shifted: Vec<Sample> = samples
            .iter()
            .map(|&(c, t, l)| mk_sample(c, t + k * interval, l))
            .collect();
        let cm1 = concurrency_map(&base, &ConcurrencyConfig { interval });
        let cm2 = concurrency_map(&shifted, &ConcurrencyConfig { interval });
        prop_assert_eq!(cm1.pairs(), cm2.pairs());
    }

    /// Adding samples never decreases any pair's concurrency (CC is
    /// monotone in its input).
    #[test]
    fn concurrency_is_monotone(
        samples in prop::collection::vec((0u16..3, 0u64..3_000, 0u32..4), 1..60),
        extra in (0u16..3, 0u64..3_000, 0u32..4),
    ) {
        let base: Vec<Sample> =
            samples.iter().map(|&(c, t, l)| mk_sample(c, t, l)).collect();
        let mut bigger = base.clone();
        bigger.push(mk_sample(extra.0, extra.1, extra.2));
        let cm1 = concurrency_map(&base, &ConcurrencyConfig { interval: 500 });
        let cm2 = concurrency_map(&bigger, &ConcurrencyConfig { interval: 500 });
        for (a, b, cc) in cm1.pairs() {
            prop_assert!(cm2.get(a, b) >= cc);
        }
    }

    /// The dense interned-tensor estimator equals the naive nested-map
    /// formula on arbitrary sample streams: same map, same interner, same
    /// sorted pair list, same point lookups.
    #[test]
    fn dense_concurrency_matches_naive(
        samples in prop::collection::vec((0u16..6, 0u64..20_000, 0u32..12), 0..250),
        interval_pick in 0usize..4,
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cfg = ConcurrencyConfig { interval: [1u64, 100, 1_000, 7_919][interval_pick] };
        let dense = concurrency_map(&samples, &cfg);
        let naive = concurrency_map_naive(&samples, &cfg);
        prop_assert_eq!(&dense, &naive);
        prop_assert_eq!(dense.pairs(), naive.pairs());
        prop_assert_eq!(dense.interned_pairs(), naive.interned_pairs());
        prop_assert_eq!(dense.interner(), naive.interner());
        for a in 0..12u32 {
            for b in 0..12u32 {
                prop_assert_eq!(
                    dense.get(SourceLine(a), SourceLine(b)),
                    naive.get(SourceLine(a), SourceLine(b))
                );
            }
        }
    }

    /// Interner ids are dense, sorted, and round-trip: id order equals
    /// source-line order, the invariant `cycle_loss_weighted` relies on to
    /// stay in id space.
    #[test]
    fn interner_ids_are_sorted_and_dense(
        samples in prop::collection::vec((0u16..4, 0u64..5_000, 0u32..40), 0..150),
    ) {
        let samples: Vec<Sample> =
            samples.into_iter().map(|(c, t, l)| mk_sample(c, t, l)).collect();
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 1_000 });
        let it = cm.interner();
        let lines = it.lines();
        prop_assert!(lines.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        for (i, &l) in lines.iter().enumerate() {
            prop_assert_eq!(it.id(l), Some(slopt_sample::LineId(i as u32)));
            prop_assert_eq!(it.line(slopt_sample::LineId(i as u32)), l);
        }
    }

    /// The sampler emits exactly the grid points covered by the observed
    /// execution ranges (no jitter, no loss), in increasing per-CPU order.
    #[test]
    fn sampler_covers_execution_exactly(
        segments in prop::collection::vec((1u64..50, 0u32..5), 1..30),
        period in 10u64..200,
    ) {
        let cfg = SamplerConfig {
            period,
            max_phase_jitter: 0,
            loss_probability: 0.0,
            seed: 0,
        };
        let mut sampler = Sampler::new(1, cfg);
        let mut t = 0u64;
        let mut covered: Vec<(u64, u64)> = Vec::new();
        for &(len, line) in &segments {
            sampler.on_block(CpuId(0), FuncId(0), BlockId(0), SourceLine(line), t, t + len);
            covered.push((t, t + len));
            t += len;
        }
        // Expected samples: multiples of `period` inside [period, t).
        let expected: Vec<u64> = (1..)
            .map(|i| i * period)
            .take_while(|&s| s < t)
            .collect();
        let actual: Vec<u64> = sampler.samples().iter().map(|s| s.time).collect();
        prop_assert_eq!(actual, expected);
        prop_assert_eq!(sampler.dropped(), 0);
    }
}
