//! CycleLoss estimation (paper §3.2, final step of §4.3).
//!
//! Joins the [`ConcurrencyMap`] (source-line pairs → concurrency) with the
//! compiler's Field Mapping File (source line → fields accessed, with
//! read/write flags) to produce, for each pair of fields of a record, the
//! estimated penalty of placing them on the same cache line:
//!
//! ```text
//! CycleLoss(f1, f2) = Σ CC(B1, B2)
//! ```
//!
//! over all block pairs where `B1` accesses `f1`, `B2` accesses `f2`, and
//! at least one of those two accesses is a write. As the paper notes, this
//! over-approximates false sharing because it cannot distinguish structure
//! *instances*; see [`CycleLossMap`] docs for the alias-analysis hook.

use crate::concurrency::ConcurrencyMap;
use slopt_ir::fmf::{FieldMap, Rw};
use slopt_ir::types::{FieldIdx, RecordId};
use std::collections::HashMap;

/// Per-field-pair CycleLoss values for one record.
///
/// The paper's mitigation for the instance over-approximation — "whenever
/// alias analysis determines that the addresses of two structure instances
/// do not alias … there is no false sharing" — corresponds to filtering
/// the join with [`cycle_loss_filtered`].
#[derive(Clone, Debug)]
pub struct CycleLossMap {
    record: RecordId,
    map: HashMap<(u32, u32), f64>,
}

impl CycleLossMap {
    fn key(f1: FieldIdx, f2: FieldIdx) -> (u32, u32) {
        if f1.0 <= f2.0 {
            (f1.0, f2.0)
        } else {
            (f2.0, f1.0)
        }
    }

    /// The record this map describes.
    pub fn record(&self) -> RecordId {
        self.record
    }

    /// CycleLoss between two fields (0 if none; 0 for `f1 == f2` — a
    /// field contending with itself is true sharing, which no layout can
    /// fix).
    pub fn get(&self, f1: FieldIdx, f2: FieldIdx) -> f64 {
        if f1 == f2 {
            return 0.0;
        }
        self.map.get(&Self::key(f1, f2)).copied().unwrap_or(0.0)
    }

    /// All non-zero pairs as `(f1, f2, loss)` with `f1 < f2`, sorted by
    /// descending loss.
    pub fn pairs(&self) -> Vec<(FieldIdx, FieldIdx, f64)> {
        let mut v: Vec<_> = self
            .map
            .iter()
            .map(|(&(a, b), &l)| (FieldIdx(a), FieldIdx(b), l))
            .collect();
        v.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .expect("losses are never NaN")
                .then(x.0.cmp(&y.0))
                .then(x.1.cmp(&y.1))
        });
        v
    }

    /// Number of field pairs with non-zero loss.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no loss was estimated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes CycleLoss for `record` by joining concurrency with the FMF.
pub fn cycle_loss(cm: &ConcurrencyMap, fmf: &FieldMap, record: RecordId) -> CycleLossMap {
    cycle_loss_weighted(cm, fmf, record, |_, _, _, _| 1.0)
}

/// Like [`cycle_loss`], but only counts line pairs accepted by
/// `may_alias(l1, l2)` — the hook for the paper's alias-analysis
/// mitigation (return `false` when the instances accessed at the two lines
/// are known not to alias).
pub fn cycle_loss_filtered(
    cm: &ConcurrencyMap,
    fmf: &FieldMap,
    record: RecordId,
    may_alias: impl Fn(slopt_ir::source::SourceLine, slopt_ir::source::SourceLine) -> bool,
) -> CycleLossMap {
    cycle_loss_weighted(
        cm,
        fmf,
        record,
        |l1, _, l2, _| {
            if may_alias(l1, l2) {
                1.0
            } else {
                0.0
            }
        },
    )
}

/// The fully general join: each contribution of concurrency `cc` between
/// field `f1` accessed at line `l1` and field `f2` at line `l2` is scaled
/// by `weight(l1, f1, l2, f2)` before accumulating.
///
/// The weight function is where alias information enters: return the
/// probability that the two accesses touch the *same record instance*
/// (false sharing is only possible within one instance, because instances
/// are allocated cache-line-aligned). `1.0` reproduces the paper's
/// unmitigated over-approximation; `0.0` excludes provably disjoint
/// instance classes (e.g. two different CPUs' own per-CPU data);
/// intermediate values express pool-aliasing probabilities.
///
/// The join runs in interned-id space: the FMF is resolved once per
/// distinct line into a per-id field list (sorted by field index, so the
/// accumulation order is deterministic), and the pair loop indexes that
/// cache instead of re-querying line hash maps per pair.
pub fn cycle_loss_weighted(
    cm: &ConcurrencyMap,
    fmf: &FieldMap,
    record: RecordId,
    weight: impl Fn(
        slopt_ir::source::SourceLine,
        FieldIdx,
        slopt_ir::source::SourceLine,
        FieldIdx,
    ) -> f64,
) -> CycleLossMap {
    let interner = cm.interner();
    // Per interned line id: this record's fields at that line.
    let fields_per_id: Vec<Vec<(FieldIdx, Rw)>> = interner
        .lines()
        .iter()
        .map(|&l| {
            let mut v: Vec<(FieldIdx, Rw)> = fmf
                .fields_at(l)
                .filter(|&((r, _), _)| r == record)
                .map(|((_, f), rw)| (f, rw))
                .collect();
            v.sort_unstable_by_key(|&(f, _)| f.0);
            v
        })
        .collect();

    let mut out = CycleLossMap {
        record,
        map: HashMap::new(),
    };
    for (ia, ib, cc) in cm.interned_pairs() {
        let fa = &fields_per_id[ia.index()];
        let fb = &fields_per_id[ib.index()];
        if fa.is_empty() || fb.is_empty() {
            continue;
        }
        let (l1, l2) = (interner.line(ia), interner.line(ib));
        for &(f1, rw1) in fa {
            for &(f2, rw2) in fb {
                if f1 == f2 {
                    continue;
                }
                // Avoid double-counting the symmetric (f2, f1) visit when
                // both fields live on the same line pair: only take f1 < f2
                // for l1 == l2.
                if ia == ib && f1 >= f2 {
                    continue;
                }
                if !(rw1.has_write() || rw2.has_write()) {
                    continue;
                }
                let w = weight(l1, f1, l2, f2);
                debug_assert!((0.0..=1.0).contains(&w), "alias weight {w} outside [0, 1]");
                if w > 0.0 {
                    *out.map.entry(CycleLossMap::key(f1, f2)).or_insert(0.0) += cc as f64 * w;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::{concurrency_map, ConcurrencyConfig};
    use crate::sampler::Sample;
    use slopt_ir::builder::{FunctionBuilder, ProgramBuilder};
    use slopt_ir::cfg::{BlockId, FuncId, InstanceSlot, Program};
    use slopt_ir::source::SourceLine;
    use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType, TypeRegistry};
    use slopt_sim::CpuId;

    /// Program with two functions: `writer` writes f0 (line A), `reader`
    /// reads f1 (line B).
    fn program() -> (Program, RecordId, SourceLine, SourceLine) {
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![
                ("f0", FieldType::Prim(PrimType::U64)),
                ("f1", FieldType::Prim(PrimType::U64)),
                ("f2", FieldType::Prim(PrimType::U64)),
            ],
        ));
        let mut pb = ProgramBuilder::new(reg);
        let mut w = FunctionBuilder::new("writer");
        let w0 = w.add_block();
        w.write(w0, s, FieldIdx(0), InstanceSlot(0));
        let wid = pb.add(w, w0);
        let mut r = FunctionBuilder::new("reader");
        let r0 = r.add_block();
        r.read(r0, s, FieldIdx(1), InstanceSlot(0));
        let rid = pb.add(r, r0);
        let prog = pb.finish();
        let la = prog.function(wid).block(w0).line;
        let lb = prog.function(rid).block(r0).line;
        (prog, s, la, lb)
    }

    fn sample_at(cpu: u16, time: u64, line: SourceLine) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line,
        }
    }

    #[test]
    fn write_read_concurrency_becomes_loss() {
        let (prog, rec, la, lb) = program();
        let fmf = slopt_ir::fmf::FieldMap::build(&prog);
        let samples = vec![sample_at(0, 10, la), sample_at(1, 20, lb)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let loss = cycle_loss(&cm, &fmf, rec);
        assert_eq!(loss.get(FieldIdx(0), FieldIdx(1)), 1.0);
        assert_eq!(loss.get(FieldIdx(1), FieldIdx(0)), 1.0, "symmetric");
        assert_eq!(loss.get(FieldIdx(0), FieldIdx(2)), 0.0);
        assert_eq!(loss.record(), rec);
        assert_eq!(loss.len(), 1);
    }

    #[test]
    fn read_read_concurrency_is_free() {
        // Two readers of different fields: no write -> no loss.
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![
                ("f0", FieldType::Prim(PrimType::U64)),
                ("f1", FieldType::Prim(PrimType::U64)),
            ],
        ));
        let mut pb = ProgramBuilder::new(reg);
        let mut a = FunctionBuilder::new("ra");
        let a0 = a.add_block();
        a.read(a0, s, FieldIdx(0), InstanceSlot(0));
        let aid = pb.add(a, a0);
        let mut b = FunctionBuilder::new("rb");
        let b0 = b.add_block();
        b.read(b0, s, FieldIdx(1), InstanceSlot(0));
        let bid = pb.add(b, b0);
        let prog = pb.finish();
        let la = prog.function(aid).block(a0).line;
        let lb = prog.function(bid).block(b0).line;
        let fmf = slopt_ir::fmf::FieldMap::build(&prog);
        let samples = vec![sample_at(0, 10, la), sample_at(1, 20, lb)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let loss = cycle_loss(&cm, &fmf, s);
        assert!(loss.is_empty());
    }

    #[test]
    fn same_line_pair_counts_once() {
        // One block writes f0 and reads f1; two CPUs run it concurrently.
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![
                ("f0", FieldType::Prim(PrimType::U64)),
                ("f1", FieldType::Prim(PrimType::U64)),
            ],
        ));
        let mut pb = ProgramBuilder::new(reg);
        let mut f = FunctionBuilder::new("rw");
        let f0 = f.add_block();
        f.write(f0, s, FieldIdx(0), InstanceSlot(0));
        f.read(f0, s, FieldIdx(1), InstanceSlot(0));
        let fid = pb.add(f, f0);
        let prog = pb.finish();
        let line = prog.function(fid).block(f0).line;
        let fmf = slopt_ir::fmf::FieldMap::build(&prog);
        let samples = vec![sample_at(0, 10, line), sample_at(1, 20, line)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        // CC(line,line) = 2 (both cpu orders).
        assert_eq!(cm.get(line, line), 2);
        let loss = cycle_loss(&cm, &fmf, s);
        // Counted once per line pair, not twice.
        assert_eq!(loss.get(FieldIdx(0), FieldIdx(1)), 2.0);
    }

    #[test]
    fn alias_filter_suppresses_known_disjoint_instances() {
        let (prog, rec, la, lb) = program();
        let fmf = slopt_ir::fmf::FieldMap::build(&prog);
        let samples = vec![sample_at(0, 10, la), sample_at(1, 20, lb)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let loss = cycle_loss_filtered(&cm, &fmf, rec, |_, _| false);
        assert!(loss.is_empty());
    }

    #[test]
    fn pairs_sorted_by_loss() {
        let (prog, rec, la, lb) = program();
        let fmf = slopt_ir::fmf::FieldMap::build(&prog);
        // (la, lb) concurrent twice; also la concurrent with itself once
        // (two writers of f0 -> same field, ignored).
        let samples = vec![
            sample_at(0, 10, la),
            sample_at(1, 20, lb),
            sample_at(0, 110, la),
            sample_at(1, 120, lb),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let loss = cycle_loss(&cm, &fmf, rec);
        let pairs = loss.pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], (FieldIdx(0), FieldIdx(1), 2.0));
    }
}
