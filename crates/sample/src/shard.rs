//! Streaming sharded sample ingestion (`slopt-shard/1`).
//!
//! The batch pipeline materializes the whole sample trace in memory
//! before [`crate::concurrency_map`] buckets it — fine for the paper's
//! benchmarks, a non-starter for production-scale profiles (ROADMAP
//! "heavy traffic from millions of users"). This module bounds peak RSS
//! by spooling samples to fixed-size binary **shards** on disk and
//! folding them into the Code Concurrency estimate one shard at a time:
//!
//! * [`ShardSpool`] — an [`Observer`] that drains its [`Sampler`] to
//!   `shard-NNNNN.slshard` files every `shard_size` samples, so the
//!   in-memory buffer never exceeds one shard.
//! * [`ShardReader`] — scans a shard directory and yields each shard's
//!   samples, reporting malformed files as typed [`ShardError`]s instead
//!   of panicking.
//! * [`StreamingConcurrency`] — folds sample batches into **sorted
//!   runs** of packed `(interval, cpu, line) -> count` cells: batches
//!   append packed keys to a pending buffer, which is periodically
//!   sorted, run-length-encoded and linearly merge-added into one sorted
//!   run (an LSM-style compaction — no hashing on the ingest path, and
//!   memory proportional to *distinct* cells, not trace length).
//!   `finish_jobs` hands the sorted cells to the batch path's shared
//!   final fold (`cells_finish`), which fans per-interval kernels over
//!   workers and merges their triangular accumulators **pairwise** via
//!   `par_map` — bit-identical to [`crate::concurrency_map`] for every
//!   shard size and every `--jobs` (see DESIGN.md §11 and §13).
//! * [`WindowedConcurrency`] — the same fold generalized to a
//!   **sliding window** of ring-buffered intervals with exact eviction
//!   of expired intervals: the decaying live state of the `slopt-serve`
//!   daemon (see DESIGN.md §17).
//! * [`shard_concurrency_obs`] — the end-to-end fold over a directory:
//!   malformed, truncated or missing shards are *skipped*, counted in
//!   [`ShardIngestStats`] and as `warn.shard.*` counters, never a panic.
//!
//! ## On-disk format (`slopt-shard/1`)
//!
//! Little-endian throughout. A 32-byte header:
//!
//! ```text
//! magic    8 B   "SLSHARD1"
//! version  u32   1
//! count    u32   number of records
//! min_time u64   smallest record time
//! max_time u64   largest record time
//! ```
//!
//! followed by exactly `count` 24-byte records:
//!
//! ```text
//! time  u64 · cpu  u16 · pad  u16 (zero) · func u32 · block u32 · line u32
//! ```
//!
//! Records are non-decreasing in `time` and within
//! `[min_time, max_time]`; readers verify both plus the exact file
//! length, so truncation and corruption are detected structurally.

use crate::concurrency::{cells_finish, pack_cell_key, ConcurrencyConfig, ConcurrencyMap};
use crate::sampler::{Sample, Sampler, SamplerConfig};
use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::par::par_map;
use slopt_ir::source::SourceLine;
use slopt_obs::Obs;
use slopt_sim::{CpuId, Observer};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Shard format magic bytes.
pub const SHARD_MAGIC: [u8; 8] = *b"SLSHARD1";
/// Current shard format version.
pub const SHARD_VERSION: u32 = 1;
/// Header size in bytes.
const HEADER_LEN: usize = 32;
/// Record size in bytes.
const RECORD_LEN: usize = 24;
/// Shard file extension.
pub const SHARD_EXT: &str = "slshard";
/// Below this many total shard bytes, [`shard_concurrency_obs`] ingests
/// serially: record decoding is cheaper than worker fan-out plus sorted
/// run merges at that size (the quick `cc_stream` bench, ~1 MB of
/// shards, paid a 2× wall-clock penalty at `jobs = 4`). The clamp never
/// changes outputs — ingestion is chunking-independent.
pub const PARALLEL_INGEST_MIN_BYTES: u64 = 4 << 20;

/// Why a shard could not be ingested. Every variant is a *skip*, never a
/// panic: the fold continues with the remaining shards.
#[derive(Debug)]
pub enum ShardError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The first 8 bytes are not [`SHARD_MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// File length disagrees with the header's record count (truncated
    /// mid-write, or trailing garbage).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Record times decrease at this record index.
    OutOfOrder(usize),
    /// A record time falls outside the header's `[min_time, max_time]`.
    TimeBounds(usize),
}

impl ShardError {
    /// A stable short key for skip-reason counters
    /// (`warn.shard.skipped.<key>`).
    pub fn reason_key(&self) -> &'static str {
        match self {
            ShardError::Io(_) => "io",
            ShardError::BadMagic => "bad_magic",
            ShardError::BadVersion(_) => "bad_version",
            ShardError::Truncated { .. } => "truncated",
            ShardError::OutOfOrder(_) => "out_of_order",
            ShardError::TimeBounds(_) => "time_bounds",
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "io error: {e}"),
            ShardError::BadMagic => write!(f, "bad magic (not a slopt-shard/1 file)"),
            ShardError::BadVersion(v) => write!(f, "unsupported shard version {v}"),
            ShardError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated: header promises {expected} bytes, file has {actual}"
                )
            }
            ShardError::OutOfOrder(i) => write!(f, "record {i}: time decreases"),
            ShardError::TimeBounds(i) => {
                write!(f, "record {i}: time outside header min/max bounds")
            }
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// The canonical file name of shard `index`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.{SHARD_EXT}")
}

/// Serializes `samples` (non-decreasing in time) to an in-memory
/// `slopt-shard/1` image — the payload the network ingestion path ships
/// inside protocol frames. An empty slice encodes a valid zero-record
/// shard.
///
/// Returns `InvalidInput` if the samples are not sorted by time — the
/// format's bounds check depends on it, and every writer in this crate
/// sorts before calling.
pub fn encode_shard(samples: &[Sample]) -> io::Result<Vec<u8>> {
    if samples.windows(2).any(|w| w[1].time < w[0].time) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "shard samples must be sorted by time",
        ));
    }
    let (min_time, max_time) = match (samples.first(), samples.last()) {
        (Some(a), Some(b)) => (a.time, b.time),
        _ => (0, 0),
    };
    let mut buf = Vec::with_capacity(HEADER_LEN + RECORD_LEN * samples.len());
    buf.extend_from_slice(&SHARD_MAGIC);
    buf.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    buf.extend_from_slice(&(samples.len() as u32).to_le_bytes());
    buf.extend_from_slice(&min_time.to_le_bytes());
    buf.extend_from_slice(&max_time.to_le_bytes());
    for s in samples {
        buf.extend_from_slice(&s.time.to_le_bytes());
        buf.extend_from_slice(&s.cpu.0.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&s.func.0.to_le_bytes());
        buf.extend_from_slice(&s.block.0.to_le_bytes());
        buf.extend_from_slice(&s.line.0.to_le_bytes());
    }
    Ok(buf)
}

/// Serializes `samples` (non-decreasing in time) to `path` in
/// `slopt-shard/1` format via [`encode_shard`].
pub fn write_shard(path: &Path, samples: &[Sample]) -> io::Result<()> {
    let buf = encode_shard(samples)?;
    let mut f = fs::File::create(path)?;
    f.write_all(&buf)?;
    f.flush()
}

/// Splits `samples` into shards of at most `shard_size` records under
/// `dir` (created if missing), named `shard-00000.slshard` onward. The
/// input is sorted by time first (stably), so each shard satisfies the
/// format's ordering invariant; re-sorting never changes the Code
/// Concurrency result, which depends only on per-cell counts.
///
/// # Panics
///
/// Panics if `shard_size` is zero.
pub fn write_shards(dir: &Path, samples: &[Sample], shard_size: usize) -> io::Result<Vec<PathBuf>> {
    assert!(shard_size > 0, "shard size must be non-zero");
    fs::create_dir_all(dir)?;
    let mut sorted: Vec<Sample> = samples.to_vec();
    sorted.sort_by_key(|s| s.time);
    let mut paths = Vec::new();
    for (i, chunk) in sorted.chunks(shard_size).enumerate() {
        let path = dir.join(shard_file_name(i));
        write_shard(&path, chunk)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Deserializes one `slopt-shard/1` image (a file's contents or a
/// network frame payload), verifying magic, version, exact length, time
/// ordering and time bounds. Every failure is a typed [`ShardError`] —
/// torn or corrupted batches are detected structurally, never a panic.
pub fn decode_shard(bytes: &[u8]) -> Result<Vec<Sample>, ShardError> {
    if bytes.len() < HEADER_LEN {
        return Err(if bytes.get(..8).is_some_and(|m| m != SHARD_MAGIC) {
            ShardError::BadMagic
        } else {
            ShardError::Truncated {
                expected: HEADER_LEN,
                actual: bytes.len(),
            }
        });
    }
    if bytes[..8] != SHARD_MAGIC {
        return Err(ShardError::BadMagic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != SHARD_VERSION {
        return Err(ShardError::BadVersion(version));
    }
    let count = u32_at(12) as usize;
    let (min_time, max_time) = (u64_at(16), u64_at(24));
    let expected = HEADER_LEN + RECORD_LEN * count;
    if bytes.len() != expected {
        return Err(ShardError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }
    let mut samples = Vec::with_capacity(count);
    let mut prev_time = 0u64;
    for i in 0..count {
        let off = HEADER_LEN + RECORD_LEN * i;
        let time = u64_at(off);
        if i > 0 && time < prev_time {
            return Err(ShardError::OutOfOrder(i));
        }
        if count > 0 && !(min_time..=max_time).contains(&time) {
            return Err(ShardError::TimeBounds(i));
        }
        prev_time = time;
        let cpu = u16::from_le_bytes(bytes[off + 8..off + 10].try_into().unwrap());
        samples.push(Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(u32_at(off + 12)),
            block: BlockId(u32_at(off + 16)),
            line: SourceLine(u32_at(off + 20)),
        });
    }
    Ok(samples)
}

/// Reads and deserializes one shard file via [`decode_shard`].
pub fn read_shard(path: &Path) -> Result<Vec<Sample>, ShardError> {
    let bytes = fs::read(path)?;
    decode_shard(&bytes)
}

/// Iterates the shards of a directory in index order, yielding each
/// shard's path and parse result. Files not matching
/// `shard-NNNNN.slshard` are ignored; gaps in the numbering are counted
/// as [`missing`](ShardReader::missing) (a shard that was never written,
/// e.g. a crashed producer).
#[derive(Debug)]
pub struct ShardReader {
    found: Vec<(usize, PathBuf)>,
    pos: usize,
    missing: u64,
}

impl ShardReader {
    /// Scans `dir` for shard files. Fails only if the directory itself
    /// cannot be listed.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let mut found: Vec<(usize, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(idx) = name
                .strip_prefix("shard-")
                .and_then(|rest| rest.strip_suffix(&format!(".{SHARD_EXT}")))
                .and_then(|digits| digits.parse::<usize>().ok())
            else {
                continue;
            };
            found.push((idx, entry.path()));
        }
        found.sort();
        found.dedup_by_key(|(idx, _)| *idx);
        let missing = match found.last() {
            Some(&(last, _)) => (last + 1 - found.len()) as u64,
            None => 0,
        };
        Ok(ShardReader {
            found,
            pos: 0,
            missing,
        })
    }

    /// Number of shard files present.
    pub fn shard_count(&self) -> usize {
        self.found.len()
    }

    /// Number of index gaps below the highest shard index — shards that
    /// a producer numbered past but never wrote.
    pub fn missing(&self) -> u64 {
        self.missing
    }

    /// The shard paths in index order, without consuming the iterator.
    /// The parallel directory fold ([`shard_concurrency_obs`]) chunks
    /// this list over workers instead of iterating serially.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.found.iter().map(|(_, p)| p.clone()).collect()
    }
}

impl Iterator for ShardReader {
    type Item = (PathBuf, Result<Vec<Sample>, ShardError>);

    fn next(&mut self) -> Option<Self::Item> {
        let (_, path) = self.found.get(self.pos)?.clone();
        self.pos += 1;
        let result = read_shard(&path);
        Some((path, result))
    }
}

/// Ingestion outcome of one directory fold: how many shards contributed,
/// how many were skipped and why.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardIngestStats {
    /// Shards parsed and folded.
    pub shards_ok: u64,
    /// Shards skipped as malformed (see `skipped_by_reason`).
    pub shards_skipped: u64,
    /// Numbering gaps — shards that were never written.
    pub shards_missing: u64,
    /// Total samples folded from ok shards.
    pub samples: u64,
    /// Skip counts keyed by [`ShardError::reason_key`].
    pub skipped_by_reason: BTreeMap<&'static str, u64>,
}

impl ShardIngestStats {
    /// The one-line ingestion summary printed by CLI/bench consumers,
    /// e.g. `shards: 7 ok, 2 skipped (bad_magic:1 truncated:1), 1 missing,
    /// 35000 samples`.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "shards: {} ok, {} skipped",
            self.shards_ok, self.shards_skipped
        );
        if !self.skipped_by_reason.is_empty() {
            let reasons: Vec<String> = self
                .skipped_by_reason
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect();
            line.push_str(&format!(" ({})", reasons.join(" ")));
        }
        line.push_str(&format!(
            ", {} missing, {} samples",
            self.shards_missing, self.samples
        ));
        line
    }
}

/// Once the pending key buffer reaches this many entries (and at least
/// the sorted run's current length), it is compacted into the sorted
/// run. The floor keeps tiny batches from compacting constantly; the
/// `sorted.len()` coupling makes total compaction cost amortized
/// `O(n log n)` in ingested samples.
const PENDING_COMPACT_MIN: usize = 64 * 1024;

/// Bounded-memory Code Concurrency: folds sample batches into one
/// **sorted run** of packed `(interval, cpu, line) -> count` cells and
/// hands it to the batch path's shared final fold at
/// [`finish`](StreamingConcurrency::finish).
///
/// Ingestion appends packed `u128` keys to a pending buffer; when the
/// buffer grows past the sorted run's length it is sorted,
/// run-length-encoded and linearly merge-added into the run — an
/// LSM-style compaction with no hashing and sequential memory traffic.
/// Cell counts are exact `u64` sums, so the final run is independent of
/// how the trace was partitioned into batches (any shard size, any
/// ingestion order), and two folders over disjoint parts of a trace can
/// be [`merge`](StreamingConcurrency::merge)d without changing the
/// result — the basis of the parallel directory fold.
///
/// Peak memory is `O(distinct (interval, cpu, line) cells)` — for the
/// paper's parameters (~12 samples per CPU per interval over a few
/// hundred lines) orders of magnitude below the trace length — plus the
/// bounded pending buffer and one shard's samples during ingestion.
///
/// # Example
///
/// ```
/// use slopt_ir::cfg::{BlockId, FuncId};
/// use slopt_ir::source::SourceLine;
/// use slopt_sample::{ConcurrencyConfig, Sample, StreamingConcurrency};
/// use slopt_sim::CpuId;
///
/// let mk = |cpu: u16, time: u64, line: u32| Sample {
///     cpu: CpuId(cpu),
///     time,
///     func: FuncId(0),
///     block: BlockId(0),
///     line: SourceLine(line),
/// };
/// let mut stream = StreamingConcurrency::new(ConcurrencyConfig { interval: 100 });
/// stream.ingest(&[mk(0, 10, 1)]); // cpu 0 in line 1 ...
/// stream.ingest(&[mk(1, 20, 2)]); // ... cpu 1 in line 2, same interval
/// let map = stream.finish();
/// assert_eq!(map.get(SourceLine(1), SourceLine(2)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingConcurrency {
    cfg: ConcurrencyConfig,
    /// Sorted distinct packed cells (`pack_cell_key` order =
    /// `(interval, cpu, line)` order) with exact sample counts.
    sorted: Vec<(u128, u64)>,
    /// Raw packed keys not yet folded into `sorted`.
    pending: Vec<u128>,
    samples: u64,
}

impl StreamingConcurrency {
    /// An empty stream folder.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval` is zero.
    pub fn new(cfg: ConcurrencyConfig) -> Self {
        assert!(cfg.interval > 0, "interval must be non-zero");
        StreamingConcurrency {
            cfg,
            sorted: Vec::new(),
            pending: Vec::new(),
            samples: 0,
        }
    }

    /// Folds a batch of samples (any order) into the cell store. Cell
    /// increments commute, so any partition of the trace into batches —
    /// any shard size, any ingestion order — yields the same cell store.
    pub fn ingest(&mut self, samples: &[Sample]) {
        self.pending.extend(
            samples
                .iter()
                .map(|s| pack_cell_key(s.time / self.cfg.interval, s.cpu.0, s.line.0)),
        );
        self.samples += samples.len() as u64;
        if self.pending.len() >= PENDING_COMPACT_MIN.max(self.sorted.len()) {
            self.compact();
        }
    }

    /// Reads and folds one shard file.
    pub fn ingest_shard(&mut self, path: &Path) -> Result<usize, ShardError> {
        let samples = read_shard(path)?;
        self.ingest(&samples);
        Ok(samples.len())
    }

    /// Total samples folded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of occupied `(interval, cpu, line)` cells — the streaming
    /// path's working-set measure. Compacts pending keys first.
    pub fn cells(&mut self) -> usize {
        self.compact();
        self.sorted.len()
    }

    /// Folds `other` (a folder over a disjoint or overlapping part of
    /// the trace, same interval config) into `self`: one linear
    /// merge-add of the two sorted runs. Exact and commutative, so the
    /// parallel directory fold can ingest shard chunks independently and
    /// merge the partial folders in any order.
    ///
    /// # Panics
    ///
    /// Panics if the two folders were built with different interval
    /// lengths — their interval indices would not be comparable.
    pub fn merge(&mut self, mut other: StreamingConcurrency) {
        assert_eq!(
            self.cfg.interval, other.cfg.interval,
            "merge requires identical interval config"
        );
        self.compact();
        other.compact();
        let a = std::mem::take(&mut self.sorted);
        self.sorted = merge_sorted_runs(a, other.sorted);
        self.samples += other.samples;
    }

    /// Sorts + run-length-encodes the pending keys and merge-adds them
    /// into the sorted run.
    fn compact(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        let mut run: Vec<(u128, u64)> = Vec::new();
        for &key in &self.pending {
            match run.last_mut() {
                Some(last) if last.0 == key => last.1 += 1,
                _ => run.push((key, 1)),
            }
        }
        self.pending.clear();
        let a = std::mem::take(&mut self.sorted);
        self.sorted = merge_sorted_runs(a, run);
    }

    /// Serial [`finish_jobs`](StreamingConcurrency::finish_jobs).
    pub fn finish(self) -> ConcurrencyMap {
        self.finish_jobs(1)
    }

    /// Computes the final [`ConcurrencyMap`], fanning the per-interval
    /// min-sums out over up to `jobs` threads. Bit-identical to
    /// [`crate::concurrency_map`] on the union of all ingested samples,
    /// for every `jobs` value: the sorted cells go through the batch
    /// path's shared final fold, which partitions intervals into
    /// contiguous groups, replays each group through the blocked
    /// per-interval kernel into a private triangular accumulator, and
    /// reduces the accumulators pairwise by exact `u64` addition
    /// (commutative and associative, hence independent of grouping and
    /// merge order).
    pub fn finish_jobs(self, jobs: usize) -> ConcurrencyMap {
        self.finish_jobs_obs(jobs, &Obs::disabled())
    }

    /// [`finish_jobs`](StreamingConcurrency::finish_jobs) with
    /// instrumentation: a `cc_build` span plus the batch path's `cc.*`
    /// counters and streaming-specific `cc.stream_*` counters.
    pub fn finish_jobs_obs(mut self, jobs: usize, obs: &Obs) -> ConcurrencyMap {
        let _span = obs.span("cc_build");
        self.compact();
        if self.sorted.is_empty() {
            return ConcurrencyMap::empty();
        }
        let out = cells_finish(&self.sorted, jobs);
        if obs.enabled() {
            obs.counter("cc.samples_bucketed", self.samples);
            obs.counter("cc.lines", out.n_lines as u64);
            obs.counter("cc.cpus", out.n_cpus as u64);
            obs.counter("cc.intervals", out.n_intervals as u64);
            obs.counter("cc.pairs", out.map.len() as u64);
            obs.counter("cc.stream_cells", self.sorted.len() as u64);
            obs.counter("cc.stream_groups", out.groups as u64);
            obs.gauge(
                "cc.dense_accumulator",
                if out.dense_acc { 1.0 } else { 0.0 },
            );
        }
        out.map
    }
}

/// Linear merge-add of two key-sorted distinct runs: counts of equal
/// keys sum exactly, so the result is independent of which side a
/// sample landed on.
fn merge_sorted_runs(a: Vec<(u128, u64)>, b: Vec<(u128, u64)>) -> Vec<(u128, u64)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One interval's cells inside the window ring: a private LSM fold of
/// exactly the samples whose `time / interval` equals `interval`.
#[derive(Clone, Debug)]
struct IntervalFold {
    /// The interval index this slot currently holds.
    interval: u64,
    /// Sorted distinct packed cells of this interval.
    sorted: Vec<(u128, u64)>,
    /// Packed keys not yet folded into `sorted`.
    pending: Vec<u128>,
    /// Samples folded into this interval.
    samples: u64,
}

impl IntervalFold {
    fn new(interval: u64) -> IntervalFold {
        IntervalFold {
            interval,
            sorted: Vec::new(),
            pending: Vec::new(),
            samples: 0,
        }
    }

    fn compact(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        let mut run: Vec<(u128, u64)> = Vec::new();
        for &key in &self.pending {
            match run.last_mut() {
                Some(last) if last.0 == key => last.1 += 1,
                _ => run.push((key, 1)),
            }
        }
        self.pending.clear();
        let a = std::mem::take(&mut self.sorted);
        self.sorted = merge_sorted_runs(a, run);
    }
}

/// [`StreamingConcurrency`] generalized to a **sliding window of
/// intervals**: the decaying Code Concurrency state of a long-lived
/// collection service (`slopt-serve`), where old traffic must stop
/// influencing layout advice.
///
/// Samples fold into a ring of per-interval cell stores, one slot per
/// interval index modulo the window length `W`. The retained range is
/// always the `W` most recent intervals `(newest - W, newest]`; when a
/// sample advances `newest`, every slot whose interval falls out of the
/// range is **evicted exactly** — the slot holds precisely that
/// interval's cells, so eviction removes exactly the expired samples'
/// contribution, never an approximation. Samples older than the current
/// window at arrival are counted as [`late_dropped`] and never folded
/// (counted, not silent). `W = ∞` degenerates to
/// [`StreamingConcurrency`], whose single unbounded run this type
/// splits per interval.
///
/// Determinism: the retained state is a pure function of the *accepted*
/// sample multiset and the final `newest` interval — per-interval cell
/// counts are exact `u64` sums (batch-partitioning-independent, like
/// the unbounded fold), and eviction only ever removes whole intervals
/// below `newest - W + 1`. In particular, when an ingest sequence spans
/// at most `W` intervals, *every* interleaving of its batches accepts
/// every sample and converges to the same state — the basis of the
/// serve daemon's differential contract against an offline fold.
///
/// [`late_dropped`]: WindowedConcurrency::late_dropped
///
/// # Example
///
/// ```
/// use slopt_ir::cfg::{BlockId, FuncId};
/// use slopt_ir::source::SourceLine;
/// use slopt_sample::{ConcurrencyConfig, Sample, WindowedConcurrency};
/// use slopt_sim::CpuId;
///
/// let mk = |cpu: u16, time: u64, line: u32| Sample {
///     cpu: CpuId(cpu),
///     time,
///     func: FuncId(0),
///     block: BlockId(0),
///     line: SourceLine(line),
/// };
/// // Two intervals retained, 100 cycles each.
/// let mut win = WindowedConcurrency::new(ConcurrencyConfig { interval: 100 }, 2);
/// win.ingest(&[mk(0, 10, 1), mk(1, 20, 2)]); // interval 0
/// assert_eq!(win.concurrency_jobs(1).get(SourceLine(1), SourceLine(2)), 1);
/// win.ingest(&[mk(0, 250, 3)]); // interval 2 — interval 0 expires
/// assert_eq!(win.concurrency_jobs(1).get(SourceLine(1), SourceLine(2)), 0);
/// assert_eq!(win.evicted_samples(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedConcurrency {
    cfg: ConcurrencyConfig,
    window: u64,
    /// `window` slots; slot `i % window` holds interval `i` (or nothing).
    ring: Vec<Option<IntervalFold>>,
    /// Highest interval index accepted so far.
    newest: Option<u64>,
    accepted: u64,
    evicted: u64,
    late_dropped: u64,
}

impl WindowedConcurrency {
    /// An empty windowed folder retaining the `window` most recent
    /// intervals of `cfg.interval` cycles each.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval` or `window` is zero.
    pub fn new(cfg: ConcurrencyConfig, window: u64) -> Self {
        assert!(cfg.interval > 0, "interval must be non-zero");
        assert!(window > 0, "window must retain at least one interval");
        WindowedConcurrency {
            cfg,
            window,
            ring: vec![None; window as usize],
            newest: None,
            accepted: 0,
            evicted: 0,
            late_dropped: 0,
        }
    }

    /// The interval configuration the fold buckets by.
    pub fn config(&self) -> ConcurrencyConfig {
        self.cfg
    }

    /// Window length in intervals.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The retained interval range `[start, newest]`, or `None` before
    /// the first accepted sample.
    pub fn window_range(&self) -> Option<(u64, u64)> {
        self.newest.map(|n| (n.saturating_sub(self.window - 1), n))
    }

    /// Samples accepted (folded) so far, including since-evicted ones.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Samples removed by exact whole-interval eviction.
    pub fn evicted_samples(&self) -> u64 {
        self.evicted
    }

    /// Samples rejected on arrival because their interval had already
    /// slid out of the window.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Samples currently contributing to the window.
    pub fn retained_samples(&self) -> u64 {
        self.accepted - self.evicted
    }

    /// Folds a batch (any order, any batching — cell increments commute
    /// within the retained range). Returns how many of the batch's
    /// samples were late-dropped.
    pub fn ingest(&mut self, samples: &[Sample]) -> u64 {
        let before = self.late_dropped;
        for s in samples {
            let idx = s.time / self.cfg.interval;
            match self.newest {
                Some(newest) if idx <= newest => {
                    if idx < newest.saturating_sub(self.window - 1) {
                        self.late_dropped += 1;
                        continue;
                    }
                }
                Some(newest) => self.advance(newest, idx),
                None => self.newest = Some(idx),
            }
            let slot = &mut self.ring[(idx % self.window) as usize];
            let fold = slot.get_or_insert_with(|| IntervalFold::new(idx));
            debug_assert_eq!(fold.interval, idx, "slot must be evicted before reuse");
            fold.pending.push(pack_cell_key(idx, s.cpu.0, s.line.0));
            fold.samples += 1;
            self.accepted += 1;
            if fold.pending.len() >= PENDING_COMPACT_MIN.max(fold.sorted.len()) {
                fold.compact();
            }
        }
        self.late_dropped - before
    }

    /// Slides the window forward to `idx`, exactly evicting every slot
    /// whose interval falls below the new start. Only the ring positions
    /// the advance passes over can expire, so the sweep is
    /// `O(min(advance, window))`.
    fn advance(&mut self, newest: u64, idx: u64) {
        let start = idx.saturating_sub(self.window - 1);
        let first = (newest + 1).max(start);
        for k in first..=idx {
            if let Some(fold) = self.ring[(k % self.window) as usize].take() {
                debug_assert!(fold.interval < start, "only expired slots are swept");
                self.evicted += fold.samples;
            }
        }
        self.newest = Some(idx);
    }

    /// The window's sorted distinct cells — the live state an advice
    /// fingerprint hashes. Per-interval runs occupy disjoint key ranges
    /// (the interval index is the key's top bits), so concatenating the
    /// occupied slots in interval order *is* the globally sorted run.
    pub fn cells_snapshot(&mut self) -> Vec<(u128, u64)> {
        let mut slots: Vec<&mut IntervalFold> = self.ring.iter_mut().flatten().collect();
        slots.sort_by_key(|f| f.interval);
        let mut out = Vec::new();
        for fold in slots {
            fold.compact();
            out.extend_from_slice(&fold.sorted);
        }
        out
    }

    /// The Code Concurrency map of the live window, fanned over up to
    /// `jobs` threads. Bit-identical to [`crate::concurrency_map`] over
    /// exactly the retained samples, for every `jobs` value — the cells
    /// go through the same shared final fold as the batch and streaming
    /// paths.
    pub fn concurrency_jobs(&mut self, jobs: usize) -> ConcurrencyMap {
        let cells = self.cells_snapshot();
        if cells.is_empty() {
            return ConcurrencyMap::empty();
        }
        cells_finish(&cells, jobs).map
    }
}

/// Folds every readable shard under `dir` into a [`ConcurrencyMap`],
/// skipping malformed shards gracefully. Parallel (`jobs`) ingestion
/// and finish. Fails only if the directory cannot be listed.
pub fn shard_concurrency(
    dir: &Path,
    cfg: ConcurrencyConfig,
    jobs: usize,
) -> io::Result<(ConcurrencyMap, ShardIngestStats)> {
    shard_concurrency_obs(dir, cfg, jobs, &Obs::disabled())
}

/// [`shard_concurrency`] with instrumentation: wraps ingestion in a
/// `shard_ingest` span, emits `shard.{ok,samples,missing}` counters, and
/// records each skipped shard as a `warn.shard.skipped.<reason>` warning
/// so skip counts surface in `--stats` output.
///
/// Ingestion fans the shard list out as up to `jobs` contiguous chunks,
/// each folded by a private [`StreamingConcurrency`]; the partial
/// folders then [`merge`](StreamingConcurrency::merge) in index order.
/// Cell counts sum exactly, so the merged cell store — and hence the
/// final map, the stats and the warning order — are identical to the
/// serial fold's for every `jobs` value.
///
/// Shard sets smaller than [`PARALLEL_INGEST_MIN_BYTES`] in total ingest
/// serially: decoding a megabyte of records is cheaper than spawning
/// workers and merging their sorted runs, and the chunking-independence
/// argument above means the clamp cannot change any output.
pub fn shard_concurrency_obs(
    dir: &Path,
    cfg: ConcurrencyConfig,
    jobs: usize,
    obs: &Obs,
) -> io::Result<(ConcurrencyMap, ShardIngestStats)> {
    let mut stream = StreamingConcurrency::new(cfg);
    let mut stats = ShardIngestStats::default();
    {
        let _span = obs.span("shard_ingest");
        let reader = ShardReader::open(dir)?;
        stats.shards_missing = reader.missing();
        let paths = reader.paths();
        let total_bytes: u64 = paths
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        let jobs = if total_bytes < PARALLEL_INGEST_MIN_BYTES {
            1
        } else {
            jobs
        };
        let chunk_size = paths.len().div_ceil(jobs.max(1)).max(1);
        let chunks: Vec<&[PathBuf]> = paths.chunks(chunk_size).collect();
        type ChunkFold = (StreamingConcurrency, u64, u64, Vec<(PathBuf, ShardError)>);
        let partials: Vec<ChunkFold> = par_map(jobs, &chunks, |_, chunk| {
            let mut partial = StreamingConcurrency::new(cfg);
            let (mut ok, mut samples) = (0u64, 0u64);
            let mut skips: Vec<(PathBuf, ShardError)> = Vec::new();
            for path in *chunk {
                match partial.ingest_shard(path) {
                    Ok(n) => {
                        ok += 1;
                        samples += n as u64;
                    }
                    Err(err) => skips.push((path.clone(), err)),
                }
            }
            (partial, ok, samples, skips)
        });
        // Fold partials in chunk (= shard index) order: the merged cell
        // store is chunking-independent, and skip warnings replay in the
        // same order the serial fold would emit them.
        for (partial, ok, samples, skips) in partials {
            stream.merge(partial);
            stats.shards_ok += ok;
            stats.samples += samples;
            for (path, err) in skips {
                stats.shards_skipped += 1;
                *stats.skipped_by_reason.entry(err.reason_key()).or_insert(0) += 1;
                obs.warning(&format!("shard.skipped.{}", err.reason_key()));
                if obs.enabled() {
                    eprintln!("[shard] skipping {}: {err}", path.display());
                }
            }
        }
        if obs.enabled() {
            obs.counter("shard.ok", stats.shards_ok);
            obs.counter("shard.samples", stats.samples);
            if stats.shards_missing > 0 {
                obs.warning_n("shard.missing", stats.shards_missing);
            }
        }
    }
    Ok((stream.finish_jobs_obs(jobs, obs), stats))
}

/// An [`Observer`] that spools samples to shards as they are collected,
/// so a full trace never accumulates in memory: it owns a [`Sampler`]
/// and flushes its buffer to the next `shard-NNNNN.slshard` whenever it
/// reaches `shard_size` samples.
///
/// I/O errors cannot surface through the [`Observer`] trait, so the
/// first one is stashed and returned by
/// [`finish`](ShardSpool::finish) — later flushes are suppressed once an
/// error is pending.
#[derive(Debug)]
pub struct ShardSpool {
    sampler: Sampler,
    dir: PathBuf,
    shard_size: usize,
    next_index: usize,
    written: Vec<PathBuf>,
    error: Option<io::Error>,
}

impl ShardSpool {
    /// Creates the spool directory (if missing) and the underlying
    /// sampler.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero, or on the [`Sampler::new`]
    /// invariants.
    pub fn new(dir: &Path, cpus: usize, cfg: SamplerConfig, shard_size: usize) -> io::Result<Self> {
        assert!(shard_size > 0, "shard size must be non-zero");
        fs::create_dir_all(dir)?;
        Ok(ShardSpool {
            sampler: Sampler::new(cpus, cfg),
            dir: dir.to_path_buf(),
            shard_size,
            next_index: 0,
            written: Vec::new(),
            error: None,
        })
    }

    fn flush(&mut self) {
        let mut batch = self.sampler.drain_samples();
        if batch.is_empty() || self.error.is_some() {
            return;
        }
        // The sampler interleaves per-CPU streams in engine callback
        // order; the format wants time order within a shard.
        batch.sort_by_key(|s| s.time);
        let path = self.dir.join(shard_file_name(self.next_index));
        match write_shard(&path, &batch) {
            Ok(()) => {
                self.next_index += 1;
                self.written.push(path);
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Flushes the remaining buffer and returns the shard paths written
    /// plus the sampler's dropped-sample count, or the first I/O error
    /// hit while spooling.
    pub fn finish(mut self) -> io::Result<(Vec<PathBuf>, u64)> {
        self.flush();
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok((self.written, self.sampler.dropped()))
    }
}

impl Observer for ShardSpool {
    fn on_block(
        &mut self,
        cpu: CpuId,
        func: FuncId,
        block: BlockId,
        line: SourceLine,
        start: u64,
        end: u64,
    ) {
        self.sampler.on_block(cpu, func, block, line, start, end);
        if self.sampler.samples().len() >= self.shard_size {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::concurrency_map;

    fn sample(cpu: u16, time: u64, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slopt_shard_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mixed_trace(n: u64) -> Vec<Sample> {
        (0..n)
            .map(|i| sample((i % 5) as u16, (i * 37) % 1000, (i % 7) as u32))
            .collect()
    }

    #[test]
    fn shard_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut samples = mixed_trace(100);
        samples.sort_by_key(|s| s.time);
        let path = dir.join(shard_file_name(0));
        write_shard(&path, &samples).unwrap();
        assert_eq!(read_shard(&path).unwrap(), samples);
        // Zero-record shard is valid too.
        let empty = dir.join(shard_file_name(1));
        write_shard(&empty, &[]).unwrap();
        assert_eq!(read_shard(&empty).unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_rejects_unsorted() {
        let dir = temp_dir("unsorted");
        let samples = vec![sample(0, 100, 1), sample(0, 50, 2)];
        let err = write_shard(&dir.join("x.slshard"), &samples).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_detects_corruption() {
        let dir = temp_dir("corrupt");
        let mut samples = mixed_trace(10);
        samples.sort_by_key(|s| s.time);
        let path = dir.join(shard_file_name(0));
        write_shard(&path, &samples).unwrap();
        let good = fs::read(&path).unwrap();

        // Truncated mid-record.
        fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Truncated { .. })
        ));
        // Trailing garbage is also a length mismatch.
        let mut long = good.clone();
        long.extend_from_slice(&[0u8; 3]);
        fs::write(&path, &long).unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Truncated { .. })
        ));
        // Corrupt magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(read_shard(&path), Err(ShardError::BadMagic)));
        // Bad version.
        let mut bad = good.clone();
        bad[8] = 9;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(read_shard(&path), Err(ShardError::BadVersion(9))));
        // Out-of-order record times (swap two record time fields).
        let mut bad = good.clone();
        let (a, b) = (HEADER_LEN, HEADER_LEN + RECORD_LEN);
        for k in 0..8 {
            bad.swap(a + k, b + k);
        }
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::OutOfOrder(_)) | Err(ShardError::TimeBounds(_))
        ));
        // Empty file.
        fs::write(&path, b"").unwrap();
        assert!(matches!(
            read_shard(&path),
            Err(ShardError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_counts_numbering_gaps() {
        let dir = temp_dir("gaps");
        let mut samples = mixed_trace(10);
        samples.sort_by_key(|s| s.time);
        write_shard(&dir.join(shard_file_name(0)), &samples).unwrap();
        write_shard(&dir.join(shard_file_name(2)), &samples).unwrap();
        write_shard(&dir.join(shard_file_name(5)), &samples).unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let reader = ShardReader::open(&dir).unwrap();
        assert_eq!(reader.shard_count(), 3);
        assert_eq!(reader.missing(), 3, "indices 1, 3, 4 were never written");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_equals_batch_for_all_shardings_and_jobs() {
        let samples = mixed_trace(500);
        let cfg = ConcurrencyConfig { interval: 100 };
        let batch = concurrency_map(&samples, &cfg);
        for shard_size in [1, 7, 64, 500, 10_000] {
            for jobs in [1, 3, 8] {
                let mut stream = StreamingConcurrency::new(cfg);
                for chunk in samples.chunks(shard_size) {
                    stream.ingest(chunk);
                }
                let got = stream.finish_jobs(jobs);
                assert_eq!(
                    got, batch,
                    "shard_size={shard_size} jobs={jobs} must match batch"
                );
            }
        }
    }

    /// Scalar reference for the windowed acceptance rule: replays the
    /// stream one sample at a time, returning the accepted samples that
    /// survive to the final window plus the (late, evicted) counts.
    fn windowed_reference(
        samples: &[Sample],
        interval: u64,
        window: u64,
    ) -> (Vec<Sample>, u64, u64) {
        let mut newest: Option<u64> = None;
        let mut accepted: Vec<Sample> = Vec::new();
        let mut late = 0u64;
        for s in samples {
            let idx = s.time / interval;
            let n = newest.get_or_insert(idx);
            if idx + window <= (*n).max(idx) {
                // idx < max(newest, idx) - window + 1  (overflow-safe)
                late += 1;
                continue;
            }
            *n = (*n).max(idx);
            accepted.push(*s);
        }
        let (retained, evicted) = match newest {
            None => (Vec::new(), 0),
            Some(n) => {
                let start = n.saturating_sub(window - 1);
                let (keep, evict): (Vec<Sample>, Vec<Sample>) = accepted
                    .into_iter()
                    .partition(|s| s.time / interval >= start);
                (keep, evict.len() as u64)
            }
        };
        (retained, late, evicted)
    }

    #[test]
    fn windowed_equals_batch_over_retained_samples() {
        let samples = mixed_trace(600);
        let interval = 100u64;
        let cfg = ConcurrencyConfig { interval };
        for window in [1u64, 2, 3, 10] {
            for batch_size in [1usize, 7, 64, 600] {
                let mut win = WindowedConcurrency::new(cfg, window);
                for chunk in samples.chunks(batch_size) {
                    win.ingest(chunk);
                }
                let (retained, late, evicted) = windowed_reference(&samples, interval, window);
                assert_eq!(
                    win.late_dropped(),
                    late,
                    "window={window} batch={batch_size}"
                );
                assert_eq!(win.evicted_samples(), evicted);
                assert_eq!(win.retained_samples(), retained.len() as u64);
                for jobs in [1, 2, 4] {
                    assert_eq!(
                        win.clone().concurrency_jobs(jobs),
                        concurrency_map(&retained, &cfg),
                        "window={window} batch={batch_size} jobs={jobs}"
                    );
                }
            }
        }
    }

    #[test]
    fn windowed_eviction_is_exact_per_interval() {
        let cfg = ConcurrencyConfig { interval: 10 };
        let mut win = WindowedConcurrency::new(cfg, 2);
        // Intervals 0 and 1 in the window.
        win.ingest(&[sample(0, 5, 1), sample(1, 6, 2), sample(0, 15, 3)]);
        assert_eq!(win.window_range(), Some((0, 1)));
        assert_eq!(win.retained_samples(), 3);
        // Interval 3: interval 0 and 1 both expire (range becomes 2..=3).
        win.ingest(&[sample(1, 35, 4)]);
        assert_eq!(win.window_range(), Some((2, 3)));
        assert_eq!(win.evicted_samples(), 3);
        assert_eq!(win.retained_samples(), 1);
        // A sample from interval 1 is now late: counted, never folded.
        assert_eq!(win.ingest(&[sample(0, 16, 1)]), 1);
        assert_eq!(win.late_dropped(), 1);
        assert_eq!(win.retained_samples(), 1);
        // The surviving state equals a batch over exactly interval 3.
        assert_eq!(
            win.concurrency_jobs(1),
            concurrency_map(&[sample(1, 35, 4)], &cfg)
        );
    }

    #[test]
    fn windowed_unbounded_window_matches_streaming() {
        let samples = mixed_trace(400);
        let cfg = ConcurrencyConfig { interval: 100 };
        let mut stream = StreamingConcurrency::new(cfg);
        stream.ingest(&samples);
        // 1000 cycles / interval 100 = at most 10 intervals: a window of
        // 16 never evicts, so the generalization degenerates exactly.
        let mut win = WindowedConcurrency::new(cfg, 16);
        win.ingest(&samples);
        assert_eq!(win.late_dropped() + win.evicted_samples(), 0);
        assert_eq!(win.concurrency_jobs(2), stream.finish_jobs(2));
    }

    #[test]
    fn streaming_empty_is_empty() {
        let stream = StreamingConcurrency::new(ConcurrencyConfig { interval: 100 });
        assert_eq!(stream.finish(), ConcurrencyMap::empty());
    }

    #[test]
    fn shard_concurrency_skips_bad_shards() {
        let dir = temp_dir("fold");
        let samples = mixed_trace(300);
        write_shards(&dir, &samples, 100).unwrap();
        // Corrupt shard 1; the fold must use shards 0 and 2 only.
        let victim = dir.join(shard_file_name(1));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..20]).unwrap();

        let cfg = ConcurrencyConfig { interval: 100 };
        let (map, stats) = shard_concurrency(&dir, cfg, 2).unwrap();
        assert_eq!(stats.shards_ok, 2);
        assert_eq!(stats.shards_skipped, 1);
        assert_eq!(stats.skipped_by_reason.get("truncated"), Some(&1));
        assert_eq!(stats.samples, 200);

        // Equals the batch CC over exactly the surviving shards' samples.
        let mut survivors = Vec::new();
        survivors.extend(read_shard(&dir.join(shard_file_name(0))).unwrap());
        survivors.extend(read_shard(&dir.join(shard_file_name(2))).unwrap());
        assert_eq!(map, concurrency_map(&survivors, &cfg));
        assert!(stats.summary_line().contains("2 ok"));
        assert!(stats.summary_line().contains("truncated:1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_matches_batch_sampler() {
        use slopt_sim::Observer as _;
        let dir = temp_dir("spool");
        let cfg = SamplerConfig {
            period: 50,
            max_phase_jitter: 16,
            loss_probability: 0.0,
            seed: 7,
        };
        let mut batch = Sampler::new(4, cfg);
        let mut spool = ShardSpool::new(&dir, 4, cfg, 32).unwrap();
        for i in 0..200u64 {
            let cpu = CpuId((i % 4) as u16);
            let (start, end) = (i * 40, i * 40 + 120);
            let line = SourceLine((i % 9) as u32);
            batch.on_block(cpu, FuncId(0), BlockId(0), line, start, end);
            spool.on_block(cpu, FuncId(0), BlockId(0), line, start, end);
        }
        let (paths, dropped) = spool.finish().unwrap();
        assert!(paths.len() > 1, "should have spilled multiple shards");
        assert_eq!(dropped, 0);

        let cc_cfg = ConcurrencyConfig { interval: 500 };
        let (streamed, stats) = shard_concurrency(&dir, cc_cfg, 3).unwrap();
        assert_eq!(stats.shards_skipped, 0);
        assert_eq!(streamed, concurrency_map(batch.samples(), &cc_cfg));
        fs::remove_dir_all(&dir).unwrap();
    }
}
