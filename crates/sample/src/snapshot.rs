//! Versioned Code Concurrency snapshots (`slopt-ccsnap/1`).
//!
//! Checkpointed grid runs (see `slopt-bench`'s `--checkpoint-dir`)
//! persist the analysis' [`ConcurrencyMap`] next to the completed-cell
//! log, so a resumed run can verify it is continuing the *same*
//! analysis: a config or workload drift between the original and the
//! resuming invocation would silently change every remaining cell.
//! The round-trip is exact — all payload is integral (`u64` CC values,
//! `u32` line numbers) — so snapshot equality is plain `==`.
//!
//! ## On-disk format (`slopt-ccsnap/1`)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic    8 B   "SLCCSNP1"
//! version  u32   1
//! n_lines  u32   interned line count
//! lines    n_lines × u32, strictly ascending (interner order)
//! n_pairs  u32   non-zero pair count
//! pairs    n_pairs × (a u32, b u32, cc u64), a <= b < n_lines,
//!          strictly ascending by (a, b), cc > 0
//! ```

use crate::concurrency::{ConcurrencyMap, LineInterner};
use slopt_ir::source::SourceLine;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Snapshot format magic bytes.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SLCCSNP1";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(io::Error),
    /// Not a `slopt-ccsnap` file.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// File shorter or longer than its counts imply.
    Truncated {
        /// Bytes the counts promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Structurally well-formed but semantically invalid (unsorted
    /// lines, out-of-range pair ids, zero CC values, …).
    Invalid(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "bad magic (not a slopt-ccsnap/1 file)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated: counts promise {expected} bytes, file has {actual}"
                )
            }
            SnapshotError::Invalid(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Serializes `map` to `path`. The encoding is canonical (lines in
/// interner order, pairs sorted by ids), so equal maps produce
/// byte-identical files.
pub fn save_concurrency(path: &Path, map: &ConcurrencyMap) -> io::Result<()> {
    let lines = map.interner().lines();
    let mut pairs: Vec<(u32, u32, u64)> = map
        .interned_pairs()
        .into_iter()
        .map(|(a, b, cc)| (a.0, b.0, cc))
        .collect();
    pairs.sort_unstable();
    let mut buf = Vec::with_capacity(8 + 4 + 4 + 4 * lines.len() + 4 + 16 * pairs.len());
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(lines.len() as u32).to_le_bytes());
    for l in lines {
        buf.extend_from_slice(&l.0.to_le_bytes());
    }
    buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (a, b, cc) in pairs {
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
        buf.extend_from_slice(&cc.to_le_bytes());
    }
    let mut f = fs::File::create(path)?;
    f.write_all(&buf)?;
    f.flush()
}

/// Deserializes a snapshot, verifying magic, version, exact length and
/// the canonical-ordering invariants.
pub fn load_concurrency(path: &Path) -> Result<ConcurrencyMap, SnapshotError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 16 {
        return Err(if bytes.get(..8).is_some_and(|m| m != SNAPSHOT_MAGIC) {
            SnapshotError::BadMagic
        } else {
            SnapshotError::Truncated {
                expected: 16,
                actual: bytes.len(),
            }
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let n_lines = u32_at(12) as usize;
    let pairs_count_off = 16 + 4 * n_lines;
    if bytes.len() < pairs_count_off + 4 {
        return Err(SnapshotError::Truncated {
            expected: pairs_count_off + 4,
            actual: bytes.len(),
        });
    }
    let n_pairs = u32_at(pairs_count_off) as usize;
    let expected = pairs_count_off + 4 + 16 * n_pairs;
    if bytes.len() != expected {
        return Err(SnapshotError::Truncated {
            expected,
            actual: bytes.len(),
        });
    }

    let mut lines = Vec::with_capacity(n_lines);
    for i in 0..n_lines {
        lines.push(SourceLine(u32_at(16 + 4 * i)));
    }
    if lines.windows(2).any(|w| w[0] >= w[1]) {
        return Err(SnapshotError::Invalid("lines not strictly ascending"));
    }

    let mut map = HashMap::with_capacity(n_pairs);
    let mut prev: Option<(u32, u32)> = None;
    for i in 0..n_pairs {
        let off = pairs_count_off + 4 + 16 * i;
        let (a, b) = (u32_at(off), u32_at(off + 4));
        let cc = u64_at(off + 8);
        if a > b || (b as usize) >= n_lines {
            return Err(SnapshotError::Invalid("pair ids out of range"));
        }
        if cc == 0 {
            return Err(SnapshotError::Invalid("zero CC value"));
        }
        if prev.is_some_and(|p| p >= (a, b)) {
            return Err(SnapshotError::Invalid("pairs not strictly ascending"));
        }
        prev = Some((a, b));
        map.insert((a, b), cc);
    }

    let interner = LineInterner::from_lines(lines);
    Ok(ConcurrencyMap::from_parts(interner, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::{concurrency_map, ConcurrencyConfig};
    use crate::sampler::Sample;
    use slopt_ir::cfg::{BlockId, FuncId};
    use slopt_sim::CpuId;
    use std::path::PathBuf;

    fn temp_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("slopt_ccsnap_{}_{tag}.bin", std::process::id()))
    }

    fn mixed_map() -> ConcurrencyMap {
        let samples: Vec<Sample> = (0..300u64)
            .map(|i| Sample {
                cpu: CpuId((i % 5) as u16),
                time: (i * 37) % 1000,
                func: FuncId(0),
                block: BlockId(0),
                line: SourceLine((i % 7) as u32),
            })
            .collect();
        concurrency_map(&samples, &ConcurrencyConfig { interval: 100 })
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let map = mixed_map();
        assert!(!map.is_empty());
        let path = temp_file("roundtrip");
        save_concurrency(&path, &map).unwrap();
        assert_eq!(load_concurrency(&path).unwrap(), map);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_map_round_trips() {
        let path = temp_file("empty");
        save_concurrency(&path, &ConcurrencyMap::empty()).unwrap();
        assert_eq!(load_concurrency(&path).unwrap(), ConcurrencyMap::empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn canonical_encoding_is_byte_identical() {
        let (p1, p2) = (temp_file("canon1"), temp_file("canon2"));
        save_concurrency(&p1, &mixed_map()).unwrap();
        save_concurrency(&p2, &mixed_map()).unwrap();
        assert_eq!(fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        fs::remove_file(&p1).unwrap();
        fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn loader_rejects_corruption() {
        let path = temp_file("corrupt");
        save_concurrency(&path, &mixed_map()).unwrap();
        let good = fs::read(&path).unwrap();

        fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            load_concurrency(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut bad = good.clone();
        bad[2] ^= 0xFF;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_concurrency(&path),
            Err(SnapshotError::BadMagic)
        ));
        let mut bad = good.clone();
        bad[8] = 7;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_concurrency(&path),
            Err(SnapshotError::BadVersion(7))
        ));
        fs::remove_file(&path).unwrap();
    }
}
