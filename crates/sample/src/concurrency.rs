//! Code Concurrency (paper §3.2 and §4.2).
//!
//! Divide the run into fixed-size time intervals. Within interval `I`, let
//! `F_I(P, B)` be how often CPU `P` was observed in block `B` (from PMU
//! samples, or exact counts for validation). Then
//!
//! ```text
//! CC_I(Bi, Bj) = Σ_{Pm ≠ Pn} min(F_I(Pm, Bi), F_I(Pn, Bj))
//! CC(Bi, Bj)   = Σ_I CC_I(Bi, Bj)
//! ```
//!
//! A large `CC(Bi, Bj)` means: whenever some CPU executes `Bi`, some *other*
//! CPU is executing `Bj` at roughly the same time — the precondition for
//! false sharing between fields those blocks touch.
//!
//! Blocks are identified by their source lines (the sampled IP is resolved
//! through the source correlation table), so the result is a
//! [`ConcurrencyMap`] over source-line pairs, as in the paper's external
//! scripts.
//!
//! **Data layout.** Source lines, CPUs and intervals are interned into
//! dense ids once per run ([`LineInterner`]); the sample stream is
//! collapsed into sorted distinct `(interval, cpu, line) -> count` cells,
//! and each interval's min-sum runs through the blocked kernel
//! (`interval_minsum`): the identity `min(a, b) = Σ_t [a ≥ t][b ≥ t]`
//! rewrites the paper's cross-CPU min-sum as a sum of per-threshold outer
//! products over a dense per-line vector, minus small same-CPU
//! corrections. The outer products update contiguous triangular-row tails
//! in fixed-width lanes — multiply-adds LLVM auto-vectorizes, with no
//! hashing, no scatter and no per-element bounds checks on the hot path.
//! All contributions are exact `u64` adds, so the result is bit-identical
//! to the naive formulation (DESIGN.md §13 gives the derivation and the
//! measured numbers).
//!
//! Two earlier formulations are retained for differential testing and the
//! `perf_report` old-vs-new comparison: [`concurrency_map_reference`]
//! (the flat `[interval × cpu × line]` count-tensor pipeline this kernel
//! replaced) and [`concurrency_map_naive`] (triple-nested maps). All
//! three produce identical maps.

use crate::sampler::Sample;
use slopt_ir::par::par_map;
use slopt_ir::source::SourceLine;
use std::collections::HashMap;
use std::sync::Mutex;

/// Configuration for interval bucketing.
#[derive(Copy, Clone, Debug)]
pub struct ConcurrencyConfig {
    /// Interval length in cycles. The paper uses 1 ms wall time ≈ 1.2 M
    /// cycles at 1.2 GHz.
    pub interval: u64,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            interval: 1_200_000,
        }
    }
}

/// Dense id of an interned [`SourceLine`] (see [`LineInterner`]).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct LineId(pub u32);

impl LineId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns the distinct source lines of one run into dense `u32` ids.
///
/// Ids are assigned in ascending line order, so **id order equals line
/// order**: `id(a) < id(b) ⇔ a < b`. Downstream consumers
/// ([`crate::cycleloss`]) exploit this to work entirely on ids and only
/// resolve back to [`SourceLine`]s at the edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineInterner {
    /// Interned lines in ascending order; the index is the id.
    lines: Vec<SourceLine>,
    ids: HashMap<SourceLine, u32>,
}

impl LineInterner {
    /// Builds an interner over the distinct lines of an iterator.
    pub fn from_lines(iter: impl IntoIterator<Item = SourceLine>) -> Self {
        let mut lines: Vec<SourceLine> = iter.into_iter().collect();
        lines.sort_unstable();
        lines.dedup();
        let ids = lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        LineInterner { lines, ids }
    }

    /// The id of `line`, if it was interned.
    pub fn id(&self, line: SourceLine) -> Option<LineId> {
        self.ids.get(&line).copied().map(LineId)
    }

    /// The line behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn line(&self, id: LineId) -> SourceLine {
        self.lines[id.index()]
    }

    /// The interned lines in ascending order (index = id).
    pub fn lines(&self) -> &[SourceLine] {
        &self.lines
    }

    /// Number of interned lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Pairwise code-concurrency values over source lines.
///
/// Internally keyed by interned [`LineId`] pairs; the [`LineInterner`] is
/// carried along so consumers can stay in id space
/// ([`ConcurrencyMap::interned_pairs`]) or resolve to lines
/// ([`ConcurrencyMap::pairs`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConcurrencyMap {
    interner: LineInterner,
    /// Keys are normalized `(min_id, max_id)` — equivalently
    /// `(min_line, max_line)`, since id order equals line order.
    map: HashMap<(u32, u32), u64>,
}

impl ConcurrencyMap {
    /// Computes the map from samples — the dense hot path; alias of
    /// [`concurrency_map`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval` is zero.
    pub fn from_samples(samples: &[Sample], cfg: &ConcurrencyConfig) -> Self {
        concurrency_map(samples, cfg)
    }

    /// The canonical empty map: no interned lines, no pairs. This is what
    /// the estimator returns for an empty trace (and for any trace without
    /// cross-CPU overlap, e.g. a single-CPU or single-sample run).
    pub fn empty() -> Self {
        ConcurrencyMap::default()
    }

    /// Assembles a map from an interner and a normalized
    /// `(min_id, max_id) -> cc` pair map. Used by the streaming path
    /// ([`crate::shard`]) and the snapshot loader ([`crate::snapshot`]);
    /// callers must guarantee keys are normalized and non-zero.
    pub(crate) fn from_parts(interner: LineInterner, map: HashMap<(u32, u32), u64>) -> Self {
        debug_assert!(map.iter().all(|(&(a, b), &cc)| a <= b && cc > 0));
        ConcurrencyMap { interner, map }
    }

    /// The concurrency value for a pair of lines (0 if never concurrent).
    pub fn get(&self, a: SourceLine, b: SourceLine) -> u64 {
        let (Some(ia), Some(ib)) = (self.interner.id(a), self.interner.id(b)) else {
            return 0;
        };
        let key = if ia <= ib { (ia.0, ib.0) } else { (ib.0, ia.0) };
        self.map.get(&key).copied().unwrap_or(0)
    }

    /// The interner mapping this run's source lines to dense ids.
    pub fn interner(&self) -> &LineInterner {
        &self.interner
    }

    /// All non-zero pairs as `(id_a, id_b, cc)` with `id_a <= id_b`,
    /// sorted by descending concurrency (ties broken by ids — the same
    /// order as [`ConcurrencyMap::pairs`], since id order equals line
    /// order).
    pub fn interned_pairs(&self) -> Vec<(LineId, LineId, u64)> {
        let mut v: Vec<_> = self
            .map
            .iter()
            .map(|(&(a, b), &cc)| (LineId(a), LineId(b), cc))
            .collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        v
    }

    /// All non-zero pairs as `(line_a, line_b, cc)` with `line_a <= line_b`,
    /// sorted by descending concurrency (ties broken by line ids for
    /// determinism).
    pub fn pairs(&self) -> Vec<(SourceLine, SourceLine, u64)> {
        self.interned_pairs()
            .into_iter()
            .map(|(a, b, cc)| (self.interner.line(a), self.interner.line(b), cc))
            .collect()
    }

    /// The `k` most concurrent pairs.
    pub fn top_pairs(&self, k: usize) -> Vec<(SourceLine, SourceLine, u64)> {
        let mut v = self.pairs();
        v.truncate(k);
        v
    }

    /// Number of pairs with non-zero concurrency.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no concurrency was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Above this many distinct lines the per-interval min-sums accumulate
/// into a hash map instead of a dense triangular array (which would need
/// `lines²/2` words). Runs of the synthetic kernel have a few hundred
/// distinct lines, well below the limit.
const DENSE_ACCUMULATOR_LINE_LIMIT: usize = 2048;

/// Block length (in `u64` accumulator words) for the pairwise triangular
/// merge: a 32 KiB chunk of each side streams through L1 per step, and
/// `chunks_exact` gives LLVM a fixed trip count to vectorize without
/// bounds checks.
const MERGE_BLOCK: usize = 4096;

/// Lane width of the kernel's row-tail multiply-add loop. Eight `u64`
/// accumulators per block keeps the inner loop branch-free with a
/// compile-time trip count (bounds checks elided by `chunks_exact`),
/// which LLVM turns into packed multiply-add.
const ROW_LANES: usize = 8;

/// Per-pair min-sum accumulator shared by the batch path
/// ([`concurrency_map`]) and the streaming path
/// ([`crate::shard::StreamingConcurrency`]): a dense triangular `u64`
/// array when the line universe is small, a hash map beyond
/// ([`DENSE_ACCUMULATOR_LINE_LIMIT`]).
///
/// All contributions are exact `u64` additions, so accumulators over
/// disjoint interval sets can be [`merge`](CcAccumulator::merge)d in any
/// order without changing the final map — the determinism argument for
/// the parallel shard merge (DESIGN.md §11 and §13).
#[derive(Clone, Debug)]
pub(crate) struct CcAccumulator {
    n_lines: usize,
    dense: bool,
    tri: Vec<u64>,
    sparse: HashMap<(u32, u32), u64>,
}

impl CcAccumulator {
    /// An empty accumulator over a universe of `n_lines` interned lines.
    pub(crate) fn new(n_lines: usize) -> Self {
        let dense = n_lines <= DENSE_ACCUMULATOR_LINE_LIMIT;
        CcAccumulator {
            n_lines,
            dense,
            tri: vec![
                0u64;
                if dense {
                    n_lines * (n_lines + 1) / 2
                } else {
                    0
                }
            ],
            sparse: HashMap::new(),
        }
    }

    /// Whether the dense triangular backing is in use.
    pub(crate) fn is_dense(&self) -> bool {
        self.dense
    }

    /// Triangular index of `(i <= j)` with diagonal: row `i` starts at
    /// `i*n - i*(i-1)/2 = i*(2n+1-i)/2`, offset `j - i`.
    #[inline]
    fn tri_idx(&self, i: usize, j: usize) -> usize {
        i * (2 * self.n_lines + 1 - i) / 2 + (j - i)
    }

    /// The dense triangular row of line `li`: one slot per `lj` in
    /// `li..n_lines`, starting at the diagonal. The kernel's row updates
    /// run over this contiguous tail. Dense mode only.
    #[inline]
    fn row_mut(&mut self, li: usize) -> &mut [u64] {
        debug_assert!(self.dense);
        let start = self.tri_idx(li, li);
        let len = self.n_lines - li;
        &mut self.tri[start..start + len]
    }

    /// Adds `v` to the normalized pair `(li <= lj)`.
    #[inline]
    pub(crate) fn add(&mut self, li: u32, lj: u32, v: u64) {
        debug_assert!(li <= lj);
        if self.dense {
            let idx = self.tri_idx(li as usize, lj as usize);
            self.tri[idx] += v;
        } else {
            *self.sparse.entry((li, lj)).or_insert(0) += v;
        }
    }

    /// Folds `other` (an accumulator over the same line universe) into
    /// `self` by elementwise addition. Exact and commutative, hence
    /// merge-order independent. The dense case streams both triangles in
    /// [`MERGE_BLOCK`]-word blocks so the adds stay cache-sequential and
    /// vectorizable.
    pub(crate) fn merge(&mut self, other: CcAccumulator) {
        debug_assert_eq!(self.n_lines, other.n_lines);
        debug_assert_eq!(self.dense, other.dense);
        if self.dense {
            let mut dst = self.tri.chunks_exact_mut(MERGE_BLOCK);
            let mut src = other.tri.chunks_exact(MERGE_BLOCK);
            for (db, sb) in (&mut dst).zip(&mut src) {
                for (d, &s) in db.iter_mut().zip(sb) {
                    *d += s;
                }
            }
            for (d, &s) in dst.into_remainder().iter_mut().zip(src.remainder().iter()) {
                *d += s;
            }
        } else {
            for (k, v) in other.sparse {
                *self.sparse.entry(k).or_insert(0) += v;
            }
        }
    }

    /// The final normalized pair map, dropping zero entries.
    pub(crate) fn into_map(self) -> HashMap<(u32, u32), u64> {
        if self.dense {
            let mut map = HashMap::new();
            for i in 0..self.n_lines {
                for j in i..self.n_lines {
                    let cc = self.tri[self.tri_idx(i, j)];
                    if cc > 0 {
                        map.insert((i as u32, j as u32), cc);
                    }
                }
            }
            map
        } else {
            let mut map = self.sparse;
            map.retain(|_, v| *v > 0);
            map
        }
    }
}

/// One occupied cell of a single interval in dense-id space:
/// `(cpu index, line id, sample count)`. A kernel invocation receives one
/// interval's cells sorted by `(cpu, line)`.
pub(crate) type Cell = (u32, u32, u64);

/// Packs a raw `(interval, cpu, line)` cell coordinate into one sortable
/// `u128` key: interval in bits 48.., cpu in 32..48, line in 0..32.
/// Sorting packed keys sorts cells by `(interval, cpu, line)`.
#[inline]
pub(crate) fn pack_cell_key(interval: u64, cpu: u16, line: u32) -> u128 {
    (u128::from(interval) << 48) | (u128::from(cpu) << 32) | u128::from(line)
}

/// Inverse of [`pack_cell_key`].
#[inline]
pub(crate) fn unpack_cell_key(key: u128) -> (u64, u16, u32) {
    ((key >> 48) as u64, (key >> 32) as u16, key as u32)
}

/// Reusable per-worker scratch for [`interval_minsum`], so the
/// per-interval loop allocates nothing.
pub(crate) struct MinsumScratch {
    /// Dense per-line vector: how many CPUs reach the current count
    /// threshold on each line (`A_t` in the derivation). Sized `n_lines`
    /// in dense mode, empty in sparse mode.
    at: Vec<u32>,
    /// This interval's cells with `count >= 2`, sorted by descending
    /// count, so each threshold round scans a shrinking prefix.
    multi: Vec<(u32, u64)>,
    /// Lines present at the current threshold (sorted, deduplicated).
    touched: Vec<u32>,
    /// Per-CPU lane boundaries within the interval's cell slice.
    lanes: Vec<(u32, u32)>,
}

impl MinsumScratch {
    pub(crate) fn new(n_lines: usize, dense: bool) -> Self {
        MinsumScratch {
            at: vec![0u32; if dense { n_lines } else { 0 }],
            multi: Vec::new(),
            touched: Vec::new(),
            lanes: Vec::new(),
        }
    }
}

/// Accumulates one interval's `Σ_{Pm≠Pn} min(F_I(Pm,Bi), F_I(Pn,Bj))`
/// into `acc`, given the interval's occupied cells (sorted by
/// `(cpu, line)`, counts non-zero).
///
/// **The blocked kernel.** Expanding each min through
/// `min(a, b) = Σ_t [a ≥ t][b ≥ t]` and letting `A_t(B)` be the number
/// of CPUs whose count on line `B` reaches `t`:
///
/// ```text
/// CC_I(Bi, Bj) = Σ_t A_t(Bi)·A_t(Bj)  −  Σ_m min(F(Pm,Bi), F(Pm,Bj))
/// ```
///
/// The first term is a per-threshold outer product of one dense per-line
/// vector with itself: for every occupied row `li` the update
/// `row[lj] += A_t(li)·A_t(lj)` runs over the *contiguous* triangular
/// tail `lj >= li` in [`ROW_LANES`]-wide blocks — branch-free
/// multiply-adds with no per-element bounds checks, which LLVM
/// vectorizes. Threshold 1 covers every occupied line; higher thresholds
/// only touch cells with `count >= t` (rare under sampling) and shrink
/// geometrically. The second term subtracts the same-CPU diagonal —
/// pairs within one CPU's lane, a tiny scatter loop. Every contribution
/// is an exact `u64` add/subtract and, per cell, the additions dominate
/// the subtractions at every point of the schedule (Σ_t A_t(i)A_t(j) ≥
/// Σ_t B_t(i,j) termwise), so nothing underflows and the result is
/// bit-identical to the reference kernel for any evaluation order.
///
/// Sparse accumulators (line universe beyond
/// [`DENSE_ACCUMULATOR_LINE_LIMIT`]) take the compact two-pointer
/// cpu-pair path instead, which needs no dense per-line vector.
///
/// This is a pure function of the cell slice, which is what makes the
/// streaming path bit-identical to the batch path: both feed the same
/// per-interval cells through this one kernel.
pub(crate) fn interval_minsum(
    cells: &[Cell],
    n_lines: usize,
    scratch: &mut MinsumScratch,
    acc: &mut CcAccumulator,
) {
    debug_assert!(cells
        .windows(2)
        .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    if !acc.is_dense() {
        interval_minsum_sparse(cells, scratch, acc);
        return;
    }
    debug_assert_eq!(scratch.at.len(), n_lines);

    // Threshold t = 1: every occupied cell participates.
    scratch.multi.clear();
    for &(_, line, count) in cells {
        scratch.at[line as usize] += 1;
        if count >= 2 {
            scratch.multi.push((line, count));
        }
    }

    // A-phase, t = 1: dense rank-1 update of the triangle. `row` and the
    // vector tail are the same length by construction, so the lane loop
    // is pure multiply-add.
    let at = &mut scratch.at;
    for li in 0..n_lines {
        let ai = u64::from(at[li]);
        if ai == 0 {
            continue;
        }
        let row = acc.row_mut(li);
        let tail = &at[li..];
        let mut rch = row.chunks_exact_mut(ROW_LANES);
        let mut tch = tail.chunks_exact(ROW_LANES);
        for (rb, tb) in (&mut rch).zip(&mut tch) {
            for (r, &a) in rb.iter_mut().zip(tb) {
                *r += ai * u64::from(a);
            }
        }
        for (r, &a) in rch.into_remainder().iter_mut().zip(tch.remainder()) {
            *r += ai * u64::from(a);
        }
    }
    // Clear the t = 1 vector via the occupied cells (never a full sweep).
    for &(_, line, _) in cells {
        at[line as usize] = 0;
    }

    // A-phase, t >= 2: only cells with count >= t participate. Sorting by
    // descending count makes each round a prefix scan, so the total work
    // across all thresholds is bounded by the interval's sample count.
    scratch
        .multi
        .sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    let mut t = 2u64;
    loop {
        let len = scratch.multi.partition_point(|&(_, c)| c >= t);
        if len == 0 {
            break;
        }
        scratch.touched.clear();
        for &(line, _) in &scratch.multi[..len] {
            if at[line as usize] == 0 {
                scratch.touched.push(line);
            }
            at[line as usize] += 1;
        }
        scratch.touched.sort_unstable();
        for (idx, &li) in scratch.touched.iter().enumerate() {
            let ai = u64::from(at[li as usize]);
            for &lj in &scratch.touched[idx..] {
                acc.add(li, lj, ai * u64::from(at[lj as usize]));
            }
        }
        for &li in &scratch.touched {
            at[li as usize] = 0;
        }
        t += 1;
    }

    // B-phase: subtract the same-CPU diagonal Σ_m min(F(m,i), F(m,j)).
    // Within one CPU's lane the cells are line-ascending, so `lj >= li`
    // and the row offset is direct.
    let mut i = 0usize;
    while i < cells.len() {
        let cpu = cells[i].0;
        let mut j = i;
        while j < cells.len() && cells[j].0 == cpu {
            j += 1;
        }
        let lane = &cells[i..j];
        for (p, &(_, li, ci)) in lane.iter().enumerate() {
            let row = acc.row_mut(li as usize);
            for &(_, lj, cj) in &lane[p..] {
                row[(lj - li) as usize] -= ci.min(cj);
            }
        }
        i = j;
    }
}

/// The sparse-accumulator fallback of [`interval_minsum`]: the compact
/// cpu-pair formulation over per-CPU lanes with a monotone merge cursor
/// (no dense per-line vector, no triangle). Same exact arithmetic, same
/// result.
fn interval_minsum_sparse(cells: &[Cell], scratch: &mut MinsumScratch, acc: &mut CcAccumulator) {
    scratch.lanes.clear();
    let mut i = 0usize;
    while i < cells.len() {
        let cpu = cells[i].0;
        let mut j = i;
        while j < cells.len() && cells[j].0 == cpu {
            j += 1;
        }
        scratch.lanes.push((i as u32, j as u32));
        i = j;
    }
    for (a_idx, &(ms, me)) in scratch.lanes.iter().enumerate() {
        let lane_m = &cells[ms as usize..me as usize];
        for (b_idx, &(ns, ne)) in scratch.lanes.iter().enumerate() {
            if a_idx == b_idx {
                continue;
            }
            let lane_n = &cells[ns as usize..ne as usize];
            // Keep only li <= lj so the normalized key receives exactly
            // the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)); the cursor only
            // ever advances because li ascends within the lane.
            let mut from = 0usize;
            for &(_, li, ci) in lane_m {
                while from < lane_n.len() && lane_n[from].1 < li {
                    from += 1;
                }
                for &(_, lj, cj) in &lane_n[from..] {
                    acc.add(li, lj, ci.min(cj));
                }
            }
        }
    }
}

/// Below this many distinct cells the final fold stays serial: spawning
/// workers and merging their triangular accumulators dominates the fold
/// itself on small inputs. The quick `cc_stream` workload (~40k cells)
/// lands under the threshold; the full one (~570k cells) stays parallel.
pub(crate) const PARALLEL_FINISH_MIN_CELLS: usize = 1 << 17;

/// What [`cells_finish`] computed, for the callers' instrumentation.
pub(crate) struct CellsOutcome {
    /// The finished map.
    pub(crate) map: ConcurrencyMap,
    /// Distinct interned lines.
    pub(crate) n_lines: usize,
    /// Distinct CPUs.
    pub(crate) n_cpus: usize,
    /// Distinct intervals.
    pub(crate) n_intervals: usize,
    /// Interval groups fanned over workers.
    pub(crate) groups: usize,
    /// Whether the dense triangular accumulator was used.
    pub(crate) dense_acc: bool,
}

/// The shared final fold of both the batch and the streaming path: turns
/// sorted distinct `(packed cell key, count)` cells into the finished
/// [`ConcurrencyMap`], fanning per-interval kernels over up to `jobs`
/// workers and merging their triangular accumulators pairwise.
///
/// Bit-identical for every `jobs` value: intervals are partitioned into
/// contiguous groups, each group replays its intervals through
/// [`interval_minsum`] into a private accumulator, and accumulators merge
/// by exact `u64` addition (commutative and associative, hence
/// independent of grouping and merge order).
///
/// Folds smaller than [`PARALLEL_FINISH_MIN_CELLS`] run serially: thread
/// fan-out plus the pairwise accumulator merge cost more than the fold
/// itself on small inputs (the quick `cc_stream` bench regressed to a
/// 0.49× "speedup" at `jobs = 4`), and since grouping never changes the
/// result, clamping `jobs` is invisible outside wall-clock time.
pub(crate) fn cells_finish(cells: &[(u128, u64)], jobs: usize) -> CellsOutcome {
    debug_assert!(!cells.is_empty());
    debug_assert!(cells.windows(2).all(|w| w[0].0 < w[1].0));
    let jobs = if cells.len() < PARALLEL_FINISH_MIN_CELLS {
        1
    } else {
        jobs
    };

    // Intern lines and CPUs exactly as before: sorted distinct values.
    let interner = LineInterner::from_lines(
        cells
            .iter()
            .map(|&(key, _)| SourceLine(unpack_cell_key(key).2)),
    );
    let n_lines = interner.len();
    let mut cpus: Vec<u16> = cells
        .iter()
        .map(|&(key, _)| unpack_cell_key(key).1)
        .collect();
    cpus.sort_unstable();
    cpus.dedup();
    let n_cpus = cpus.len();

    // Translate to dense-id cells and record interval boundaries. Raw
    // key order equals dense-id order (both interners sort), so cells
    // stay sorted by (cpu, line) within each interval.
    let mut dense_cells: Vec<Cell> = Vec::with_capacity(cells.len());
    let mut interval_starts: Vec<usize> = Vec::new();
    let mut prev_interval = None;
    for &(key, count) in cells {
        let (interval, cpu, line) = unpack_cell_key(key);
        if prev_interval != Some(interval) {
            interval_starts.push(dense_cells.len());
            prev_interval = Some(interval);
        }
        let ci = cpus.binary_search(&cpu).expect("cpu interned") as u32;
        let li = interner.id(SourceLine(line)).expect("line interned").0;
        dense_cells.push((ci, li, count));
    }
    let n_intervals = interval_starts.len();

    // Contiguous interval ranges, one per worker group.
    let groups = jobs.max(1).min(n_intervals);
    let per_group = n_intervals.div_ceil(groups);
    let ranges: Vec<(usize, usize)> = (0..groups)
        .map(|g| (g * per_group, ((g + 1) * per_group).min(n_intervals)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();

    let accs: Vec<CcAccumulator> = par_map(jobs, &ranges, |_, &(ilo, ihi)| {
        let mut acc = CcAccumulator::new(n_lines);
        let mut scratch = MinsumScratch::new(n_lines, acc.is_dense());
        for t in ilo..ihi {
            let s = interval_starts[t];
            let e = interval_starts
                .get(t + 1)
                .copied()
                .unwrap_or(dense_cells.len());
            interval_minsum(&dense_cells[s..e], n_lines, &mut scratch, &mut acc);
        }
        acc
    });
    let groups = accs.len();

    let total = merge_accumulators(accs, jobs);
    let dense_acc = total.is_dense();
    let map = total.into_map();
    CellsOutcome {
        map: ConcurrencyMap::from_parts(interner, map),
        n_lines,
        n_cpus,
        n_intervals,
        groups,
        dense_acc,
    }
}

/// Reduces per-group accumulators to one by pairwise merging: each round
/// merges disjoint pairs in parallel (`par_map`), halving the list, so
/// the reduction's critical path is logarithmic instead of the serial
/// fold's linear chain. Merging is exact `u64` addition — commutative and
/// associative — so the tree shape never changes the result.
pub(crate) fn merge_accumulators(mut accs: Vec<CcAccumulator>, jobs: usize) -> CcAccumulator {
    assert!(!accs.is_empty(), "nothing to merge");
    while accs.len() > 1 {
        let odd = accs.len() % 2 == 1;
        let slots: Vec<Mutex<Option<CcAccumulator>>> =
            accs.into_iter().map(|a| Mutex::new(Some(a))).collect();
        let pair_count: Vec<usize> = (0..slots.len() / 2).collect();
        let mut merged: Vec<CcAccumulator> = par_map(jobs, &pair_count, |_, &k| {
            let mut a = slots[2 * k]
                .lock()
                .expect("accumulator slot")
                .take()
                .expect("left operand present");
            let b = slots[2 * k + 1]
                .lock()
                .expect("accumulator slot")
                .take()
                .expect("right operand present");
            a.merge(b);
            a
        });
        if odd {
            merged.push(
                slots
                    .last()
                    .expect("odd slot")
                    .lock()
                    .expect("accumulator slot")
                    .take()
                    .expect("odd operand present"),
            );
        }
        accs = merged;
    }
    accs.pop().expect("one accumulator remains")
}

/// Computes the concurrency map from samples.
///
/// Samples may be in any order. Each sample's `(interval, cpu, line)`
/// coordinate is packed into one sortable key; one sort plus a
/// run-length pass yields the sorted distinct cell list, which the
/// blocked per-interval kernel ([`interval_minsum`]) folds into the
/// triangular accumulator — the same cells-first pipeline the streaming
/// path uses, which is why the two are bit-identical by construction.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    concurrency_map_obs(samples, cfg, &slopt_obs::Obs::disabled())
}

/// [`concurrency_map`] with instrumentation: wraps the build in a
/// `cc_build` span and, when `obs` is enabled, flushes interner/cell
/// statistics as `cc.*` counters (samples bucketed, distinct lines, CPUs
/// and intervals, occupied cells, non-zero pairs, and whether the dense
/// triangular accumulator was used).
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map_obs(
    samples: &[Sample],
    cfg: &ConcurrencyConfig,
    obs: &slopt_obs::Obs,
) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");
    let _span = obs.span("cc_build");

    // An empty trace has no interval structure at all: return the
    // canonical empty map rather than running the interner/kernel
    // machinery on zero-length inputs (tests/edge_cases.rs pins this, and
    // the single-interval / single-CPU cases, down).
    if samples.is_empty() {
        return ConcurrencyMap::empty();
    }

    // Collapse the stream to sorted distinct cells: pack, sort,
    // run-length.
    let mut keys: Vec<u128> = samples
        .iter()
        .map(|s| pack_cell_key(s.time / cfg.interval, s.cpu.0, s.line.0))
        .collect();
    keys.sort_unstable();
    let mut cells: Vec<(u128, u64)> = Vec::new();
    for &key in &keys {
        match cells.last_mut() {
            Some(last) if last.0 == key => last.1 += 1,
            _ => cells.push((key, 1)),
        }
    }

    let out = cells_finish(&cells, 1);
    if obs.enabled() {
        obs.counter("cc.samples_bucketed", samples.len() as u64);
        obs.counter("cc.lines", out.n_lines as u64);
        obs.counter("cc.cpus", out.n_cpus as u64);
        obs.counter("cc.intervals", out.n_intervals as u64);
        obs.counter("cc.cells", cells.len() as u64);
        obs.counter("cc.pairs", out.map.len() as u64);
        obs.gauge(
            "cc.dense_accumulator",
            if out.dense_acc { 1.0 } else { 0.0 },
        );
        // Per-interval cost distribution: the kernel's work per interval
        // is quadratic in its occupied cells, so the histogram of cells
        // per interval is the profile that explains CC build time skew.
        // Cells are sorted by packed key, so one linear pass suffices;
        // values are workload-derived, hence deterministic at any --jobs.
        let mut run = 0u64;
        let mut current: Option<u64> = None;
        for &(key, _) in &cells {
            let interval = (key >> 48) as u64;
            match current {
                Some(t) if t == interval => run += 1,
                Some(_) => {
                    obs.histogram("cc.interval_cells", run);
                    current = Some(interval);
                    run = 1;
                }
                None => {
                    current = Some(interval);
                    run = 1;
                }
            }
        }
        if current.is_some() {
            obs.histogram("cc.interval_cells", run);
        }
    }
    out.map
}

/// Accumulates one interval's min-sum from its flat `[cpu × line]` count
/// block (`rows`, length `n_cpus * n_lines`) — the **retained reference
/// kernel** the blocked [`interval_minsum`] replaced. `touched` is
/// caller-provided scratch (one sorted touched-line list per CPU, cleared
/// here). Used by [`concurrency_map_reference`] and the kernel
/// equivalence tests; produces exactly the same accumulator contents as
/// the blocked kernel on the same interval.
pub(crate) fn interval_minsum_reference(
    rows: &[u64],
    n_cpus: usize,
    n_lines: usize,
    touched: &mut [Vec<u32>],
    acc: &mut CcAccumulator,
) {
    debug_assert_eq!(rows.len(), n_cpus * n_lines);
    debug_assert_eq!(touched.len(), n_cpus);
    for (ci, t) in touched.iter_mut().enumerate() {
        t.clear();
        let row = &rows[ci * n_lines..(ci + 1) * n_lines];
        t.extend(
            row.iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(li, _)| li as u32),
        );
    }
    for m in 0..n_cpus {
        let row_m = &rows[m * n_lines..(m + 1) * n_lines];
        for n in 0..n_cpus {
            if m == n {
                continue;
            }
            let row_n = &rows[n * n_lines..(n + 1) * n_lines];
            for &li in &touched[m] {
                let ci = row_m[li as usize];
                // Accumulate each ordered (line_i, line_j) pair once:
                // keep only li <= lj so the normalized key receives
                // exactly the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)).
                let from = touched[n].partition_point(|&lj| lj < li);
                for &lj in &touched[n][from..] {
                    acc.add(li, lj, ci.min(row_n[lj as usize]));
                }
            }
        }
    }
}

/// The flat count-tensor pipeline the blocked kernel replaced, retained
/// verbatim as the batch **reference implementation**: lines, CPUs and
/// intervals are interned, counts are bucketed into a flat
/// `[interval × cpu × line]` tensor, and each interval's block runs
/// through [`interval_minsum_reference`]. Used by the kernel-equivalence
/// property tests and by `perf_report`'s cc/cc_stream benches as the
/// frozen old-vs-new baseline. Produces a map equal to
/// [`concurrency_map`]'s, bit for bit.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map_reference(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");
    if samples.is_empty() {
        return ConcurrencyMap::empty();
    }

    let interner = LineInterner::from_lines(samples.iter().map(|s| s.line));
    let n_lines = interner.len();

    // Intern intervals and CPUs the same way: sorted distinct values.
    let mut intervals: Vec<u64> = samples.iter().map(|s| s.time / cfg.interval).collect();
    intervals.sort_unstable();
    intervals.dedup();
    let mut cpus: Vec<u16> = samples.iter().map(|s| s.cpu.0).collect();
    cpus.sort_unstable();
    cpus.dedup();
    let (n_intervals, n_cpus) = (intervals.len(), cpus.len());

    // The flat [interval × cpu × line] count tensor.
    let mut counts = vec![0u64; n_intervals * n_cpus * n_lines];
    for s in samples {
        let ti = intervals
            .binary_search(&(s.time / cfg.interval))
            .expect("interval interned");
        let ci = cpus.binary_search(&s.cpu.0).expect("cpu interned");
        let li = interner.id(s.line).expect("line interned").index();
        counts[(ti * n_cpus + ci) * n_lines + li] += 1;
    }

    let mut acc = CcAccumulator::new(n_lines);
    let mut touched: Vec<Vec<u32>> = vec![Vec::new(); n_cpus];
    for ti in 0..n_intervals {
        let base = ti * n_cpus * n_lines;
        let rows = &counts[base..base + n_cpus * n_lines];
        interval_minsum_reference(rows, n_cpus, n_lines, &mut touched, &mut acc);
    }

    ConcurrencyMap::from_parts(interner, acc.into_map())
}

/// The original triple-nested-map formulation, retained as the oldest
/// reference implementation: used by the equivalence property tests and
/// by `perf_report` to measure the rewrites against, on identical
/// inputs. Produces a map equal to [`concurrency_map`]'s.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map_naive(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");

    // interval index -> cpu -> line -> count
    let mut intervals: HashMap<u64, HashMap<u16, HashMap<SourceLine, u64>>> = HashMap::new();
    for s in samples {
        *intervals
            .entry(s.time / cfg.interval)
            .or_default()
            .entry(s.cpu.0)
            .or_default()
            .entry(s.line)
            .or_insert(0) += 1;
    }

    let interner = LineInterner::from_lines(samples.iter().map(|s| s.line));
    let mut map: HashMap<(u32, u32), u64> = HashMap::new();
    for per_cpu in intervals.values() {
        let cpus: Vec<&u16> = {
            let mut v: Vec<&u16> = per_cpu.keys().collect();
            v.sort();
            v
        };
        for &m in &cpus {
            for &n in &cpus {
                if m == n {
                    continue;
                }
                let hm = &per_cpu[m];
                let hn = &per_cpu[n];
                for (&li, &ci) in hm {
                    for (&lj, &cj) in hn {
                        // Accumulate each ordered (line_i, line_j) pair once:
                        // keep only li <= lj so the normalized key receives
                        // exactly the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)).
                        if li <= lj {
                            let key = (
                                interner.id(li).expect("line interned").0,
                                interner.id(lj).expect("line interned").0,
                            );
                            *map.entry(key).or_insert(0) += ci.min(cj);
                        }
                    }
                }
            }
        }
    }
    map.retain(|_, v| *v > 0);
    ConcurrencyMap { interner, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::cfg::{BlockId, FuncId};
    use slopt_ir::interp::SplitMix64;
    use slopt_sim::CpuId;

    fn sample(cpu: u16, time: u64, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    #[test]
    fn concurrent_lines_on_different_cpus_score() {
        // Interval 100: cpu0 in line1 twice, cpu1 in line2 three times.
        let samples = vec![
            sample(0, 10, 1),
            sample(0, 20, 1),
            sample(1, 15, 2),
            sample(1, 25, 2),
            sample(1, 35, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        // Ordered pairs (0,1) and (1,0): min(2,3) + min(3,2)... only li<=lj
        // kept per ordered cpu pair: (m=0,n=1): (1,2) -> min(2,3)=2;
        // (m=1,n=0): (2,1) normalized li<=lj fails for (2,1), but (1,2) via
        // hm=cpu1{2},hn=cpu0{1} gives li=2 > lj=1 -> skipped. So CC = 2.
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
        assert_eq!(cm.get(SourceLine(2), SourceLine(1)), 2, "symmetric lookup");
    }

    #[test]
    fn same_cpu_never_scores() {
        let samples = vec![sample(0, 10, 1), sample(0, 20, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert!(cm.is_empty());
    }

    #[test]
    fn different_intervals_do_not_interact() {
        let samples = vec![sample(0, 10, 1), sample(1, 150, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 0);
    }

    #[test]
    fn same_line_concurrency_counts_both_directions() {
        // Both cpus in the same line: CC(B,B) = Σ_{m≠n} min(F(m,B),F(n,B))
        // = min(1,1) for (0,1) + min(1,1) for (1,0) = 2.
        let samples = vec![sample(0, 10, 5), sample(1, 20, 5)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(5), SourceLine(5)), 2);
    }

    #[test]
    fn accumulates_across_intervals() {
        let samples = vec![
            sample(0, 10, 1),
            sample(1, 20, 2),
            sample(0, 110, 1),
            sample(1, 120, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
    }

    #[test]
    fn min_caps_unbalanced_frequencies() {
        let mut samples = vec![sample(1, 15, 2)];
        for i in 0..10 {
            samples.push(sample(0, i, 1));
        }
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1, "min(10, 1) = 1");
    }

    #[test]
    fn three_cpus_pairwise() {
        // cpus 0,1,2 each once in lines 1,2,3 in one interval.
        let samples = vec![sample(0, 1, 1), sample(1, 2, 2), sample(2, 3, 3)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1);
        assert_eq!(cm.get(SourceLine(1), SourceLine(3)), 1);
        assert_eq!(cm.get(SourceLine(2), SourceLine(3)), 1);
        assert_eq!(cm.len(), 3);
    }

    #[test]
    fn top_pairs_sorts_by_concurrency() {
        let mut samples = Vec::new();
        // lines 1&2 concurrent twice, lines 1&3 once.
        for t in [10, 110] {
            samples.push(sample(0, t, 1));
            samples.push(sample(1, t + 5, 2));
        }
        samples.push(sample(0, 210, 1));
        samples.push(sample(1, 215, 3));
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let top = cm.top_pairs(1);
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].0, top[0].1), (SourceLine(1), SourceLine(2)));
        assert_eq!(top[0].2, 2);
        assert_eq!(cm.pairs().len(), 2);
    }

    #[test]
    fn dense_equals_naive_on_a_mixed_stream() {
        // A hand-rolled stream crossing intervals, cpus and lines.
        let mut samples = Vec::new();
        for i in 0..200u64 {
            samples.push(sample((i % 5) as u16, (i * 37) % 1000, (i % 7) as u32));
        }
        let cfg = ConcurrencyConfig { interval: 100 };
        let dense = concurrency_map(&samples, &cfg);
        let naive = concurrency_map_naive(&samples, &cfg);
        assert_eq!(dense, naive);
        assert_eq!(dense.pairs(), naive.pairs());
    }

    /// Deterministic random stream: `n` samples over the given universe.
    fn random_samples(n: usize, cpus: u16, lines: u32, span: u64, seed: u64) -> Vec<Sample> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                sample(
                    (rng.next_u64() % u64::from(cpus)) as u16,
                    rng.next_u64() % span,
                    (rng.next_u64() % u64::from(lines)) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn blocked_kernel_equals_reference_kernel_directly() {
        // Drive both kernels on the same per-interval inputs across random
        // shapes, including line counts straddling the ROW_LANES and
        // MERGE_BLOCK tile edges (1, 7, 8, 9, 63, 64, 65...).
        let mut rng = SplitMix64::new(0xB10C);
        for &n_lines in &[1usize, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 90, 128, 130] {
            for case in 0..4u64 {
                let n_cpus = 1 + (rng.next_u64() % 5) as usize;
                let density = 1 + (rng.next_u64() % 4);
                // Random [cpu × line] block with duplicate-heavy counts so
                // thresholds t >= 2 are exercised.
                let mut rows = vec![0u64; n_cpus * n_lines];
                let fills = (n_cpus * n_lines) as u64 * density / 3 + case;
                for _ in 0..fills {
                    let idx = (rng.next_u64() % (n_cpus * n_lines) as u64) as usize;
                    rows[idx] += 1 + rng.next_u64() % 3;
                }

                // Reference: the retained rows-based kernel.
                let mut ref_acc = CcAccumulator::new(n_lines);
                let mut touched: Vec<Vec<u32>> = vec![Vec::new(); n_cpus];
                interval_minsum_reference(&rows, n_cpus, n_lines, &mut touched, &mut ref_acc);

                // Blocked: the same block as sorted cells.
                let mut cells: Vec<Cell> = Vec::new();
                for (ci, chunk) in rows.chunks(n_lines).enumerate() {
                    for (li, &c) in chunk.iter().enumerate() {
                        if c > 0 {
                            cells.push((ci as u32, li as u32, c));
                        }
                    }
                }
                let mut acc = CcAccumulator::new(n_lines);
                let mut scratch = MinsumScratch::new(n_lines, acc.is_dense());
                interval_minsum(&cells, n_lines, &mut scratch, &mut acc);

                assert_eq!(
                    acc.into_map(),
                    ref_acc.into_map(),
                    "kernel divergence at n_lines={n_lines} n_cpus={n_cpus} case={case}"
                );
            }
        }
    }

    #[test]
    fn new_pipeline_equals_reference_pipeline_on_random_streams() {
        for seed in 0..8u64 {
            let samples = random_samples(600, 6, 40, 2_000, 0x5EED + seed);
            let cfg = ConcurrencyConfig { interval: 250 };
            let new = concurrency_map(&samples, &cfg);
            let reference = concurrency_map_reference(&samples, &cfg);
            assert_eq!(new, reference, "pipeline divergence at seed {seed}");
        }
    }

    #[test]
    fn sparse_accumulator_fallback_equals_naive() {
        // A line universe past DENSE_ACCUMULATOR_LINE_LIMIT forces the
        // sparse two-pointer path; results must not change.
        let mut samples = Vec::new();
        let mut rng = SplitMix64::new(0x5AB5);
        for _ in 0..400 {
            samples.push(sample(
                (rng.next_u64() % 4) as u16,
                rng.next_u64() % 500,
                (rng.next_u64() % 4_000) as u32,
            ));
        }
        // Pin the universe width above the dense limit regardless of rng.
        samples.push(sample(0, 10, 3_500));
        samples.push(sample(1, 12, 0));
        let cfg = ConcurrencyConfig { interval: 100 };
        let cm = concurrency_map(&samples, &cfg);
        assert!(cm.interner().len() > 100, "universe should be wide");
        assert_eq!(cm, concurrency_map_naive(&samples, &cfg));
        assert_eq!(cm, concurrency_map_reference(&samples, &cfg));
    }

    #[test]
    fn pairwise_merge_matches_serial_fold() {
        // Build several accumulators and check the pairwise tree (at
        // various jobs) equals a serial left fold.
        for n_accs in [1usize, 2, 3, 5, 8] {
            let mut rng = SplitMix64::new(0xACC0 + n_accs as u64);
            let n_lines = 33; // not a multiple of any tile width
            let make = |rng: &mut SplitMix64| {
                let mut acc = CcAccumulator::new(n_lines);
                for _ in 0..50 {
                    let a = (rng.next_u64() % n_lines as u64) as u32;
                    let b = (rng.next_u64() % n_lines as u64) as u32;
                    let (li, lj) = if a <= b { (a, b) } else { (b, a) };
                    acc.add(li, lj, 1 + rng.next_u64() % 9);
                }
                acc
            };
            let accs: Vec<CcAccumulator> = (0..n_accs).map(|_| make(&mut rng)).collect();
            let mut serial = accs[0].clone();
            for a in &accs[1..] {
                serial.merge(a.clone());
            }
            for jobs in [1usize, 2, 4, 7] {
                let tree = merge_accumulators(accs.clone(), jobs);
                assert_eq!(
                    tree.into_map(),
                    serial.clone().into_map(),
                    "merge divergence at n_accs={n_accs} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn interner_round_trips_and_orders() {
        let samples = vec![sample(0, 1, 9), sample(1, 2, 3), sample(2, 3, 7)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let it = cm.interner();
        assert_eq!(it.len(), 3);
        assert_eq!(it.lines(), &[SourceLine(3), SourceLine(7), SourceLine(9)]);
        for (i, &l) in it.lines().iter().enumerate() {
            assert_eq!(it.id(l), Some(LineId(i as u32)));
            assert_eq!(it.line(LineId(i as u32)), l);
        }
        assert_eq!(it.id(SourceLine(1000)), None);
        // interned_pairs and pairs agree through the interner.
        for ((ia, ib, icc), (la, lb, lcc)) in cm.interned_pairs().iter().zip(cm.pairs().iter()) {
            assert_eq!(it.line(*ia), *la);
            assert_eq!(it.line(*ib), *lb);
            assert_eq!(icc, lcc);
        }
    }

    #[test]
    fn cell_key_round_trips() {
        for &(interval, cpu, line) in &[
            (0u64, 0u16, 0u32),
            (1, 2, 3),
            (u64::MAX >> 16, u16::MAX, u32::MAX),
            (123_456_789, 17, 42),
        ] {
            assert_eq!(
                unpack_cell_key(pack_cell_key(interval, cpu, line)),
                (interval, cpu, line)
            );
        }
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected() {
        concurrency_map(&[], &ConcurrencyConfig { interval: 0 });
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected_by_naive() {
        concurrency_map_naive(&[], &ConcurrencyConfig { interval: 0 });
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected_by_reference() {
        concurrency_map_reference(&[], &ConcurrencyConfig { interval: 0 });
    }
}
