//! Code Concurrency (paper §3.2 and §4.2).
//!
//! Divide the run into fixed-size time intervals. Within interval `I`, let
//! `F_I(P, B)` be how often CPU `P` was observed in block `B` (from PMU
//! samples, or exact counts for validation). Then
//!
//! ```text
//! CC_I(Bi, Bj) = Σ_{Pm ≠ Pn} min(F_I(Pm, Bi), F_I(Pn, Bj))
//! CC(Bi, Bj)   = Σ_I CC_I(Bi, Bj)
//! ```
//!
//! A large `CC(Bi, Bj)` means: whenever some CPU executes `Bi`, some *other*
//! CPU is executing `Bj` at roughly the same time — the precondition for
//! false sharing between fields those blocks touch.
//!
//! Blocks are identified by their source lines (the sampled IP is resolved
//! through the source correlation table), so the result is a
//! [`ConcurrencyMap`] over source-line pairs, as in the paper's external
//! scripts.

use crate::sampler::Sample;
use slopt_ir::source::SourceLine;
use std::collections::HashMap;

/// Configuration for interval bucketing.
#[derive(Copy, Clone, Debug)]
pub struct ConcurrencyConfig {
    /// Interval length in cycles. The paper uses 1 ms wall time ≈ 1.2 M
    /// cycles at 1.2 GHz.
    pub interval: u64,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            interval: 1_200_000,
        }
    }
}

/// Pairwise code-concurrency values over source lines.
#[derive(Clone, Debug, Default)]
pub struct ConcurrencyMap {
    /// Keys are normalized `(min_line, max_line)`.
    map: HashMap<(SourceLine, SourceLine), u64>,
}

impl ConcurrencyMap {
    fn key(a: SourceLine, b: SourceLine) -> (SourceLine, SourceLine) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The concurrency value for a pair of lines (0 if never concurrent).
    pub fn get(&self, a: SourceLine, b: SourceLine) -> u64 {
        self.map.get(&Self::key(a, b)).copied().unwrap_or(0)
    }

    /// All non-zero pairs as `(line_a, line_b, cc)` with `line_a <= line_b`,
    /// sorted by descending concurrency (ties broken by line ids for
    /// determinism).
    pub fn pairs(&self) -> Vec<(SourceLine, SourceLine, u64)> {
        let mut v: Vec<_> = self.map.iter().map(|(&(a, b), &cc)| (a, b, cc)).collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        v
    }

    /// The `k` most concurrent pairs.
    pub fn top_pairs(&self, k: usize) -> Vec<(SourceLine, SourceLine, u64)> {
        let mut v = self.pairs();
        v.truncate(k);
        v
    }

    /// Number of pairs with non-zero concurrency.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no concurrency was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes the concurrency map from samples.
///
/// Samples may be in any order. Complexity per interval is
/// `O(cpu_pairs × lines_per_cpu²)`, which with the paper's parameters
/// (~12 samples per CPU per interval) is small.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");

    // interval index -> cpu -> line -> count
    let mut intervals: HashMap<u64, HashMap<u16, HashMap<SourceLine, u64>>> = HashMap::new();
    for s in samples {
        *intervals
            .entry(s.time / cfg.interval)
            .or_default()
            .entry(s.cpu.0)
            .or_default()
            .entry(s.line)
            .or_insert(0) += 1;
    }

    let mut cm = ConcurrencyMap::default();
    for per_cpu in intervals.values() {
        let cpus: Vec<&u16> = {
            let mut v: Vec<&u16> = per_cpu.keys().collect();
            v.sort();
            v
        };
        for &m in &cpus {
            for &n in &cpus {
                if m == n {
                    continue;
                }
                let hm = &per_cpu[m];
                let hn = &per_cpu[n];
                for (&li, &ci) in hm {
                    for (&lj, &cj) in hn {
                        // Accumulate each ordered (line_i, line_j) pair once:
                        // keep only li <= lj so the normalized key receives
                        // exactly the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)).
                        if li <= lj {
                            *cm.map.entry((li, lj)).or_insert(0) += ci.min(cj);
                        }
                    }
                }
            }
        }
    }
    cm.map.retain(|_, v| *v > 0);
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::cfg::{BlockId, FuncId};
    use slopt_sim::CpuId;

    fn sample(cpu: u16, time: u64, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    #[test]
    fn concurrent_lines_on_different_cpus_score() {
        // Interval 100: cpu0 in line1 twice, cpu1 in line2 three times.
        let samples = vec![
            sample(0, 10, 1),
            sample(0, 20, 1),
            sample(1, 15, 2),
            sample(1, 25, 2),
            sample(1, 35, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        // Ordered pairs (0,1) and (1,0): min(2,3) + min(3,2)... only li<=lj
        // kept per ordered cpu pair: (m=0,n=1): (1,2) -> min(2,3)=2;
        // (m=1,n=0): (2,1) normalized li<=lj fails for (2,1), but (1,2) via
        // hm=cpu1{2},hn=cpu0{1} gives li=2 > lj=1 -> skipped. So CC = 2.
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
        assert_eq!(cm.get(SourceLine(2), SourceLine(1)), 2, "symmetric lookup");
    }

    #[test]
    fn same_cpu_never_scores() {
        let samples = vec![sample(0, 10, 1), sample(0, 20, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert!(cm.is_empty());
    }

    #[test]
    fn different_intervals_do_not_interact() {
        let samples = vec![sample(0, 10, 1), sample(1, 150, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 0);
    }

    #[test]
    fn same_line_concurrency_counts_both_directions() {
        // Both cpus in the same line: CC(B,B) = Σ_{m≠n} min(F(m,B),F(n,B))
        // = min(1,1) for (0,1) + min(1,1) for (1,0) = 2.
        let samples = vec![sample(0, 10, 5), sample(1, 20, 5)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(5), SourceLine(5)), 2);
    }

    #[test]
    fn accumulates_across_intervals() {
        let samples = vec![
            sample(0, 10, 1),
            sample(1, 20, 2),
            sample(0, 110, 1),
            sample(1, 120, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
    }

    #[test]
    fn min_caps_unbalanced_frequencies() {
        let mut samples = vec![sample(1, 15, 2)];
        for i in 0..10 {
            samples.push(sample(0, i, 1));
        }
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1, "min(10, 1) = 1");
    }

    #[test]
    fn three_cpus_pairwise() {
        // cpus 0,1,2 each once in lines 1,2,3 in one interval.
        let samples = vec![sample(0, 1, 1), sample(1, 2, 2), sample(2, 3, 3)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1);
        assert_eq!(cm.get(SourceLine(1), SourceLine(3)), 1);
        assert_eq!(cm.get(SourceLine(2), SourceLine(3)), 1);
        assert_eq!(cm.len(), 3);
    }

    #[test]
    fn top_pairs_sorts_by_concurrency() {
        let mut samples = Vec::new();
        // lines 1&2 concurrent twice, lines 1&3 once.
        for t in [10, 110] {
            samples.push(sample(0, t, 1));
            samples.push(sample(1, t + 5, 2));
        }
        samples.push(sample(0, 210, 1));
        samples.push(sample(1, 215, 3));
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let top = cm.top_pairs(1);
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].0, top[0].1), (SourceLine(1), SourceLine(2)));
        assert_eq!(top[0].2, 2);
        assert_eq!(cm.pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected() {
        concurrency_map(&[], &ConcurrencyConfig { interval: 0 });
    }
}
