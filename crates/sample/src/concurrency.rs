//! Code Concurrency (paper §3.2 and §4.2).
//!
//! Divide the run into fixed-size time intervals. Within interval `I`, let
//! `F_I(P, B)` be how often CPU `P` was observed in block `B` (from PMU
//! samples, or exact counts for validation). Then
//!
//! ```text
//! CC_I(Bi, Bj) = Σ_{Pm ≠ Pn} min(F_I(Pm, Bi), F_I(Pn, Bj))
//! CC(Bi, Bj)   = Σ_I CC_I(Bi, Bj)
//! ```
//!
//! A large `CC(Bi, Bj)` means: whenever some CPU executes `Bi`, some *other*
//! CPU is executing `Bj` at roughly the same time — the precondition for
//! false sharing between fields those blocks touch.
//!
//! Blocks are identified by their source lines (the sampled IP is resolved
//! through the source correlation table), so the result is a
//! [`ConcurrencyMap`] over source-line pairs, as in the paper's external
//! scripts.
//!
//! **Data layout.** Source lines, CPUs and intervals are interned into
//! dense ids once per run ([`LineInterner`]); the sample stream is then
//! bucketed into a flat `[interval × cpu × line]` count tensor and `CC_I`
//! is a min-sum over dense rows — no hashing in the inner loops. The
//! original triple-nested-map formulation is retained as
//! [`concurrency_map_naive`] for equivalence tests and the `perf_report`
//! old-vs-new comparison; both produce identical maps.

use crate::sampler::Sample;
use slopt_ir::source::SourceLine;
use std::collections::HashMap;

/// Configuration for interval bucketing.
#[derive(Copy, Clone, Debug)]
pub struct ConcurrencyConfig {
    /// Interval length in cycles. The paper uses 1 ms wall time ≈ 1.2 M
    /// cycles at 1.2 GHz.
    pub interval: u64,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            interval: 1_200_000,
        }
    }
}

/// Dense id of an interned [`SourceLine`] (see [`LineInterner`]).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct LineId(pub u32);

impl LineId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns the distinct source lines of one run into dense `u32` ids.
///
/// Ids are assigned in ascending line order, so **id order equals line
/// order**: `id(a) < id(b) ⇔ a < b`. Downstream consumers
/// ([`crate::cycleloss`]) exploit this to work entirely on ids and only
/// resolve back to [`SourceLine`]s at the edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineInterner {
    /// Interned lines in ascending order; the index is the id.
    lines: Vec<SourceLine>,
    ids: HashMap<SourceLine, u32>,
}

impl LineInterner {
    /// Builds an interner over the distinct lines of an iterator.
    pub fn from_lines(iter: impl IntoIterator<Item = SourceLine>) -> Self {
        let mut lines: Vec<SourceLine> = iter.into_iter().collect();
        lines.sort_unstable();
        lines.dedup();
        let ids = lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        LineInterner { lines, ids }
    }

    /// The id of `line`, if it was interned.
    pub fn id(&self, line: SourceLine) -> Option<LineId> {
        self.ids.get(&line).copied().map(LineId)
    }

    /// The line behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn line(&self, id: LineId) -> SourceLine {
        self.lines[id.index()]
    }

    /// The interned lines in ascending order (index = id).
    pub fn lines(&self) -> &[SourceLine] {
        &self.lines
    }

    /// Number of interned lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Pairwise code-concurrency values over source lines.
///
/// Internally keyed by interned [`LineId`] pairs; the [`LineInterner`] is
/// carried along so consumers can stay in id space
/// ([`ConcurrencyMap::interned_pairs`]) or resolve to lines
/// ([`ConcurrencyMap::pairs`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConcurrencyMap {
    interner: LineInterner,
    /// Keys are normalized `(min_id, max_id)` — equivalently
    /// `(min_line, max_line)`, since id order equals line order.
    map: HashMap<(u32, u32), u64>,
}

impl ConcurrencyMap {
    /// Computes the map from samples — the dense hot path; alias of
    /// [`concurrency_map`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.interval` is zero.
    pub fn from_samples(samples: &[Sample], cfg: &ConcurrencyConfig) -> Self {
        concurrency_map(samples, cfg)
    }

    /// The canonical empty map: no interned lines, no pairs. This is what
    /// the estimator returns for an empty trace (and for any trace without
    /// cross-CPU overlap, e.g. a single-CPU or single-sample run).
    pub fn empty() -> Self {
        ConcurrencyMap::default()
    }

    /// Assembles a map from an interner and a normalized
    /// `(min_id, max_id) -> cc` pair map. Used by the streaming path
    /// ([`crate::shard`]) and the snapshot loader ([`crate::snapshot`]);
    /// callers must guarantee keys are normalized and non-zero.
    pub(crate) fn from_parts(interner: LineInterner, map: HashMap<(u32, u32), u64>) -> Self {
        debug_assert!(map.iter().all(|(&(a, b), &cc)| a <= b && cc > 0));
        ConcurrencyMap { interner, map }
    }

    /// The concurrency value for a pair of lines (0 if never concurrent).
    pub fn get(&self, a: SourceLine, b: SourceLine) -> u64 {
        let (Some(ia), Some(ib)) = (self.interner.id(a), self.interner.id(b)) else {
            return 0;
        };
        let key = if ia <= ib { (ia.0, ib.0) } else { (ib.0, ia.0) };
        self.map.get(&key).copied().unwrap_or(0)
    }

    /// The interner mapping this run's source lines to dense ids.
    pub fn interner(&self) -> &LineInterner {
        &self.interner
    }

    /// All non-zero pairs as `(id_a, id_b, cc)` with `id_a <= id_b`,
    /// sorted by descending concurrency (ties broken by ids — the same
    /// order as [`ConcurrencyMap::pairs`], since id order equals line
    /// order).
    pub fn interned_pairs(&self) -> Vec<(LineId, LineId, u64)> {
        let mut v: Vec<_> = self
            .map
            .iter()
            .map(|(&(a, b), &cc)| (LineId(a), LineId(b), cc))
            .collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        v
    }

    /// All non-zero pairs as `(line_a, line_b, cc)` with `line_a <= line_b`,
    /// sorted by descending concurrency (ties broken by line ids for
    /// determinism).
    pub fn pairs(&self) -> Vec<(SourceLine, SourceLine, u64)> {
        self.interned_pairs()
            .into_iter()
            .map(|(a, b, cc)| (self.interner.line(a), self.interner.line(b), cc))
            .collect()
    }

    /// The `k` most concurrent pairs.
    pub fn top_pairs(&self, k: usize) -> Vec<(SourceLine, SourceLine, u64)> {
        let mut v = self.pairs();
        v.truncate(k);
        v
    }

    /// Number of pairs with non-zero concurrency.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no concurrency was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Above this many distinct lines the per-interval min-sums accumulate
/// into a hash map instead of a dense triangular array (which would need
/// `lines²/2` words). Runs of the synthetic kernel have a few hundred
/// distinct lines, well below the limit.
const DENSE_ACCUMULATOR_LINE_LIMIT: usize = 2048;

/// Per-pair min-sum accumulator shared by the batch path
/// ([`concurrency_map`]) and the streaming path
/// ([`crate::shard::StreamingConcurrency`]): a dense triangular `u64`
/// array when the line universe is small, a hash map beyond
/// ([`DENSE_ACCUMULATOR_LINE_LIMIT`]).
///
/// All contributions are exact `u64` additions, so accumulators over
/// disjoint interval sets can be [`merge`](CcAccumulator::merge)d in any
/// order without changing the final map — the determinism argument for
/// the parallel shard merge (DESIGN.md §11).
#[derive(Clone, Debug)]
pub(crate) struct CcAccumulator {
    n_lines: usize,
    dense: bool,
    tri: Vec<u64>,
    sparse: HashMap<(u32, u32), u64>,
}

impl CcAccumulator {
    /// An empty accumulator over a universe of `n_lines` interned lines.
    pub(crate) fn new(n_lines: usize) -> Self {
        let dense = n_lines <= DENSE_ACCUMULATOR_LINE_LIMIT;
        CcAccumulator {
            n_lines,
            dense,
            tri: vec![
                0u64;
                if dense {
                    n_lines * (n_lines + 1) / 2
                } else {
                    0
                }
            ],
            sparse: HashMap::new(),
        }
    }

    /// Whether the dense triangular backing is in use.
    pub(crate) fn is_dense(&self) -> bool {
        self.dense
    }

    /// Triangular index of `(i <= j)` with diagonal: row `i` starts at
    /// `i*n - i*(i-1)/2 = i*(2n+1-i)/2`, offset `j - i`.
    #[inline]
    fn tri_idx(&self, i: usize, j: usize) -> usize {
        i * (2 * self.n_lines + 1 - i) / 2 + (j - i)
    }

    /// Adds `v` to the normalized pair `(li <= lj)`.
    #[inline]
    pub(crate) fn add(&mut self, li: u32, lj: u32, v: u64) {
        debug_assert!(li <= lj);
        if self.dense {
            let idx = self.tri_idx(li as usize, lj as usize);
            self.tri[idx] += v;
        } else {
            *self.sparse.entry((li, lj)).or_insert(0) += v;
        }
    }

    /// Folds `other` (an accumulator over the same line universe) into
    /// `self` by elementwise addition. Exact and commutative, hence
    /// merge-order independent.
    pub(crate) fn merge(&mut self, other: CcAccumulator) {
        debug_assert_eq!(self.n_lines, other.n_lines);
        debug_assert_eq!(self.dense, other.dense);
        if self.dense {
            for (a, b) in self.tri.iter_mut().zip(other.tri) {
                *a += b;
            }
        } else {
            for (k, v) in other.sparse {
                *self.sparse.entry(k).or_insert(0) += v;
            }
        }
    }

    /// The final normalized pair map, dropping zero entries.
    pub(crate) fn into_map(self) -> HashMap<(u32, u32), u64> {
        if self.dense {
            let mut map = HashMap::new();
            for i in 0..self.n_lines {
                for j in i..self.n_lines {
                    let cc = self.tri[self.tri_idx(i, j)];
                    if cc > 0 {
                        map.insert((i as u32, j as u32), cc);
                    }
                }
            }
            map
        } else {
            let mut map = self.sparse;
            map.retain(|_, v| *v > 0);
            map
        }
    }
}

/// Accumulates one interval's `Σ_{Pm≠Pn} min(F_I(Pm,Bi), F_I(Pn,Bj))`
/// into `acc`, given the interval's flat `[cpu × line]` count block
/// (`rows`, length `n_cpus * n_lines`). `touched` is caller-provided
/// scratch (one sorted touched-line list per CPU, cleared here) so the
/// per-interval loop allocates nothing.
///
/// This is a pure function of the count block, which is what makes the
/// streaming path bit-identical to the batch path: both feed the same
/// per-interval blocks through this one kernel.
pub(crate) fn interval_minsum(
    rows: &[u64],
    n_cpus: usize,
    n_lines: usize,
    touched: &mut [Vec<u32>],
    acc: &mut CcAccumulator,
) {
    debug_assert_eq!(rows.len(), n_cpus * n_lines);
    debug_assert_eq!(touched.len(), n_cpus);
    for (ci, t) in touched.iter_mut().enumerate() {
        t.clear();
        let row = &rows[ci * n_lines..(ci + 1) * n_lines];
        t.extend(
            row.iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(li, _)| li as u32),
        );
    }
    for m in 0..n_cpus {
        let row_m = &rows[m * n_lines..(m + 1) * n_lines];
        for n in 0..n_cpus {
            if m == n {
                continue;
            }
            let row_n = &rows[n * n_lines..(n + 1) * n_lines];
            for &li in &touched[m] {
                let ci = row_m[li as usize];
                // Accumulate each ordered (line_i, line_j) pair once:
                // keep only li <= lj so the normalized key receives
                // exactly the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)).
                let from = touched[n].partition_point(|&lj| lj < li);
                for &lj in &touched[n][from..] {
                    acc.add(li, lj, ci.min(row_n[lj as usize]));
                }
            }
        }
    }
}

/// Computes the concurrency map from samples.
///
/// Samples may be in any order. Lines, CPUs and intervals are interned
/// into dense ids, counts are bucketed into a flat
/// `[interval × cpu × line]` tensor, and the paper's
/// `Σ_{Pm≠Pn} min(F_I(Pm,Bi), F_I(Pn,Bj))` is evaluated as a min-sum over
/// the tensor's dense per-CPU rows. Complexity per interval is
/// `O(cpu_pairs × lines_per_cpu²)` as before — with the paper's parameters
/// (~12 samples per CPU per interval) small — but with index arithmetic
/// instead of hashing throughout.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    concurrency_map_obs(samples, cfg, &slopt_obs::Obs::disabled())
}

/// [`concurrency_map`] with instrumentation: wraps the build in a
/// `cc_build` span and, when `obs` is enabled, flushes interner/tensor
/// statistics as `cc.*` counters (samples bucketed, distinct lines, CPUs
/// and intervals, tensor cells, non-zero pairs, and whether the dense
/// triangular accumulator was used).
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map_obs(
    samples: &[Sample],
    cfg: &ConcurrencyConfig,
    obs: &slopt_obs::Obs,
) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");
    let _span = obs.span("cc_build");

    // An empty trace has no interval structure at all: return the
    // canonical empty map rather than running the interner/tensor
    // machinery on zero-length inputs (tests/edge_cases.rs pins this, and
    // the single-interval / single-CPU cases, down).
    if samples.is_empty() {
        return ConcurrencyMap::empty();
    }

    let interner = LineInterner::from_lines(samples.iter().map(|s| s.line));
    let n_lines = interner.len();

    // Intern intervals and CPUs the same way: sorted distinct values.
    let mut intervals: Vec<u64> = samples.iter().map(|s| s.time / cfg.interval).collect();
    intervals.sort_unstable();
    intervals.dedup();
    let mut cpus: Vec<u16> = samples.iter().map(|s| s.cpu.0).collect();
    cpus.sort_unstable();
    cpus.dedup();
    let (n_intervals, n_cpus) = (intervals.len(), cpus.len());

    // The flat [interval × cpu × line] count tensor.
    let mut counts = vec![0u64; n_intervals * n_cpus * n_lines];
    for s in samples {
        let ti = intervals
            .binary_search(&(s.time / cfg.interval))
            .expect("interval interned");
        let ci = cpus.binary_search(&s.cpu.0).expect("cpu interned");
        let li = interner.id(s.line).expect("line interned").index();
        counts[(ti * n_cpus + ci) * n_lines + li] += 1;
    }

    // Accumulate min-sums per normalized (id_a <= id_b) pair through the
    // shared per-interval kernel (also the streaming path's kernel).
    let mut acc = CcAccumulator::new(n_lines);
    let dense_acc = acc.is_dense();
    let mut touched: Vec<Vec<u32>> = vec![Vec::new(); n_cpus];
    for ti in 0..n_intervals {
        let base = ti * n_cpus * n_lines;
        let rows = &counts[base..base + n_cpus * n_lines];
        interval_minsum(rows, n_cpus, n_lines, &mut touched, &mut acc);
    }

    let map = acc.into_map();
    if obs.enabled() {
        obs.counter("cc.samples_bucketed", samples.len() as u64);
        obs.counter("cc.lines", n_lines as u64);
        obs.counter("cc.cpus", n_cpus as u64);
        obs.counter("cc.intervals", n_intervals as u64);
        obs.counter("cc.tensor_cells", (n_intervals * n_cpus * n_lines) as u64);
        obs.counter("cc.pairs", map.len() as u64);
        obs.gauge("cc.dense_accumulator", if dense_acc { 1.0 } else { 0.0 });
    }
    ConcurrencyMap { interner, map }
}

/// The original triple-nested-map formulation, retained as the reference
/// implementation: used by the equivalence property tests and by
/// `perf_report` to measure the dense rewrite against, on identical
/// inputs. Produces a map equal to [`concurrency_map`]'s.
///
/// # Panics
///
/// Panics if `cfg.interval` is zero.
pub fn concurrency_map_naive(samples: &[Sample], cfg: &ConcurrencyConfig) -> ConcurrencyMap {
    assert!(cfg.interval > 0, "interval must be non-zero");

    // interval index -> cpu -> line -> count
    let mut intervals: HashMap<u64, HashMap<u16, HashMap<SourceLine, u64>>> = HashMap::new();
    for s in samples {
        *intervals
            .entry(s.time / cfg.interval)
            .or_default()
            .entry(s.cpu.0)
            .or_default()
            .entry(s.line)
            .or_insert(0) += 1;
    }

    let interner = LineInterner::from_lines(samples.iter().map(|s| s.line));
    let mut map: HashMap<(u32, u32), u64> = HashMap::new();
    for per_cpu in intervals.values() {
        let cpus: Vec<&u16> = {
            let mut v: Vec<&u16> = per_cpu.keys().collect();
            v.sort();
            v
        };
        for &m in &cpus {
            for &n in &cpus {
                if m == n {
                    continue;
                }
                let hm = &per_cpu[m];
                let hn = &per_cpu[n];
                for (&li, &ci) in hm {
                    for (&lj, &cj) in hn {
                        // Accumulate each ordered (line_i, line_j) pair once:
                        // keep only li <= lj so the normalized key receives
                        // exactly the paper's Σ_{m≠n} min(F(m,Bi), F(n,Bj)).
                        if li <= lj {
                            let key = (
                                interner.id(li).expect("line interned").0,
                                interner.id(lj).expect("line interned").0,
                            );
                            *map.entry(key).or_insert(0) += ci.min(cj);
                        }
                    }
                }
            }
        }
    }
    map.retain(|_, v| *v > 0);
    ConcurrencyMap { interner, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::cfg::{BlockId, FuncId};
    use slopt_sim::CpuId;

    fn sample(cpu: u16, time: u64, line: u32) -> Sample {
        Sample {
            cpu: CpuId(cpu),
            time,
            func: FuncId(0),
            block: BlockId(0),
            line: SourceLine(line),
        }
    }

    #[test]
    fn concurrent_lines_on_different_cpus_score() {
        // Interval 100: cpu0 in line1 twice, cpu1 in line2 three times.
        let samples = vec![
            sample(0, 10, 1),
            sample(0, 20, 1),
            sample(1, 15, 2),
            sample(1, 25, 2),
            sample(1, 35, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        // Ordered pairs (0,1) and (1,0): min(2,3) + min(3,2)... only li<=lj
        // kept per ordered cpu pair: (m=0,n=1): (1,2) -> min(2,3)=2;
        // (m=1,n=0): (2,1) normalized li<=lj fails for (2,1), but (1,2) via
        // hm=cpu1{2},hn=cpu0{1} gives li=2 > lj=1 -> skipped. So CC = 2.
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
        assert_eq!(cm.get(SourceLine(2), SourceLine(1)), 2, "symmetric lookup");
    }

    #[test]
    fn same_cpu_never_scores() {
        let samples = vec![sample(0, 10, 1), sample(0, 20, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert!(cm.is_empty());
    }

    #[test]
    fn different_intervals_do_not_interact() {
        let samples = vec![sample(0, 10, 1), sample(1, 150, 2)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 0);
    }

    #[test]
    fn same_line_concurrency_counts_both_directions() {
        // Both cpus in the same line: CC(B,B) = Σ_{m≠n} min(F(m,B),F(n,B))
        // = min(1,1) for (0,1) + min(1,1) for (1,0) = 2.
        let samples = vec![sample(0, 10, 5), sample(1, 20, 5)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(5), SourceLine(5)), 2);
    }

    #[test]
    fn accumulates_across_intervals() {
        let samples = vec![
            sample(0, 10, 1),
            sample(1, 20, 2),
            sample(0, 110, 1),
            sample(1, 120, 2),
        ];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 2);
    }

    #[test]
    fn min_caps_unbalanced_frequencies() {
        let mut samples = vec![sample(1, 15, 2)];
        for i in 0..10 {
            samples.push(sample(0, i, 1));
        }
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1, "min(10, 1) = 1");
    }

    #[test]
    fn three_cpus_pairwise() {
        // cpus 0,1,2 each once in lines 1,2,3 in one interval.
        let samples = vec![sample(0, 1, 1), sample(1, 2, 2), sample(2, 3, 3)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        assert_eq!(cm.get(SourceLine(1), SourceLine(2)), 1);
        assert_eq!(cm.get(SourceLine(1), SourceLine(3)), 1);
        assert_eq!(cm.get(SourceLine(2), SourceLine(3)), 1);
        assert_eq!(cm.len(), 3);
    }

    #[test]
    fn top_pairs_sorts_by_concurrency() {
        let mut samples = Vec::new();
        // lines 1&2 concurrent twice, lines 1&3 once.
        for t in [10, 110] {
            samples.push(sample(0, t, 1));
            samples.push(sample(1, t + 5, 2));
        }
        samples.push(sample(0, 210, 1));
        samples.push(sample(1, 215, 3));
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let top = cm.top_pairs(1);
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].0, top[0].1), (SourceLine(1), SourceLine(2)));
        assert_eq!(top[0].2, 2);
        assert_eq!(cm.pairs().len(), 2);
    }

    #[test]
    fn dense_equals_naive_on_a_mixed_stream() {
        // A hand-rolled stream crossing intervals, cpus and lines.
        let mut samples = Vec::new();
        for i in 0..200u64 {
            samples.push(sample((i % 5) as u16, (i * 37) % 1000, (i % 7) as u32));
        }
        let cfg = ConcurrencyConfig { interval: 100 };
        let dense = concurrency_map(&samples, &cfg);
        let naive = concurrency_map_naive(&samples, &cfg);
        assert_eq!(dense, naive);
        assert_eq!(dense.pairs(), naive.pairs());
    }

    #[test]
    fn interner_round_trips_and_orders() {
        let samples = vec![sample(0, 1, 9), sample(1, 2, 3), sample(2, 3, 7)];
        let cm = concurrency_map(&samples, &ConcurrencyConfig { interval: 100 });
        let it = cm.interner();
        assert_eq!(it.len(), 3);
        assert_eq!(it.lines(), &[SourceLine(3), SourceLine(7), SourceLine(9)]);
        for (i, &l) in it.lines().iter().enumerate() {
            assert_eq!(it.id(l), Some(LineId(i as u32)));
            assert_eq!(it.line(LineId(i as u32)), l);
        }
        assert_eq!(it.id(SourceLine(1000)), None);
        // interned_pairs and pairs agree through the interner.
        for ((ia, ib, icc), (la, lb, lcc)) in cm.interned_pairs().iter().zip(cm.pairs().iter()) {
            assert_eq!(it.line(*ia), *la);
            assert_eq!(it.line(*ib), *lb);
            assert_eq!(icc, lcc);
        }
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected() {
        concurrency_map(&[], &ConcurrencyConfig { interval: 0 });
    }

    #[test]
    #[should_panic(expected = "interval must be non-zero")]
    fn zero_interval_rejected_by_naive() {
        concurrency_map_naive(&[], &ConcurrencyConfig { interval: 0 });
    }
}
