//! # slopt-sample — synchronized sampling and Code Concurrency
//!
//! The runtime-measurement half of the CGO 2007 structure-layout paper.
//! Where the paper uses HP Caliper reading the Itanium PMU in whole-system
//! mode, this crate attaches a [`Sampler`] to the `slopt-sim` engine:
//!
//! 1. [`sampler`] — collect `(CPU, time, source line)` samples at a fixed
//!    period (default 100 000 cycles), with optional phase jitter and
//!    sample loss. [`ExactCounter`] records every block execution instead,
//!    as ground truth for validation.
//! 2. [`concurrency`] — bucket samples into fixed intervals (default
//!    ~1 ms) and compute **Code Concurrency** per source-line pair:
//!    `CC(Bi,Bj) = Σ_I Σ_{Pm≠Pn} min(F_I(Pm,Bi), F_I(Pn,Bj))`.
//! 3. [`cycleloss`] — join the concurrency map with the compiler's Field
//!    Mapping File to estimate **CycleLoss** per field pair: the penalty
//!    of co-locating two fields on one cache line.
//!
//! The output of step 3 is the negative-edge input of the Field Layout
//! Graph built in `slopt-core`.
//!
//! For production-scale traces, [`shard`] replaces the in-memory trace
//! with fixed-size on-disk shards and a bounded-memory
//! [`StreamingConcurrency`] fold that is bit-identical to step 2, and
//! [`snapshot`] persists concurrency maps for checkpointed grid runs.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod concurrency;
pub mod cycleloss;
pub mod sampler;
pub mod shard;
pub mod snapshot;

pub use concurrency::{
    concurrency_map, concurrency_map_naive, concurrency_map_obs, concurrency_map_reference,
    ConcurrencyConfig, ConcurrencyMap, LineId, LineInterner,
};
pub use cycleloss::{cycle_loss, cycle_loss_filtered, cycle_loss_weighted, CycleLossMap};
pub use sampler::{ExactCounter, Sample, Sampler, SamplerConfig};
pub use shard::{
    decode_shard, encode_shard, read_shard, shard_concurrency, shard_concurrency_obs,
    shard_file_name, write_shard, write_shards, ShardError, ShardIngestStats, ShardReader,
    ShardSpool, StreamingConcurrency, WindowedConcurrency,
};
pub use snapshot::{load_concurrency, save_concurrency, SnapshotError};
