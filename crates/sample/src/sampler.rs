//! PMU-style whole-system sampling (the paper's HP Caliper substitute).
//!
//! The paper samples every CPU's instruction pointer every ~100 000 cycles,
//! tagging each sample with the CPU id and the Itanium Interval Timer
//! Counter (a globally synchronized high-resolution clock). [`Sampler`]
//! reproduces this as a [`slopt_sim::Observer`]: the engine reports block
//! execution time ranges, and the sampler emits a [`Sample`] whenever a
//! CPU's next sample point falls inside an executed range.
//!
//! Realism knobs: a per-CPU phase jitter (the ITCs of real CPUs drift by a
//! few ticks) and a sample-loss probability (heavily loaded machines drop
//! samples at high frequencies — paper §4.2).

use slopt_ir::cfg::{BlockId, FuncId};
use slopt_ir::interp::SplitMix64;
use slopt_ir::source::SourceLine;
use slopt_sim::{CpuId, Observer};

/// One PMU sample: which CPU was where, when.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub struct Sample {
    /// The sampled CPU.
    pub cpu: CpuId,
    /// Global time (ITC analogue) of the sample.
    pub time: u64,
    /// Function containing the sampled IP.
    pub func: FuncId,
    /// Basic block containing the sampled IP.
    pub block: BlockId,
    /// Source line the IP correlates to.
    pub line: SourceLine,
}

/// Sampler configuration.
#[derive(Copy, Clone, Debug)]
pub struct SamplerConfig {
    /// Sampling period in cycles (paper: 100 000).
    pub period: u64,
    /// Maximum per-CPU phase offset in cycles (models ITC drift and
    /// staggered sampling start). Applied deterministically from the seed.
    pub max_phase_jitter: u64,
    /// Probability that a due sample is dropped.
    pub loss_probability: f64,
    /// Seed for jitter and loss decisions.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            period: 100_000,
            max_phase_jitter: 64,
            loss_probability: 0.0,
            seed: 0,
        }
    }
}

/// Collects [`Sample`]s from engine block events.
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    next_due: Vec<u64>,
    rng: SplitMix64,
    samples: Vec<Sample>,
    dropped: u64,
}

impl Sampler {
    /// Creates a sampler for a machine with `cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the loss probability is outside
    /// `[0, 1]`.
    pub fn new(cpus: usize, cfg: SamplerConfig) -> Self {
        assert!(cfg.period > 0, "sampling period must be non-zero");
        assert!(
            (0.0..=1.0).contains(&cfg.loss_probability),
            "loss probability {} outside [0, 1]",
            cfg.loss_probability
        );
        let mut rng = SplitMix64::new(cfg.seed);
        let next_due = (0..cpus)
            .map(|_| {
                let jitter = if cfg.max_phase_jitter == 0 {
                    0
                } else {
                    rng.next_u64() % (cfg.max_phase_jitter + 1)
                };
                cfg.period + jitter
            })
            .collect();
        Sampler {
            cfg,
            next_due,
            rng,
            samples: Vec::new(),
            dropped: 0,
        }
    }

    /// The samples collected so far, in per-CPU time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the sampler, returning the samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// Takes the samples collected so far, leaving the sampler running
    /// with an empty buffer. This is the shard spool's drain point
    /// ([`crate::shard::ShardSpool`]): the per-CPU sampling clocks and the
    /// loss/jitter RNG keep their state, so draining never changes *which*
    /// samples are emitted, only where they are buffered.
    pub fn drain_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }

    /// Number of due samples dropped by the loss model.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Observer for Sampler {
    fn on_block(
        &mut self,
        cpu: CpuId,
        func: FuncId,
        block: BlockId,
        line: SourceLine,
        start: u64,
        end: u64,
    ) {
        let due = &mut self.next_due[cpu.index()];
        // Fast-forward over any idle gap without emitting samples (the CPU
        // wasn't running the program there).
        while *due < start {
            *due += self.cfg.period;
        }
        while *due < end {
            let keep = self.cfg.loss_probability == 0.0
                || self.rng.next_f64() >= self.cfg.loss_probability;
            if keep {
                self.samples.push(Sample {
                    cpu,
                    time: *due,
                    func,
                    block,
                    line,
                });
            } else {
                self.dropped += 1;
            }
            *due += self.cfg.period;
        }
    }
}

/// An exact (non-sampled) event counter: one pseudo-sample per basic-block
/// execution, stamped at the block's start time. Used as ground truth when
/// validating how well sampled Code Concurrency tracks reality.
#[derive(Debug, Default)]
pub struct ExactCounter {
    samples: Vec<Sample>,
}

impl ExactCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the counter, returning the events.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

impl Observer for ExactCounter {
    fn on_block(
        &mut self,
        cpu: CpuId,
        func: FuncId,
        block: BlockId,
        line: SourceLine,
        start: u64,
        _end: u64,
    ) {
        self.samples.push(Sample {
            cpu,
            time: start,
            func,
            block,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: &mut Sampler, cpu: u16, line: u32, start: u64, end: u64) {
        s.on_block(
            CpuId(cpu),
            FuncId(0),
            BlockId(0),
            SourceLine(line),
            start,
            end,
        );
    }

    #[test]
    fn samples_fall_on_period_grid() {
        let cfg = SamplerConfig {
            period: 100,
            max_phase_jitter: 0,
            ..Default::default()
        };
        let mut s = Sampler::new(1, cfg);
        ev(&mut s, 0, 1, 0, 350);
        let times: Vec<u64> = s.samples().iter().map(|x| x.time).collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn samples_attribute_to_covering_block() {
        let cfg = SamplerConfig {
            period: 100,
            max_phase_jitter: 0,
            ..Default::default()
        };
        let mut s = Sampler::new(1, cfg);
        ev(&mut s, 0, 7, 0, 150); // covers t=100
        ev(&mut s, 0, 8, 150, 260); // covers t=200
        let lines: Vec<u32> = s.samples().iter().map(|x| x.line.0).collect();
        assert_eq!(lines, vec![7, 8]);
    }

    #[test]
    fn idle_gaps_produce_no_samples() {
        let cfg = SamplerConfig {
            period: 100,
            max_phase_jitter: 0,
            ..Default::default()
        };
        let mut s = Sampler::new(1, cfg);
        ev(&mut s, 0, 1, 0, 150);
        ev(&mut s, 0, 2, 1000, 1150); // big gap
        let times: Vec<u64> = s.samples().iter().map(|x| x.time).collect();
        // Grid points 200..900 fell in the gap and were skipped; sampling
        // resumes at the first grid point inside the next block.
        assert_eq!(times, vec![100, 1000, 1100]);
    }

    #[test]
    fn per_cpu_clocks_are_independent() {
        let cfg = SamplerConfig {
            period: 100,
            max_phase_jitter: 0,
            ..Default::default()
        };
        let mut s = Sampler::new(2, cfg);
        ev(&mut s, 0, 1, 0, 250);
        ev(&mut s, 1, 2, 0, 150);
        let per_cpu: Vec<(u16, u64)> = s.samples().iter().map(|x| (x.cpu.0, x.time)).collect();
        assert!(per_cpu.contains(&(0, 100)) && per_cpu.contains(&(0, 200)));
        assert!(per_cpu.contains(&(1, 100)));
        assert_eq!(s.samples().len(), 3);
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let cfg = SamplerConfig {
            period: 10,
            max_phase_jitter: 0,
            loss_probability: 0.5,
            seed: 3,
        };
        let mut s = Sampler::new(1, cfg);
        ev(&mut s, 0, 1, 0, 100_000);
        let kept = s.samples().len() as f64;
        let total = kept + s.dropped() as f64;
        assert!(total >= 9_999.0);
        let frac = kept / total;
        assert!((frac - 0.5).abs() < 0.05, "kept fraction {frac}");
    }

    #[test]
    fn jitter_staggers_cpus_deterministically() {
        let cfg = SamplerConfig {
            period: 1000,
            max_phase_jitter: 100,
            seed: 9,
            ..Default::default()
        };
        let s1 = Sampler::new(8, cfg);
        let s2 = Sampler::new(8, cfg);
        assert_eq!(s1.next_due, s2.next_due);
        assert!(s1.next_due.iter().all(|&d| (1000..=1100).contains(&d)));
    }

    #[test]
    fn exact_counter_records_every_block() {
        let mut c = ExactCounter::new();
        c.on_block(CpuId(0), FuncId(1), BlockId(2), SourceLine(3), 10, 20);
        c.on_block(CpuId(1), FuncId(1), BlockId(2), SourceLine(3), 12, 14);
        assert_eq!(c.samples().len(), 2);
        assert_eq!(c.samples()[0].time, 10);
        let v = c.into_samples();
        assert_eq!(v.len(), 2);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        Sampler::new(
            1,
            SamplerConfig {
                period: 0,
                ..Default::default()
            },
        );
    }
}
