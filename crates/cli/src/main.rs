//! `slopt-tool` — the paper's semi-automatic layout advisor as a
//! command-line program.
//!
//! ```text
//! slopt-tool advise [--struct A|B|C|D|E] [--out DIR] [--cpus N]
//! slopt-tool simulate [--machine bus4|superdome16|superdome128]
//! slopt-tool figures [--scale N] [--jobs N] [--fault-plan SPEC]
//! slopt-tool search [--stress | --program FILE] [--seed S] [--jobs N]
//! slopt-tool stats <trace.jsonl> [--prom]
//! slopt-tool flame <trace.jsonl>
//! slopt-tool serve <health|advise|metrics|drain|ingest> [--addr HOST:PORT]
//! slopt-tool help
//! ```
//!
//! `advise`, `simulate`, `figures` and `search` additionally accept
//! `--trace-out <path>` (machine-readable `slopt-trace/1` JSONL run
//! trace) and `--stats` (aggregate counter/span summary at exit).
//!
//! `advise` runs the instrumented measurement run on the built-in
//! synthetic kernel, prints the layout advisory for the chosen structure
//! (cluster contents, intra/inter-cluster weights, strongest edges), and
//! optionally writes the suggested layout and a Graphviz rendering of the
//! Field Layout Graph to `--out`.
//!
//! Exit codes follow the shared vocabulary in `slopt_fault::exit`:
//! 0 success, 1 internal failure, 2 usage error, 3 bad input,
//! 4 degraded (partial) figures run under permanent injected faults.

// The CLI is the crash-free boundary of the tool: every fallible path
// must surface a classified `CliError`, never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        commands::print_help();
        return ExitCode::from(slopt_fault::exit::USAGE);
    };
    let result = match cmd.as_str() {
        "advise" => commands::advise(rest),
        "simulate" => commands::simulate(rest),
        "figures" => commands::figures(rest),
        "search" => commands::search(rest),
        "stats" => commands::stats(rest),
        "flame" => commands::flame(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => Err(commands::CliError::usage(format!(
            "unknown command `{other}` (try `slopt-tool help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("slopt-tool: {e}");
            ExitCode::from(e.code)
        }
    }
}
