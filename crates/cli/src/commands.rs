//! The `slopt-tool` subcommands.
//!
//! Every command returns a [`CliError`] carrying both the message and the
//! process exit code from the shared vocabulary in [`slopt_fault::exit`]:
//! flag misuse exits 2, unreadable/unparseable input exits 3, a degraded
//! (partial-result) figures run exits 4, everything else exits 1.

use slopt_bench::{figure, resolve, CommonArgs, ExecCtx, FigureOutcome, EXIT_CODE_TABLE};
use slopt_core::{to_dot, DotOptions, ToolParams};
use slopt_fault::exit;
use slopt_ir::types::RecordId;
use slopt_search::{Portfolio, SearchParams};
use slopt_sim::AccessClass;
use slopt_workload::{
    analyze_obs, baseline_layouts, build_kernel, compute_paper_layouts_jobs_obs, layouts_with,
    measure_jobs, run_once_obs, search_for_obs, stress_records, stress_workload, suggest_for_obs,
    validate_top_k, AnalysisConfig, KernelAnalysis, LayoutKind, Machine, SdetConfig, WorkloadSpec,
};
use std::path::PathBuf;

/// A classified command failure: what to print and which exit code the
/// process should end with.
#[derive(Clone, Debug)]
pub struct CliError {
    /// Human-readable description, printed to stderr by `main`.
    pub message: String,
    /// Process exit code (see [`slopt_fault::exit`]).
    pub code: u8,
}

impl CliError {
    /// Flag/usage mistakes: exit [`exit::USAGE`].
    pub(crate) fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: exit::USAGE,
        }
    }

    /// Unreadable or unparseable user input: exit [`exit::BAD_INPUT`].
    pub(crate) fn bad_input(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: exit::BAD_INPUT,
        }
    }

    /// Partial results under permanent faults: exit [`exit::DEGRADED`].
    pub(crate) fn degraded(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: exit::DEGRADED,
        }
    }

    /// Everything else: exit [`exit::FAILURE`].
    pub(crate) fn failure(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: exit::FAILURE,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Prints usage.
pub fn print_help() {
    println!(
        "slopt-tool — structure layout advisor (CGO 2007 reproduction)

USAGE:
    slopt-tool advise [--struct A|B|C|D|E] [--out DIR] [--cpus N]
        Run the instrumented measurement on the built-in kernel and print
        the layout advisory for one structure. With --out, write
        <name>.layout.txt and <name>.flg.dot into DIR.

    slopt-tool advise --program FILE [--struct RECORD] [--out DIR] [--cpus N]
        The same pipeline on a user-supplied workload file: a `.sir`
        program plus a `workload {{ action ... }}` section (see
        examples/session_table.sirw).

    slopt-tool simulate [--machine bus4|superdome16|superdome128]
        Run the SDET-like workload with baseline layouts and print the
        memory-system breakdown per structure (a `perf c2c`-style view).

    slopt-tool figures [--scale N] [--jobs N] [--checkpoint-dir DIR [--resume]]
                       [--fault-plan SPEC] [--max-retries N] [--deadline-ms N]
        Regenerate the paper's Figures 8, 9 and 10 in one go. --jobs fans
        the measurement grid across N host threads (default: all cores);
        the output is bit-identical for every N. With --checkpoint-dir,
        every completed grid item is persisted as it finishes; re-running
        with --resume recomputes only the missing items and yields a
        bit-identical result.

        --fault-plan injects seed-deterministic faults into the worker
        pool (e.g. `seed=7,transient=0.1,panic=0.05`; kinds: panic,
        transient, permanent, slow, write-error, read-error, corrupt).
        Transient faults are retried (--max-retries, default 3) and leave
        the output bit-identical; permanent faults hole the affected
        cells, print partial results, and exit 4. --deadline-ms bounds
        each grid item cooperatively.

    slopt-tool search [--stress | --program FILE] [--struct NAME]
                      [--seed S] [--chains C] [--steps K]
                      [--validate-top T] [--jobs N] [--cpus N]
        Run the slopt-search annealing portfolio against the greedy
        clustering and validate the winner in simulated cycles. By
        default on the built-in kernel (where greedy is already
        optimal); --stress uses the shipped stress workload whose
        affinity structure greedy provably mishandles; --program runs a
        user workload file. Deterministic per --seed and bit-identical
        for every --jobs value.

    slopt-tool stats <trace.jsonl> [--prom]
        Replay a saved run trace and print the aggregate counter/span/
        histogram table it implies. --prom renders the same aggregates in
        Prometheus text exposition format instead (for scrapers; the
        output is self-checked before printing).

    slopt-tool flame <trace.jsonl>
        Export a saved run trace as a folded-stack profile (FlameGraph
        collapsed format; value = self time in microseconds). Render with
        `slopt-tool flame run.jsonl | flamegraph.pl > run.svg`.

    slopt-tool serve <health|advise|metrics|drain|ingest>
                     [--addr HOST:PORT | --state-dir DIR]
        Talk to a running slopt-serve daemon. --state-dir discovers the
        address from DIR/addr (written by the daemon at bind time).
        `ingest --dir DIR [--client-id N] [--fault-plan SPEC]
        [--max-retries N]` streams every *.slshard under DIR as one
        collector, retrying transient failures with backoff; the others
        print the daemon's advice/health/metrics or drain it gracefully.

    slopt-tool help
        This text.

OBSERVABILITY (advise, simulate, figures, search):
    --trace-out <path>   Write a machine-readable run trace (slopt-trace/1
                         JSONL, Chrome trace events) to <path>.
    --stats              Print the aggregate counter/span summary table at
                         exit.

{EXIT_CODE_TABLE}"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

/// Builds the observability handle the shared `--trace-out <path>` /
/// `--stats` flags ask for (disabled when neither is present).
fn obs_from_args(args: &[String]) -> Result<slopt_obs::Obs, CliError> {
    let trace_out = flag_value(args, "--trace-out");
    let stats = args.iter().any(|a| a == "--stats");
    slopt_obs::obs_from_flags(trace_out, stats).map_err(|e| {
        CliError::failure(format!(
            "cannot open trace output {}: {e}",
            trace_out.unwrap_or("<none>")
        ))
    })
}

/// Flushes the trace sink and, under `--stats`, prints the aggregate
/// summary table. Call once at the end of each instrumented subcommand.
fn finish_obs(args: &[String], obs: &slopt_obs::Obs) {
    obs.finish();
    if obs.enabled() && args.iter().any(|a| a == "--stats") {
        println!("=== run stats ===");
        print!("{}", obs.summary());
    }
    if let Some(path) = flag_value(args, "--trace-out") {
        eprintln!("[slopt-tool] trace written to {path}");
    }
}

fn parse_machine(spec: &str) -> Result<Machine, String> {
    if spec == "bus4" {
        return Ok(Machine::bus(4));
    }
    if let Some(n) = spec.strip_prefix("superdome") {
        let n: usize = n.parse().map_err(|_| format!("bad machine `{spec}`"))?;
        if n == 0 || n > 128 {
            return Err(format!("superdome CPU count {n} out of range (1..=128)"));
        }
        return Ok(Machine::superdome(n));
    }
    if let Some(n) = spec.strip_prefix("bus") {
        let n: usize = n.parse().map_err(|_| format!("bad machine `{spec}`"))?;
        if n == 0 || n > 128 {
            return Err(format!("bus CPU count {n} out of range (1..=128)"));
        }
        return Ok(Machine::bus(n));
    }
    Err(format!("unknown machine `{spec}` (bus4, busN, superdomeN)"))
}

/// `slopt-tool advise`.
pub fn advise(args: &[String]) -> Result<(), CliError> {
    if let Some(path) = flag_value(args, "--program") {
        return advise_custom(path, args);
    }
    let kernel = build_kernel();
    let letter = flag_value(args, "--struct")
        .unwrap_or("A")
        .to_ascii_uppercase();
    let rec = kernel
        .records
        .all()
        .iter()
        .find(|(l, _)| l.to_string() == letter)
        .map(|&(_, r)| r)
        .ok_or_else(|| CliError::usage(format!("no struct `{letter}` (use A..E)")))?;
    let cpus = parse_cpus(args)?;

    let sdet = SdetConfig::default();
    let analysis_cfg = AnalysisConfig {
        machine: Machine::superdome(cpus),
        ..Default::default()
    };
    eprintln!(
        "[advise] measuring on {} ...",
        analysis_cfg.machine.topo.name()
    );
    let obs = obs_from_args(args)?;
    let analysis = analyze_obs(&kernel, &sdet, &analysis_cfg, &obs);
    let suggestion = suggest_for_obs(&kernel, &analysis, rec, ToolParams::default(), &obs);
    let ty = kernel.record_type(rec);

    println!("{}", suggestion.report);
    println!("{}", suggestion.layout.to_annotated_string(ty));

    if let Some(dir) = flag_value(args, "--out") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::failure(format!("creating {}: {e}", dir.display())))?;
        let layout_path = dir.join(format!("{}.layout.txt", ty.name()));
        std::fs::write(
            &layout_path,
            format!(
                "{}\n{}",
                suggestion.report,
                suggestion.layout.to_annotated_string(ty)
            ),
        )
        .map_err(|e| CliError::failure(format!("writing {}: {e}", layout_path.display())))?;
        let dot_path = dir.join(format!("{}.flg.dot", ty.name()));
        let dot = to_dot(
            ty,
            &suggestion.flg,
            Some(&suggestion.clustering),
            DotOptions::default(),
        );
        std::fs::write(&dot_path, dot)
            .map_err(|e| CliError::failure(format!("writing {}: {e}", dot_path.display())))?;
        println!(
            "wrote {} and {} (render with `dot -Tsvg`)",
            layout_path.display(),
            dot_path.display()
        );
    }
    finish_obs(args, &obs);
    Ok(())
}

/// `slopt-tool advise --program <file>`: run the pipeline on a
/// user-supplied workload file (`.sir` program + `workload` section).
fn advise_custom(path: &str, args: &[String]) -> Result<(), CliError> {
    use slopt_workload::WorkloadSpec as _;
    let input = std::fs::read_to_string(path)
        .map_err(|e| CliError::bad_input(format!("reading {path}: {e}")))?;
    let workload = slopt_workload::parse_workload_file(&input)
        .map_err(|e| CliError::bad_input(format!("{path}:{e}")))?;

    let cpus = parse_cpus(args)?;
    let rec = match flag_value(args, "--struct") {
        Some(name) => workload
            .program()
            .registry()
            .lookup(name)
            .ok_or_else(|| CliError::bad_input(format!("no record `{name}` in {path}")))?,
        None => {
            let mut it = workload.program().registry().records();
            it.next()
                .map(|(r, _)| r)
                .ok_or_else(|| CliError::bad_input(format!("{path} declares no records")))?
        }
    };

    let sdet = SdetConfig::default();
    let analysis_cfg = AnalysisConfig {
        machine: Machine::superdome(cpus),
        ..Default::default()
    };
    eprintln!(
        "[advise] measuring `{path}` on {} ...",
        analysis_cfg.machine.topo.name()
    );
    let obs = obs_from_args(args)?;
    let analysis = analyze_obs(&workload, &sdet, &analysis_cfg, &obs);
    let suggestion = suggest_for_obs(&workload, &analysis, rec, ToolParams::default(), &obs);
    let ty = workload.record_type(rec);

    println!("{}", suggestion.report);
    println!("{}", suggestion.layout.to_annotated_string(ty));

    if let Some(dir) = flag_value(args, "--out") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::failure(format!("creating {}: {e}", dir.display())))?;
        let dot_path = dir.join(format!("{}.flg.dot", ty.name()));
        let dot = to_dot(
            ty,
            &suggestion.flg,
            Some(&suggestion.clustering),
            DotOptions::default(),
        );
        std::fs::write(&dot_path, dot)
            .map_err(|e| CliError::failure(format!("writing {}: {e}", dot_path.display())))?;
        println!("wrote {}", dot_path.display());
    }
    finish_obs(args, &obs);
    Ok(())
}

/// `slopt-tool simulate`.
pub fn simulate(args: &[String]) -> Result<(), CliError> {
    let machine = parse_machine(flag_value(args, "--machine").unwrap_or("superdome16"))
        .map_err(CliError::usage)?;
    let kernel = build_kernel();
    let sdet = SdetConfig::default();
    let layouts = baseline_layouts(&kernel, sdet.line_size);
    eprintln!(
        "[simulate] running SDET-like workload on {} ...",
        machine.topo.name()
    );
    let obs = obs_from_args(args)?;
    let run = run_once_obs(
        &kernel,
        &layouts,
        &machine,
        &sdet,
        1,
        &mut slopt_sim::NullObserver,
        &obs,
    );
    println!(
        "throughput: {:.1} scripts/Mcycle over {} cycles ({} scripts)",
        run.result.throughput(),
        run.result.makespan,
        run.result.scripts_done
    );
    println!(
        "\n{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "struct", "hits", "cold", "true-share", "false-share", "upgrades"
    );
    for (letter, rec) in kernel.records.all() {
        let s = &run.stats;
        println!(
            "{letter:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
            s.class_for(rec, AccessClass::Hit).count,
            s.class_for(rec, AccessClass::ColdMiss).count,
            s.class_for(rec, AccessClass::TrueSharingMiss).count,
            s.class_for(rec, AccessClass::FalseSharingMiss).count,
            s.class_for(rec, AccessClass::UpgradeHit).count,
        );
    }
    finish_obs(args, &obs);
    Ok(())
}

/// Parses the optional `--cpus N` flag (1..=128, default 16).
fn parse_cpus(args: &[String]) -> Result<usize, CliError> {
    let cpus: usize = match flag_value(args, "--cpus") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("bad --cpus `{v}`")))?,
        None => 16,
    };
    if cpus == 0 || cpus > 128 {
        return Err(CliError::usage(format!(
            "--cpus {cpus} out of range (1..=128)"
        )));
    }
    Ok(cpus)
}

/// Parses the shared execution-context flags and builds the [`ExecCtx`]
/// the heavier subcommands run under. `extras` registers the
/// subcommand's own flags so strict parsing doesn't reject them.
fn exec_ctx(args: &[String], extras: &[(&str, bool)]) -> Result<(CommonArgs, ExecCtx), CliError> {
    let common =
        CommonArgs::parse_with(args, extras).map_err(|e| CliError::usage(e.to_string()))?;
    let ctx = common.try_ctx().map_err(CliError::failure)?;
    Ok((common, ctx))
}

/// `slopt-tool figures`.
pub fn figures(args: &[String]) -> Result<(), CliError> {
    let (common, ctx) = exec_ctx(args, &[])?;
    let scale = common.scale;
    let jobs = ctx.jobs;
    let kernel = build_kernel();
    let sdet = SdetConfig {
        scripts_per_cpu: 24 * scale.max(1),
        ..SdetConfig::default()
    };
    let analysis = AnalysisConfig::default();
    let runs = (5 + scale).min(10);
    eprintln!("[figures] measurement + layout derivation ({jobs} jobs) ...");
    let layouts = compute_paper_layouts_jobs_obs(
        &kernel,
        &sdet,
        &analysis,
        ToolParams::default(),
        jobs,
        &ctx.obs,
    );

    for (name, machine, kinds, title) in [
        (
            "fig8",
            Machine::superdome(128),
            vec![LayoutKind::Tool, LayoutKind::SortByHotness],
            "Figure 8 (128-way)",
        ),
        (
            "fig9",
            Machine::bus(4),
            vec![LayoutKind::Tool, LayoutKind::SortByHotness],
            "Figure 9 (4-way)",
        ),
        (
            "fig10",
            Machine::superdome(128),
            vec![LayoutKind::Tool, LayoutKind::Constrained],
            "Figure 10 (best layouts)",
        ),
    ] {
        eprintln!("[figures] {} ...", title);
        let FigureOutcome {
            figure: fig,
            cells,
            report,
        } = figure(
            &ctx, name, &kernel, &machine, &sdet, runs, &layouts, &kinds, title,
        )
        .map_err(|e| CliError::failure(format!("{title}: {e}")))?;
        // The shared complete-vs-degraded decision: a complete grid prints
        // its figure; permanent faults print the partial table and turn
        // into the degraded exit code.
        match (resolve(name, cells, &report), fig) {
            (Ok(_), Some(fig)) => println!("{fig}"),
            (Ok(_), None) => {
                ctx.finish();
                return Err(CliError::failure(format!(
                    "{title}: complete grid produced no figure"
                )));
            }
            (Err(degraded), _) => {
                ctx.finish();
                return Err(CliError::degraded(format!(
                    "{title}: {} grid item(s) poisoned — partial results above",
                    degraded.poisoned
                )));
            }
        }
    }
    // A tiny shared-measure sanity line so users see the baseline too.
    let base = measure_jobs(
        &kernel,
        &layouts_with(
            &kernel,
            sdet.line_size,
            kernel.records.a,
            baseline_layouts(&kernel, sdet.line_size)
                .layout(kernel.records.a)
                .clone(),
        ),
        &Machine::superdome(128),
        &sdet,
        runs,
        jobs,
    );
    println!("(baseline sanity: {:.1} scripts/Mcycle)", base.mean);
    ctx.finish();
    Ok(())
}

/// Parses an optional unsigned flag, rejecting malformed values.
fn parse_uint_flag(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("bad {name} `{v}`"))),
        None => Ok(default),
    }
}

/// `slopt-tool search`: run the annealing portfolio against the greedy
/// clustering on the built-in kernel, the shipped stress workload
/// (`--stress`), or a user workload file (`--program FILE`), validating
/// the winner in simulated cycles. Deterministic per `--seed` and
/// bit-identical for every `--jobs` value.
pub fn search(args: &[String]) -> Result<(), CliError> {
    let seed = parse_uint_flag(args, "--seed", 42)?;
    let chains = parse_uint_flag(args, "--chains", 6)?.max(1) as usize;
    let steps = parse_uint_flag(args, "--steps", 1_200)? as usize;
    let top = parse_uint_flag(args, "--validate-top", 2)?.max(1) as usize;
    let cpus = parse_cpus(args)?;
    let (_common, ctx) = exec_ctx(
        args,
        &[
            ("--seed", true),
            ("--chains", true),
            ("--steps", true),
            ("--validate-top", true),
            ("--cpus", true),
            ("--struct", true),
            ("--program", true),
            ("--stress", false),
        ],
    )?;
    let jobs = ctx.jobs;
    let obs = ctx.obs.clone();

    let params = SearchParams {
        steps,
        ..SearchParams::default()
    };
    let portfolio = Portfolio {
        chains,
        master_seed: seed,
    };
    let stress = args.iter().any(|a| a == "--stress");
    if stress && flag_value(args, "--program").is_some() {
        return Err(CliError::usage("--stress and --program are exclusive"));
    }

    let analysis_cfg = AnalysisConfig {
        machine: Machine::superdome(cpus),
        ..Default::default()
    };
    let sdet = SdetConfig::default();
    eprintln!("[search] seed {seed}, {chains} chains x {steps} steps, validating top {top} ...");

    let better = if stress {
        let w = stress_workload();
        let records = select_records(stress_records(&w), flag_value(args, "--struct"))?;
        let analysis = analyze_obs(&w, &sdet, &analysis_cfg, &obs);
        search_table(
            &w, &records, &analysis, &sdet, &params, portfolio, top, jobs, &obs,
        )
    } else if let Some(path) = flag_value(args, "--program") {
        let input = std::fs::read_to_string(path)
            .map_err(|e| CliError::bad_input(format!("reading {path}: {e}")))?;
        let w = slopt_workload::parse_workload_file(&input)
            .map_err(|e| CliError::bad_input(format!("{path}:{e}")))?;
        let all: Vec<(String, RecordId)> = w
            .program()
            .registry()
            .records()
            .map(|(id, ty)| (ty.name().to_string(), id))
            .collect();
        let records = select_records(all, flag_value(args, "--struct"))?;
        let analysis = analyze_obs(&w, &sdet, &analysis_cfg, &obs);
        search_table(
            &w, &records, &analysis, &sdet, &params, portfolio, top, jobs, &obs,
        )
    } else {
        let kernel = build_kernel();
        let all: Vec<(String, RecordId)> = kernel
            .records
            .all()
            .iter()
            .map(|&(l, r)| (l.to_string(), r))
            .collect();
        let wanted = flag_value(args, "--struct").map(str::to_ascii_uppercase);
        let records = select_records(all, wanted.as_deref())?;
        let analysis = analyze_obs(&kernel, &sdet, &analysis_cfg, &obs);
        search_table(
            &kernel, &records, &analysis, &sdet, &params, portfolio, top, jobs, &obs,
        )
    };
    let (better, total) = better;
    println!("search: strictly better objective than greedy on {better}/{total} structs");
    ctx.finish();
    Ok(())
}

/// Filters a record list down to `--struct NAME` when given.
fn select_records(
    all: Vec<(String, RecordId)>,
    wanted: Option<&str>,
) -> Result<Vec<(String, RecordId)>, CliError> {
    match wanted {
        None => Ok(all),
        Some(name) => {
            let hit: Vec<_> = all.iter().filter(|(n, _)| n == name).cloned().collect();
            if hit.is_empty() {
                let known: Vec<&str> = all.iter().map(|(n, _)| n.as_str()).collect();
                return Err(CliError::usage(format!(
                    "no struct `{name}` (known: {})",
                    known.join(", ")
                )));
            }
            Ok(hit)
        }
    }
}

/// Runs the greedy-vs-search comparison over one workload's records and
/// prints its table. Returns `(strictly_better, total)`.
#[allow(clippy::too_many_arguments)]
fn search_table<W: WorkloadSpec + Sync>(
    w: &W,
    records: &[(String, RecordId)],
    analysis: &KernelAnalysis,
    sdet: &SdetConfig,
    params: &SearchParams,
    portfolio: Portfolio,
    top: usize,
    jobs: usize,
    obs: &slopt_obs::Obs,
) -> (usize, usize) {
    let tool = ToolParams::default();
    let machine = Machine::superdome(16);
    let runs = 5;
    println!(
        "{:<12} {:>14} {:>14} {:>12}  {:>10}",
        "struct", "greedy obj", "search obj", "delta", "sim-vs-tool%"
    );
    let mut better = 0usize;
    for (name, rec) in records {
        let rec = *rec;
        let search = search_for_obs(w, analysis, rec, tool, params, portfolio, jobs, obs);
        let (validated, best_i) = validate_top_k(w, &search, tool, &machine, sdet, top, runs, jobs);
        let suggestion = suggest_for_obs(w, analysis, rec, tool, obs);
        let tool_tp = measure_jobs(
            w,
            &layouts_with(w, sdet.line_size, rec, suggestion.layout.clone()),
            &machine,
            sdet,
            runs,
            jobs,
        );
        let win = search.outcome.winner();
        if search.outcome.improved() {
            better += 1;
        }
        println!(
            "{:<12} {:>14.6} {:>14.6} {:>+12.6}  {:>+10.2}",
            name,
            search.outcome.greedy_score,
            win.score,
            win.score - search.outcome.greedy_score,
            validated[best_i].throughput.pct_vs(&tool_tp),
        );
    }
    (better, records.len())
}

/// `slopt-tool stats <trace.jsonl> [--prom]`: replay a saved
/// `slopt-trace/1` run trace and print the aggregate counter/span/
/// histogram table it implies — or, with `--prom`, the same aggregates in
/// Prometheus text exposition format (self-checked before printing).
pub fn stats(args: &[String]) -> Result<(), CliError> {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return Err(CliError::usage(
            "usage: slopt-tool stats <trace.jsonl> [--prom]",
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::bad_input(format!("reading {path}: {e}")))?;
    let summary = slopt_obs::replay::replay_str(&text)
        .map_err(|e| CliError::bad_input(format!("{path}: {e}")))?;
    if args.iter().any(|a| a == "--prom") {
        let snap = slopt_obs::prom::MetricsSnapshot::from_replay(&summary);
        let exposition = snap.to_prometheus();
        // Self-check: never emit an exposition a scraper would reject.
        slopt_obs::prom::validate(&exposition)
            .map_err(|e| CliError::failure(format!("prometheus self-check failed: {e}")))?;
        print!("{exposition}");
    } else {
        print!("{summary}");
    }
    Ok(())
}

/// `slopt-tool flame <trace.jsonl>`: export a saved trace as a folded
/// stack profile (FlameGraph collapsed format) on stdout, one
/// `path;to;frame <self_us>` line per distinct span stack. Pipe through
/// `flamegraph.pl` or `inferno-flamegraph` to render an SVG.
pub fn flame(args: &[String]) -> Result<(), CliError> {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return Err(CliError::usage("usage: slopt-tool flame <trace.jsonl>"));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::bad_input(format!("reading {path}: {e}")))?;
    let summary = slopt_obs::replay::replay_str(&text)
        .map_err(|e| CliError::bad_input(format!("{path}: {e}")))?;
    print!("{}", slopt_obs::flame::folded(&summary));
    Ok(())
}

/// `slopt-tool serve` — talk to a running `slopt-serve` daemon.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    let Some(action) = args.first().filter(|a| !a.starts_with('-')) else {
        return Err(CliError::usage(
            "serve needs an action: health | advise | metrics | drain | ingest \
             (try `slopt-tool help`)",
        ));
    };
    let addr = serve_addr(args)?;
    let mut client = slopt_serve::Client::new(addr);
    match action.as_str() {
        "health" => {
            let line = client
                .health()
                .map_err(|e| CliError::failure(e.to_string()))?;
            println!("{line}");
            Ok(())
        }
        "advise" => {
            let text = client
                .advise()
                .map_err(|e| CliError::failure(e.to_string()))?;
            print!("{text}");
            Ok(())
        }
        "metrics" => {
            let text = client
                .metrics()
                .map_err(|e| CliError::failure(e.to_string()))?;
            print!("{text}");
            Ok(())
        }
        "drain" => {
            let ack = client
                .drain()
                .map_err(|e| CliError::failure(e.to_string()))?;
            println!("{ack}");
            Ok(())
        }
        "ingest" => serve_ingest(args, &mut client),
        other => Err(CliError::usage(format!(
            "unknown serve action `{other}` (health | advise | metrics | drain | ingest)"
        ))),
    }
}

/// Resolves the daemon address: `--addr` wins, else `--state-dir`'s
/// published `addr` file (written by the daemon at bind time).
fn serve_addr(args: &[String]) -> Result<String, CliError> {
    if let Some(addr) = flag_value(args, "--addr") {
        return Ok(addr.to_string());
    }
    if let Some(dir) = flag_value(args, "--state-dir") {
        let path = std::path::Path::new(dir).join("addr");
        let addr = std::fs::read_to_string(&path).map_err(|e| {
            CliError::bad_input(format!(
                "cannot read the daemon's published address {}: {e}",
                path.display()
            ))
        })?;
        return Ok(addr.trim().to_string());
    }
    Err(CliError::usage(
        "serve needs --addr HOST:PORT or --state-dir DIR (to read DIR/addr)",
    ))
}

/// `slopt-tool serve ingest`: stream every `*.slshard` under `--dir` to
/// the daemon as one collector, in deterministic (path-sorted) order,
/// with per-batch retry/backoff on transient failures.
fn serve_ingest(args: &[String], client: &mut slopt_serve::Client) -> Result<(), CliError> {
    let Some(dir) = flag_value(args, "--dir") else {
        return Err(CliError::usage(
            "serve ingest needs --dir DIR (shard files)",
        ));
    };
    let client_id: u64 = match flag_value(args, "--client-id") {
        None => 0,
        Some(raw) => raw.parse().map_err(|_| {
            CliError::usage(format!(
                "bad value `{raw}` for --client-id (expected an unsigned integer)"
            ))
        })?,
    };
    let plan = match flag_value(args, "--fault-plan") {
        None => slopt_fault::FaultPlan::none(),
        Some(spec) => slopt_fault::FaultPlan::parse(spec)
            .map_err(|e| CliError::usage(format!("bad value for --fault-plan: {e}")))?,
    };
    let max_retries: u32 = match flag_value(args, "--max-retries") {
        None => 8,
        Some(raw) => raw.parse().map_err(|_| {
            CliError::usage(format!(
                "bad value `{raw}` for --max-retries (expected an unsigned integer)"
            ))
        })?,
    };

    let mut files: Vec<std::path::PathBuf> = Vec::new();
    collect_shard_files(std::path::Path::new(dir), &mut files)
        .map_err(|e| CliError::bad_input(format!("walking {dir}: {e}")))?;
    files.sort();
    if files.is_empty() {
        return Err(CliError::bad_input(format!(
            "no *.slshard files under {dir}"
        )));
    }
    let obs = slopt_obs::Obs::disabled();
    for (seq, path) in files.iter().enumerate() {
        let samples = slopt_sample::read_shard(path)
            .map_err(|e| CliError::bad_input(format!("reading {}: {e}", path.display())))?;
        let batch = slopt_serve::IngestBatch {
            client: client_id,
            seq: seq as u64,
            samples,
        };
        let ack = client
            .ingest(&batch, &plan, max_retries, &obs)
            .map_err(|e| CliError::failure(e.to_string()))?;
        println!("[ingest] client {client_id} seq {seq}: {ack}");
    }
    Ok(())
}

fn collect_shard_files(
    dir: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_shard_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "slshard") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn machine_specs_parse() {
        assert_eq!(parse_machine("bus4").unwrap().cpus(), 4);
        assert_eq!(parse_machine("bus2").unwrap().cpus(), 2);
        assert_eq!(parse_machine("superdome16").unwrap().cpus(), 16);
        assert_eq!(parse_machine("superdome128").unwrap().cpus(), 128);
        assert!(parse_machine("superdome129").is_err());
        assert!(parse_machine("superdome0").is_err());
        assert!(parse_machine("torus8").is_err());
        assert!(parse_machine("busx").is_err());
    }

    #[test]
    fn flags_parse_positionally() {
        let args: Vec<String> = ["--struct", "B", "--out", "/tmp/x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--struct"), Some("B"));
        assert_eq!(flag_value(&args, "--out"), Some("/tmp/x"));
        assert_eq!(flag_value(&args, "--cpus"), None);
    }

    #[test]
    fn jobs_flag_is_parsed_by_the_shared_args_and_misuse_exits_2() {
        let bad: Vec<String> = ["--jobs", "x"].iter().map(|s| s.to_string()).collect();
        assert_eq!(figures(&bad).unwrap_err().code, exit::USAGE);
        assert_eq!(search(&bad).unwrap_err().code, exit::USAGE);
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert_eq!(CommonArgs::parse(&zero).unwrap().jobs, 1);
    }

    #[test]
    fn stats_requires_a_path() {
        assert_eq!(stats(&[]).unwrap_err().code, exit::USAGE);
        let args = vec!["--stats".to_string()];
        assert_eq!(stats(&args).unwrap_err().code, exit::USAGE);
    }

    #[test]
    fn stats_classifies_unreadable_input() {
        let args = vec!["/nonexistent/trace.jsonl".to_string()];
        let err = stats(&args).unwrap_err();
        assert_eq!(err.code, exit::BAD_INPUT);
        assert!(err.message.contains("reading"));
    }

    #[test]
    fn stats_replays_a_written_trace() {
        let path = std::env::temp_dir().join("slopt_cli_stats_test.jsonl");
        let obs = slopt_obs::Obs::to_trace_file(&path).unwrap();
        {
            let _s = obs.span("phase");
            obs.counter("widgets", 2);
        }
        obs.finish();
        let args = vec![path.to_string_lossy().into_owned()];
        stats(&args).unwrap();
        // --prom on the same trace renders a self-checked exposition.
        let prom_args = vec![args[0].clone(), "--prom".to_string()];
        stats(&prom_args).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flame_exports_a_written_trace() {
        let path = std::env::temp_dir().join("slopt_cli_flame_test.jsonl");
        let obs = slopt_obs::Obs::to_trace_file(&path).unwrap();
        {
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
        }
        obs.finish();
        let args = vec![path.to_string_lossy().into_owned()];
        flame(&args).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flame_requires_a_path_and_classifies_bad_input() {
        assert_eq!(flame(&[]).unwrap_err().code, exit::USAGE);
        let args = vec!["/nonexistent/trace.jsonl".to_string()];
        assert_eq!(flame(&args).unwrap_err().code, exit::BAD_INPUT);
    }

    #[test]
    fn advise_rejects_unknown_struct() {
        let args: Vec<String> = ["--struct", "Z"].iter().map(|s| s.to_string()).collect();
        let err = advise(&args).unwrap_err();
        assert!(err.message.contains("no struct"));
        assert_eq!(err.code, exit::USAGE);
    }

    #[test]
    fn advise_rejects_missing_program_file() {
        let args: Vec<String> = ["--program", "/nonexistent/x.sirw"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = advise(&args).unwrap_err();
        assert!(err.message.contains("reading"));
        assert_eq!(err.code, exit::BAD_INPUT);
    }

    #[test]
    fn cpus_flag_is_a_usage_error_when_out_of_range() {
        for bad in [["--cpus", "0"], ["--cpus", "999"], ["--cpus", "x"]] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert_eq!(parse_cpus(&args).unwrap_err().code, exit::USAGE, "{bad:?}");
        }
        assert_eq!(parse_cpus(&[]).unwrap(), 16);
    }

    #[test]
    fn search_flag_conflicts_and_bad_values_are_usage_errors() {
        let both: Vec<String> = ["--stress", "--program", "x.sirw"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(search(&both).unwrap_err().code, exit::USAGE);
        let bad_seed: Vec<String> = ["--seed", "xyz"].iter().map(|s| s.to_string()).collect();
        assert_eq!(search(&bad_seed).unwrap_err().code, exit::USAGE);
    }

    #[test]
    fn search_rejects_unknown_struct_with_known_names() {
        let args: Vec<String> = ["--stress", "--struct", "nope"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = search(&args).unwrap_err();
        assert_eq!(err.code, exit::USAGE);
        assert!(err.message.contains("dcache_ent"), "{}", err.message);
    }

    #[test]
    fn search_rejects_missing_program_file() {
        let args: Vec<String> = ["--program", "/nonexistent/w.sirw"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(search(&args).unwrap_err().code, exit::BAD_INPUT);
    }

    #[test]
    fn bad_fault_plan_is_a_usage_error() {
        let args: Vec<String> = ["figures", "--fault-plan", "bogus=1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = figures(&args[1..]).unwrap_err();
        assert_eq!(err.code, exit::USAGE);
        assert!(err.message.contains("bogus"));
    }
}
