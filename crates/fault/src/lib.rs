//! # slopt-fault — deterministic fault injection
//!
//! The Code Concurrency estimator is a *sampling* technique: in
//! production it ingests lossy shard streams from flaky collectors, and
//! the experiment runner fans hours of work across worker threads that
//! can stall, die, or lose their I/O. This crate is the layer that makes
//! those failure modes *testable*: a [`FaultPlan`] is a seeded, fully
//! deterministic schedule of injected faults — worker panics, transient
//! errors, permanent errors, slow workers, dropped checkpoint appends,
//! transient read errors, corrupt bytes — that call sites consult at
//! explicit injection points.
//!
//! Two properties make the layer useful rather than merely chaotic:
//!
//! 1. **Decisions are pure functions.** Whether a fault fires at
//!    `(site, index, attempt)` depends only on the plan's seed and
//!    rates — never on thread scheduling, wall-clock time, or global
//!    state. A fault plan therefore composes with the workspace's
//!    determinism contract: two runs under the same plan inject the
//!    same faults at the same grid items, under any `--jobs`.
//! 2. **Faults are typed.** Transient faults (retry and the result is
//!    bit-identical to a clean run) are distinct from permanent faults
//!    (the item is quarantined and the run degrades with marked holes
//!    and exit code [`exit::DEGRADED`]).
//!
//! The supervised worker pool that *contains* these faults lives beside
//! the plain scheduler in `slopt_ir::par` ([`par_map_supervised`]); this
//! crate owns the injection side and the process-level exit-code
//! vocabulary.
//!
//! [`par_map_supervised`]: https://docs.rs/slopt-ir
//!
//! ## Spec grammar
//!
//! A plan is written as a comma-separated list of `key=value` pairs
//! (the `--fault-plan` flag):
//!
//! ```text
//! seed=42,panic=0.1,transient=0.25,slow=0.1,slow-ms=5,permanent=0.02
//! ```
//!
//! | key | meaning |
//! |---|---|
//! | `seed` | decision seed (default 0) |
//! | `panic` | probability a worker attempt panics |
//! | `transient` | probability a worker attempt fails retryably |
//! | `permanent` | probability an *item* fails on every attempt |
//! | `slow` | probability a worker attempt stalls `slow-ms` |
//! | `slow-ms` | stall duration in milliseconds (default 25) |
//! | `write-error` | probability a checkpoint append is dropped |
//! | `read-error` | probability a wrapped read fails transiently |
//! | `corrupt` | probability a wrapped read returns corrupted bytes |
//!
//! All probabilities are in `[0, 1]`; omitted keys default to 0, so the
//! empty spec is the no-op plan.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod io;
pub mod plan;

pub use plan::{FaultKind, FaultPlan, PlanError};

/// Process exit codes shared by `slopt-tool` and the figure/ablation
/// binaries. Distinct codes let scripts (and CI) tell *why* a run did
/// not produce a full result.
pub mod exit {
    /// Clean run, full result.
    pub const OK: u8 = 0;
    /// Unclassified internal failure (I/O, invariant breach).
    pub const FAILURE: u8 = 1;
    /// Command-line misuse: unknown flag, malformed flag value.
    pub const USAGE: u8 = 2;
    /// Input files that exist but do not parse or validate.
    pub const BAD_INPUT: u8 = 3;
    /// The run completed *degraded*: permanent faults left explicitly
    /// marked holes in the result (see the `FaultReport`).
    pub const DEGRADED: u8 = 4;
}
