//! Seeded fault plans: the `--fault-plan` spec and its deterministic
//! decision function.

use std::error::Error;
use std::fmt;

/// The kinds of fault a plan can inject. Each kind has its own decision
/// stream: whether `panic` fires at an item is independent of whether
/// `transient` does.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum FaultKind {
    /// A worker attempt panics (contained by the supervised pool).
    Panic,
    /// A worker attempt fails with a retryable error.
    Transient,
    /// An item fails identically on every attempt.
    Permanent,
    /// A worker attempt stalls for [`FaultPlan::slow_ms`] milliseconds.
    Slow,
    /// A checkpoint append is dropped (the item recomputes on resume).
    WriteError,
    /// A wrapped read fails with a retryable I/O error.
    ReadError,
    /// A wrapped read returns deterministically corrupted bytes.
    Corrupt,
}

/// All kinds, in spec-key order.
pub const KINDS: [FaultKind; 7] = [
    FaultKind::Panic,
    FaultKind::Transient,
    FaultKind::Permanent,
    FaultKind::Slow,
    FaultKind::WriteError,
    FaultKind::ReadError,
    FaultKind::Corrupt,
];

impl FaultKind {
    /// The spec key (and counter suffix) of this kind.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::Slow => "slow",
            FaultKind::WriteError => "write-error",
            FaultKind::ReadError => "read-error",
            FaultKind::Corrupt => "corrupt",
        }
    }

    fn index(self) -> usize {
        KINDS.iter().position(|&k| k == self).expect("kind listed")
    }
}

/// A malformed `--fault-plan` spec, carrying the offending token.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct PlanError {
    /// The `key=value` token that failed to parse.
    pub token: String,
    /// What is wrong with it.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan token `{}`: {}", self.token, self.message)
    }
}

impl Error for PlanError {}

/// A seeded, deterministic fault schedule. See the crate docs for the
/// spec grammar and the determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; KINDS.len()],
    slow_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            rates: [0.0; KINDS.len()],
            slow_ms: 25,
        }
    }
}

impl FaultPlan {
    /// The no-op plan: nothing ever fires.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses a comma-separated `key=value` spec. The empty string is
    /// the no-op plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let Some((key, value)) = token.split_once('=') else {
                return Err(PlanError {
                    token: token.to_string(),
                    message: "expected key=value".to_string(),
                });
            };
            let bad = |message: String| PlanError {
                token: token.to_string(),
                message,
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| bad(format!("bad seed `{value}`")))?;
                }
                "slow-ms" => {
                    plan.slow_ms = value
                        .parse()
                        .map_err(|_| bad(format!("bad millisecond count `{value}`")))?;
                }
                _ => {
                    let Some(kind) = KINDS.iter().find(|k| k.key() == key) else {
                        let known: Vec<&str> = KINDS.iter().map(|k| k.key()).collect();
                        return Err(bad(format!(
                            "unknown key `{key}` (seed, slow-ms, {})",
                            known.join(", ")
                        )));
                    };
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| bad(format!("bad probability `{value}`")))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(bad(format!("probability {rate} outside [0, 1]")));
                    }
                    plan.rates[kind.index()] = rate;
                }
            }
        }
        Ok(plan)
    }

    /// The decision seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rate of `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.index()]
    }

    /// How long an injected [`FaultKind::Slow`] stall lasts.
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// Whether this plan can ever fire anything.
    pub fn is_noop(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }

    /// Whether `kind` fires at `(site, index, attempt)` — a pure
    /// function of the plan and its arguments. [`FaultKind::Permanent`]
    /// deliberately ignores `attempt`, so a permanently faulted item
    /// fails identically however often it is retried.
    pub fn fires(&self, kind: FaultKind, site: &str, index: u64, attempt: u32) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let attempt = match kind {
            FaultKind::Permanent => 0,
            _ => attempt,
        };
        self.unit(kind, site, index, attempt) < rate
    }

    /// A deterministic value in `[0, 1)` for the decision point.
    fn unit(&self, kind: FaultKind, site: &str, index: u64, attempt: u32) -> f64 {
        let h = self.mix(kind, site, index, attempt);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A deterministic u64 for the decision point (also used to pick
    /// which byte [`crate::io::corrupt_bytes`] flips).
    pub(crate) fn mix(&self, kind: FaultKind, site: &str, index: u64, attempt: u32) -> u64 {
        // FNV-1a over the identifying parts, then a SplitMix64 finalizer
        // so nearby indices decorrelate.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(&self.seed.to_le_bytes());
        eat(kind.key().as_bytes());
        eat(site.as_bytes());
        eat(&index.to_le_bytes());
        eat(&attempt.to_le_bytes());
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl fmt::Display for FaultPlan {
    /// The canonical spec string: `seed`, non-zero rates in key order,
    /// `slow-ms` when it differs from the default. `parse` accepts the
    /// output and reconstructs an equal plan.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for kind in KINDS {
            let rate = self.rate(kind);
            if rate > 0.0 {
                write!(f, ",{}={rate}", kind.key())?;
            }
        }
        if self.slow_ms != FaultPlan::default().slow_ms {
            write!(f, ",slow-ms={}", self.slow_ms)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_noop() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan, FaultPlan::none());
        for kind in KINDS {
            for i in 0..64 {
                assert!(!plan.fires(kind, "worker", i, 0));
            }
        }
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let spec = "seed=42,panic=0.1,transient=0.25,slow=0.5,slow-ms=5";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate(FaultKind::Panic), 0.1);
        assert_eq!(plan.rate(FaultKind::Transient), 0.25);
        assert_eq!(plan.slow_ms(), 5);
        assert_eq!(plan.rate(FaultKind::Permanent), 0.0);
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_rejects_malformed_tokens_with_the_offender() {
        for (spec, needle) in [
            ("panic", "key=value"),
            ("panic=x", "bad probability"),
            ("panic=1.5", "outside [0, 1]"),
            ("seed=banana", "bad seed"),
            ("slow-ms=-3", "bad millisecond"),
            ("tornado=0.5", "unknown key"),
        ] {
            let e = FaultPlan::parse(spec).expect_err(spec);
            assert!(e.to_string().contains(needle), "{spec}: {e}");
            assert!(!e.token.is_empty());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1,transient=0.5").unwrap();
        let b = FaultPlan::parse("seed=2,transient=0.5").unwrap();
        let fires_a: Vec<bool> = (0..256)
            .map(|i| a.fires(FaultKind::Transient, "worker", i, 0))
            .collect();
        let again: Vec<bool> = (0..256)
            .map(|i| a.fires(FaultKind::Transient, "worker", i, 0))
            .collect();
        assert_eq!(fires_a, again, "same plan, same decisions");
        let fires_b: Vec<bool> = (0..256)
            .map(|i| b.fires(FaultKind::Transient, "worker", i, 0))
            .collect();
        assert_ne!(fires_a, fires_b, "seed must matter");
        let hits = fires_a.iter().filter(|&&f| f).count();
        assert!((64..192).contains(&hits), "rate 0.5 over 256 draws: {hits}");
    }

    #[test]
    fn kinds_sites_and_attempts_have_independent_streams() {
        let plan = FaultPlan::parse("seed=7,panic=0.5,transient=0.5").unwrap();
        let stream = |kind, site: &str, attempt| -> Vec<bool> {
            (0..128)
                .map(|i| plan.fires(kind, site, i, attempt))
                .collect()
        };
        assert_ne!(
            stream(FaultKind::Panic, "worker", 0),
            stream(FaultKind::Transient, "worker", 0)
        );
        assert_ne!(
            stream(FaultKind::Panic, "worker", 0),
            stream(FaultKind::Panic, "ckpt", 0)
        );
        assert_ne!(
            stream(FaultKind::Panic, "worker", 0),
            stream(FaultKind::Panic, "worker", 1),
            "transient faults vary by attempt — that is what makes retries succeed"
        );
    }

    #[test]
    fn permanent_faults_ignore_the_attempt_number() {
        let plan = FaultPlan::parse("seed=3,permanent=0.5").unwrap();
        for i in 0..128 {
            let first = plan.fires(FaultKind::Permanent, "worker", i, 0);
            for attempt in 1..8 {
                assert_eq!(
                    first,
                    plan.fires(FaultKind::Permanent, "worker", i, attempt),
                    "item {i} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let plan = FaultPlan::parse("panic=1,transient=0").unwrap();
        for i in 0..64 {
            assert!(plan.fires(FaultKind::Panic, "s", i, 0));
            assert!(!plan.fires(FaultKind::Transient, "s", i, 0));
        }
    }
}
