//! Fault-injectable I/O: the crash-free input boundary's test double.
//!
//! Production collectors hand the pipeline shard files that may be
//! truncated, corrupted, or temporarily unreadable. These wrappers
//! reproduce those conditions *deterministically* from a [`FaultPlan`],
//! so the ingestion layer's skip/retry paths can be exercised
//! systematically instead of hoping a flaky filesystem shows up in CI.

use crate::plan::{FaultKind, FaultPlan};
use std::io;
use std::path::Path;
use std::time::Duration;

/// Reads a whole file, subject to the plan's `read-error` (a retryable
/// [`io::ErrorKind::Interrupted`] failure) and `corrupt` (deterministic
/// byte flips) faults at `(site, index, attempt)`.
///
/// Retrying with a higher `attempt` re-rolls the transient decision —
/// the same contract as the supervised worker pool.
pub fn read_bytes(
    plan: &FaultPlan,
    site: &str,
    index: u64,
    attempt: u32,
    path: &Path,
) -> io::Result<Vec<u8>> {
    if plan.fires(FaultKind::ReadError, site, index, attempt) {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient read error ({site} #{index}, attempt {attempt})"),
        ));
    }
    let mut bytes = std::fs::read(path)?;
    corrupt_bytes(plan, site, index, &mut bytes);
    Ok(bytes)
}

/// Applies the plan's `corrupt` fault to an in-memory buffer: flips one
/// deterministically chosen byte. Returns whether a corruption was
/// injected. Corruption is attempt-independent — a corrupted input stays
/// corrupted on re-read, like a bad sector or a truncated upload.
pub fn corrupt_bytes(plan: &FaultPlan, site: &str, index: u64, bytes: &mut [u8]) -> bool {
    if bytes.is_empty() || !plan.fires(FaultKind::Corrupt, site, index, 0) {
        return false;
    }
    let pos = (plan.mix(FaultKind::Corrupt, site, index, 1) as usize) % bytes.len();
    bytes[pos] ^= 0xa5;
    true
}

/// Runs a fallible I/O operation up to `1 + max_retries` times,
/// retrying only [`io::ErrorKind::Interrupted`] failures with a bounded
/// deterministic backoff (`base << attempt`, capped at 50 ms). The
/// closure receives the attempt number so injected transients can
/// re-roll.
pub fn retry_io<T>(max_retries: u32, mut f: impl FnMut(u32) -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < max_retries => {
                std::thread::sleep(backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The bounded deterministic backoff schedule shared with the
/// supervised pool: 1 ms doubling per attempt, capped at 50 ms.
pub fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((1u64 << attempt.min(6)).min(50))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("slopt_fault_io_{}_{tag}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn clean_plan_reads_verbatim() {
        let path = temp_file("clean", b"hello shards");
        let plan = FaultPlan::none();
        let bytes = read_bytes(&plan, "shard", 0, 0, &path).unwrap();
        assert_eq!(bytes, b"hello shards");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_deterministic_and_single_byte() {
        let original = vec![0u8; 64];
        let plan = FaultPlan::parse("seed=5,corrupt=1").unwrap();
        let mut a = original.clone();
        let mut b = original.clone();
        assert!(corrupt_bytes(&plan, "shard", 3, &mut a));
        assert!(corrupt_bytes(&plan, "shard", 3, &mut b));
        assert_eq!(a, b, "same decision point, same corruption");
        let flipped = a.iter().zip(&original).filter(|(x, y)| x != y).count();
        assert_eq!(flipped, 1);
        let mut c = original.clone();
        assert!(corrupt_bytes(&plan, "shard", 4, &mut c));
        // Different index may flip a different byte (not asserted
        // strictly — both streams are valid — but corruption must fire).
        assert_ne!(c, original);
    }

    #[test]
    fn transient_read_errors_retry_to_success() {
        let path = temp_file("retry", b"payload");
        // read-error at 0.9: some attempts fail, but with enough
        // retries a success attempt exists for this pinned seed.
        let plan = FaultPlan::parse("seed=11,read-error=0.9").unwrap();
        let bytes = retry_io(16, |attempt| read_bytes(&plan, "shard", 7, attempt, &path)).unwrap();
        assert_eq!(bytes, b"payload");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retry_io_gives_up_after_the_budget() {
        let mut calls = 0;
        let r: io::Result<()> = retry_io(3, |_| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "always"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 4, "1 initial + 3 retries");
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let mut calls = 0;
        let r: io::Result<()> = retry_io(5, |_| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(backoff(0), Duration::from_millis(1));
        assert_eq!(backoff(1), Duration::from_millis(2));
        assert!(backoff(63) <= Duration::from_millis(50));
    }
}
