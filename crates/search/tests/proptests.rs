//! Property tests for the annealing portfolio over randomized FLGs:
//! the winner is always a valid partition scored by the canonical
//! objective, never falls below the greedy start, and the whole
//! portfolio is bit-reproducible for every `jobs` value.

use proptest::prelude::*;
use slopt_core::{clustering_score_with, Flg};
use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType};
use slopt_search::{search_layout, Portfolio, SearchParams};

fn record_u64(n: usize) -> RecordType {
    RecordType::new(
        "R",
        (0..n)
            .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
            .collect(),
    )
}

fn arb_flg(max_fields: usize) -> impl Strategy<Value = Flg> {
    (2..max_fields).prop_flat_map(|n| {
        let hotness = prop::collection::vec(0u64..10_000, n..=n);
        let edges =
            prop::collection::vec((0u32..n as u32, 0u32..n as u32, -500.0f64..500.0), 0..n * 3);
        (hotness, edges).prop_map(move |(h, es)| {
            let es: Vec<_> = es
                .into_iter()
                .filter(|(a, b, _)| a != b)
                .map(|(a, b, w)| (FieldIdx(a), FieldIdx(b), w))
                .collect();
            Flg::from_parts(RecordId(0), h, es)
        })
    })
}

proptest! {
    #[test]
    fn winner_is_valid_never_below_greedy_and_jobs_invariant(
        flg in arb_flg(12),
        seed in any::<u64>(),
    ) {
        let n = flg.field_count();
        let rec = record_u64(n);
        let params = SearchParams { steps: 120, ..SearchParams::default() };
        let portfolio = Portfolio { chains: 3, master_seed: seed };
        let base = search_layout(&flg, &rec, &params, portfolio, 1);

        // Winner: valid partition, canonical score, never below greedy.
        let clustering = base.winner().clustering();
        prop_assert_eq!(clustering.field_count(), n);
        prop_assert_eq!(
            base.winner().score.to_bits(),
            clustering_score_with(&flg, &clustering).to_bits()
        );
        prop_assert!(base.winner().score >= base.greedy_score);

        // Bit-reproducible at any fan-out.
        for jobs in [2usize, 5] {
            let out = search_layout(&flg, &rec, &params, portfolio, jobs);
            prop_assert_eq!(out.best, base.best);
            for (a, b) in out.chains.iter().zip(&base.chains) {
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                prop_assert_eq!(&a.clusters, &b.clusters);
            }
        }
    }
}
