//! # slopt-search — stochastic layout superoptimization
//!
//! The paper's greedy clustering (Figs. 6–7) commits to a single point
//! in an enormous layout space, and [`slopt_core::refine`] only walks
//! uphill from there. This crate searches: a portfolio of independently
//! seeded **Metropolis / simulated-annealing chains** explores
//! field→cluster assignments and intra-cluster permutations through the
//! [`DeltaObjective`] move set (move-field, swap-fields — including
//! same-cluster position swaps — split-cluster, merge-cluster), each
//! proposal scored in O(cluster degree) instead of a full objective
//! recompute.
//!
//! Determinism is a hard contract, like everywhere else in the
//! workspace:
//!
//! * each chain is a pure function of `(FLG, record, params, seed)` —
//!   its RNG is a [`SmallRng`] seeded from the chain seed, and its
//!   tracked objective is the delta evaluator's bit-identical score;
//! * chain seeds derive from the master seed by SplitMix64 expansion,
//!   so the portfolio is a pure function of the master seed;
//! * chains fan out on [`par_map_supervised`] and reduce in chain-index
//!   order with a strictly-greater comparison, so the winner — and every
//!   reported bit — is identical for every `jobs` value (ties go to the
//!   earliest seeded chain).
//!
//! The final candidate never scores below the greedy clustering it
//! starts from: every chain begins at the greedy solution, tracks its
//! best-seen state, and finishes with a steepest-ascent polish
//! (the [`refine`](slopt_core::refine) move set, driven through the
//! delta evaluator).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use slopt_core::cluster::{cluster_with_obs, Clustering};
use slopt_core::delta::{DeltaObjective, Move};
use slopt_core::flg::FlgView;
use slopt_core::par::{par_map_supervised, FaultReport, SupervisePolicy};
use slopt_ir::interp::SplitMix64;
use slopt_ir::types::{FieldIdx, RecordType};
use slopt_obs::Obs;

/// Annealing-schedule and budget knobs of one chain.
#[derive(Copy, Clone, Debug)]
pub struct SearchParams {
    /// Proposals per chain.
    pub steps: usize,
    /// Initial temperature, as a multiple of the FLG's mean absolute
    /// edge weight (the scale-free form keeps one default meaningful
    /// across workloads).
    pub t0: f64,
    /// Final temperature, in the same relative units.
    pub t_end: f64,
    /// Cap on accepted steepest-ascent moves in the final polish.
    pub polish_moves: usize,
    /// Cache-line size the capacity rule packs against.
    pub line_size: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            steps: 1500,
            t0: 1.0,
            t_end: 0.01,
            polish_moves: 10_000,
            line_size: slopt_ir::DEFAULT_LINE_SIZE,
        }
    }
}

/// Portfolio shape: how many chains, derived from which master seed.
#[derive(Copy, Clone, Debug)]
pub struct Portfolio {
    /// Number of independently seeded chains.
    pub chains: usize,
    /// Master seed; per-chain seeds are its SplitMix64 expansion.
    pub master_seed: u64,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio {
            chains: 8,
            master_seed: 42,
        }
    }
}

/// What one chain found.
#[derive(Clone, Debug)]
pub struct ChainResult {
    /// Chain index within the portfolio (the tie-break key).
    pub chain: usize,
    /// The chain's RNG seed.
    pub seed: u64,
    /// Objective of `clusters` — bit-identical to
    /// [`clustering_score`](slopt_core::clustering_score) on them.
    pub score: f64,
    /// The best clustering the chain found (no empty clusters).
    pub clusters: Vec<Vec<FieldIdx>>,
    /// Proposals drawn.
    pub proposed: u64,
    /// Proposals accepted (annealing phase only).
    pub accepted: u64,
    /// Accepted moves during the final polish.
    pub polished: u64,
}

impl ChainResult {
    /// The chain's best clustering as a [`Clustering`].
    pub fn clustering(&self) -> Clustering {
        Clustering::new(self.clusters.clone())
    }
}

/// What the portfolio found.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Index into `chains` of the winner: highest score, ties to the
    /// lowest chain index.
    pub best: usize,
    /// Every chain's result, in chain order.
    pub chains: Vec<ChainResult>,
    /// Objective of the shared greedy starting point.
    pub greedy_score: f64,
    /// Supervision report of the chain fan-out.
    pub report: FaultReport,
}

impl SearchOutcome {
    /// The winning chain.
    pub fn winner(&self) -> &ChainResult {
        &self.chains[self.best]
    }

    /// Whether the winner is strictly better than greedy *as an
    /// objective value*, not merely in the last ulp. Two distinct
    /// partitions with mathematically equal objectives can differ by
    /// one ulp under the canonical fold; this uses the same `1e-9`
    /// threshold (relative to the greedy score) as the polish pass, so
    /// fold noise never counts as an improvement.
    pub fn improved(&self) -> bool {
        let eps = 1e-9 * self.greedy_score.abs().max(1.0);
        self.winner().score - self.greedy_score > eps
    }

    /// The distinct top-`k` candidate clusterings, best first (score
    /// descending, ties by chain index), deduplicated by cluster list.
    pub fn top_k(&self, k: usize) -> Vec<&ChainResult> {
        let mut order: Vec<&ChainResult> = self.chains.iter().collect();
        order.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.chain.cmp(&b.chain))
        });
        let mut out: Vec<&ChainResult> = Vec::new();
        for c in order {
            if out.len() >= k {
                break;
            }
            if !out.iter().any(|o| o.clusters == c.clusters) {
                out.push(c);
            }
        }
        out
    }
}

/// Mean absolute weight over the FLG's non-zero edges — the temperature
/// scale. `1.0` when the graph has no edges (any positive value works:
/// with no edges every move is objective-neutral).
fn weight_scale<V: FlgView>(flg: &V) -> f64 {
    let n = flg.field_count() as u32;
    let (mut total, mut edges) = (0.0f64, 0u64);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = flg.weight(FieldIdx(i), FieldIdx(j));
            if w != 0.0 {
                total += w.abs();
                edges += 1;
            }
        }
    }
    if edges == 0 {
        1.0
    } else {
        total / edges as f64
    }
}

/// Draws one proposal. The draw count per call depends only on the
/// evaluator's (deterministic) state, so the RNG stream is reproducible.
fn propose<V: FlgView>(rng: &mut SmallRng, d: &DeltaObjective<'_, V>) -> Option<Move> {
    let n = d.clusters().iter().map(Vec::len).sum::<usize>() as u32;
    let k = d.cluster_count();
    debug_assert!(n >= 2 && k >= 1);
    match rng.gen_range(0u32..10) {
        // Move a field to another cluster or a fresh singleton.
        0..=5 => Some(Move::MoveField {
            field: FieldIdx(rng.gen_range(0..n)),
            dst: rng.gen_range(0..=k),
        }),
        // Exchange two positions (same cluster = permutation).
        6 | 7 => {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            Some(Move::SwapFields {
                a: FieldIdx(a),
                b: FieldIdx(b),
            })
        }
        // Split one cluster in two.
        8 => {
            let c = rng.gen_range(0..k);
            let len = d.clusters()[c].len();
            if len < 2 {
                return None;
            }
            Some(Move::Split {
                cluster: c,
                at: rng.gen_range(1..len),
            })
        }
        // Merge two clusters.
        _ => Some(Move::Merge {
            dst: rng.gen_range(0..k),
            src: rng.gen_range(0..k),
        }),
    }
}

/// Steepest-ascent polish over single-field moves (the
/// [`refine`](slopt_core::refine) move set) through the delta
/// evaluator. Returns accepted move count.
fn polish<V: FlgView>(d: &mut DeltaObjective<'_, V>, max_moves: usize) -> u64 {
    let n = d.clusters().iter().map(Vec::len).sum::<usize>() as u32;
    let mut accepted = 0u64;
    while (accepted as usize) < max_moves {
        let mut best: Option<(Move, f64)> = None;
        for f in (0..n).map(FieldIdx) {
            for dst in 0..=d.cluster_count() {
                let m = Move::MoveField { field: f, dst };
                if let Some(gain) = d.score_move(m) {
                    if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                        best = Some((m, gain));
                    }
                }
            }
        }
        let Some((m, _)) = best else { break };
        d.apply(m);
        accepted += 1;
    }
    accepted
}

/// Runs one annealing chain from `start`. Pure function of its
/// arguments: same inputs, same seed → bit-identical result.
pub fn run_chain<V: FlgView>(
    flg: &V,
    record: &RecordType,
    start: &Clustering,
    params: &SearchParams,
    chain: usize,
    seed: u64,
) -> ChainResult {
    let mut d = DeltaObjective::new(flg, record, start, params.line_size);
    let mut rng = SmallRng::seed_from_u64(seed);
    let scale = weight_scale(flg);
    let t0 = (params.t0 * scale).max(f64::MIN_POSITIVE);
    let t_end = (params.t_end * scale).max(f64::MIN_POSITIVE).min(t0);
    let cool = if params.steps <= 1 {
        1.0
    } else {
        (t_end / t0).powf(1.0 / (params.steps - 1) as f64)
    };

    let mut t = t0;
    let (mut proposed, mut accepted) = (0u64, 0u64);
    let mut best_score = d.score();
    let mut best = d.clusters().to_vec();
    for _ in 0..params.steps {
        proposed += 1;
        let Some(m) = propose(&mut rng, &d) else {
            t *= cool;
            continue;
        };
        if let Some(delta) = d.score_move(m) {
            // Metropolis rule: always take improvements, take regressions
            // with probability exp(delta / T).
            if delta > 0.0 || rng.gen::<f64>() < (delta / t).exp() {
                d.apply(m);
                accepted += 1;
                let s = d.score();
                if s > best_score {
                    best_score = s;
                    best = d.clusters().to_vec();
                }
            }
        }
        t *= cool;
    }

    // Polish the best-seen state, not the final (possibly hot) one.
    let best = Clustering::new(best);
    let mut d = DeltaObjective::new(flg, record, &best, params.line_size);
    let polished = polish(&mut d, params.polish_moves);
    // Canonicalize the cluster order (hottest member first, like the
    // greedy seeding order) and rescore with the canonical fold in that
    // order. Two chains that reach the same partition — or a chain that
    // ends where greedy started — now report bit-identical scores; the
    // delta evaluator's internal cluster-list order would fold the same
    // per-cluster sums in a different sequence and differ in the last
    // ulp.
    let rank: Vec<u32> = {
        let mut rank = vec![0u32; flg.field_count()];
        for (i, f) in flg.fields_by_hotness().iter().enumerate() {
            rank[f.index()] = i as u32;
        }
        rank
    };
    let mut clusters: Vec<Vec<FieldIdx>> = d.into_clustering().clusters().to_vec();
    clusters.sort_by_key(|c| c.iter().map(|f| rank[f.index()]).min().unwrap_or(u32::MAX));
    let score = slopt_core::delta::clustering_score_with(flg, &Clustering::new(clusters.clone()));
    ChainResult {
        chain,
        seed,
        score,
        clusters,
        proposed,
        accepted,
        polished,
    }
}

/// Runs the full portfolio: greedy clustering as the shared start, then
/// `portfolio.chains` independently seeded chains fanned over up to
/// `jobs` supervised workers, reduced deterministically.
///
/// Bit-reproducible per master seed at any `jobs`: chain seeds are the
/// master seed's SplitMix64 expansion, each chain is a pure function of
/// its seed, [`par_map_supervised`] returns results in chain order, and
/// the winner is chosen by strictly-greater score in that order (ties
/// go to the earliest chain).
///
/// # Panics
///
/// Panics if the record has fewer than two fields, if the FLG and
/// record disagree on the field count, or if a chain is lost to the
/// supervisor (the chain closure never returns an error, so holes are
/// impossible in practice).
pub fn search_layout<V: FlgView + Sync>(
    flg: &V,
    record: &RecordType,
    params: &SearchParams,
    portfolio: Portfolio,
    jobs: usize,
) -> SearchOutcome {
    search_layout_obs(flg, record, params, portfolio, jobs, &Obs::disabled())
}

/// [`search_layout`] with instrumentation: wraps the run in a `search`
/// span and flushes `search.chains/proposed/accepted/polished` plus a
/// `search.improved` gauge (1.0 when the winner strictly beats greedy).
///
/// # Panics
///
/// See [`search_layout`].
pub fn search_layout_obs<V: FlgView + Sync>(
    flg: &V,
    record: &RecordType,
    params: &SearchParams,
    portfolio: Portfolio,
    jobs: usize,
    obs: &Obs,
) -> SearchOutcome {
    let _span = obs.span("search");
    assert!(record.field_count() >= 2, "need at least two fields");
    assert!(portfolio.chains >= 1, "need at least one chain");
    let start = cluster_with_obs(flg, record, params.line_size, obs);
    let greedy_score = slopt_core::delta::clustering_score_with(flg, &start);

    let mut mix = SplitMix64::new(portfolio.master_seed);
    let seeds: Vec<u64> = (0..portfolio.chains).map(|_| mix.next_u64()).collect();

    let policy = SupervisePolicy::default();
    let (results, report) = par_map_supervised(jobs, &seeds, &policy, |chain, &seed, _attempt| {
        Ok::<_, slopt_core::par::WorkerError>(run_chain(flg, record, &start, params, chain, seed))
    });
    let chains: Vec<ChainResult> = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("chain {i} lost to supervisor")))
        .collect();

    // Deterministic reduction: strictly-greater in chain order.
    let mut best = 0usize;
    for (i, c) in chains.iter().enumerate() {
        if c.score > chains[best].score {
            best = i;
        }
    }
    if obs.enabled() {
        obs.counter("search.chains", chains.len() as u64);
        obs.counter("search.proposed", chains.iter().map(|c| c.proposed).sum());
        obs.counter("search.accepted", chains.iter().map(|c| c.accepted).sum());
        obs.counter("search.polished", chains.iter().map(|c| c.polished).sum());
    }
    let outcome = SearchOutcome {
        best,
        chains,
        greedy_score,
        report,
    };
    if obs.enabled() {
        obs.gauge(
            "search.improved",
            if outcome.improved() { 1.0 } else { 0.0 },
        );
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_core::flg::Flg;
    use slopt_ir::types::{FieldType, PrimType, RecordId};

    fn record_u64(n: usize) -> RecordType {
        RecordType::new(
            "S",
            (0..n)
                .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
                .collect(),
        )
    }

    /// The refine test's greedy-mistake instance: the search must find
    /// the strictly better clustering refine finds (or better).
    fn greedy_mistake() -> (Flg, RecordType) {
        let flg = Flg::from_parts(
            RecordId(0),
            vec![100, 90, 80, 20, 10],
            vec![
                (FieldIdx(0), FieldIdx(1), 50.0),
                (FieldIdx(0), FieldIdx(2), 5.0),
                (FieldIdx(2), FieldIdx(3), 8.0),
                (FieldIdx(2), FieldIdx(4), 8.0),
                (FieldIdx(0), FieldIdx(3), -100.0),
                (FieldIdx(0), FieldIdx(4), -100.0),
            ],
        );
        (flg, record_u64(5))
    }

    #[test]
    fn search_strictly_beats_greedy_on_the_mistake_instance() {
        let (flg, rec) = greedy_mistake();
        let out = search_layout(
            &flg,
            &rec,
            &SearchParams {
                steps: 300,
                ..SearchParams::default()
            },
            Portfolio {
                chains: 4,
                master_seed: 7,
            },
            1,
        );
        assert!(
            out.winner().score > out.greedy_score,
            "search {} must beat greedy {}",
            out.winner().score,
            out.greedy_score
        );
        // The winner's score is the bit-exact objective of its clusters.
        let c = out.winner().clustering();
        assert_eq!(
            out.winner().score.to_bits(),
            slopt_core::clustering_score(&flg, &c).to_bits()
        );
        assert_eq!(c.field_count(), 5, "no field lost or duplicated");
    }

    #[test]
    fn portfolio_is_jobs_invariant() {
        let (flg, rec) = greedy_mistake();
        let params = SearchParams {
            steps: 200,
            ..SearchParams::default()
        };
        let portfolio = Portfolio {
            chains: 5,
            master_seed: 99,
        };
        let base = search_layout(&flg, &rec, &params, portfolio, 1);
        for jobs in [2, 4, 7] {
            let out = search_layout(&flg, &rec, &params, portfolio, jobs);
            assert_eq!(out.best, base.best);
            assert_eq!(out.winner().score.to_bits(), base.winner().score.to_bits());
            for (a, b) in out.chains.iter().zip(&base.chains) {
                assert_eq!(a.clusters, b.clusters, "jobs={jobs}");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!((a.proposed, a.accepted), (b.proposed, b.accepted));
            }
        }
    }

    #[test]
    fn different_master_seeds_differ_but_never_lose_to_greedy() {
        let (flg, rec) = greedy_mistake();
        let params = SearchParams {
            steps: 150,
            ..SearchParams::default()
        };
        for seed in [1, 2, 3, 4] {
            let out = search_layout(
                &flg,
                &rec,
                &params,
                Portfolio {
                    chains: 3,
                    master_seed: seed,
                },
                2,
            );
            assert!(
                out.winner().score >= out.greedy_score,
                "seed {seed}: polish from greedy can never lose"
            );
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let (flg, rec) = greedy_mistake();
        let out = search_layout(
            &flg,
            &rec,
            &SearchParams {
                steps: 200,
                ..SearchParams::default()
            },
            Portfolio {
                chains: 6,
                master_seed: 5,
            },
            2,
        );
        let top = out.top_k(3);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
            assert_ne!(w[0].clusters, w[1].clusters, "top-k is deduplicated");
        }
        assert_eq!(top[0].chain, out.best, "best candidate leads");
    }

    #[test]
    fn capacity_holds_throughout() {
        // 17 mutually affine u64s: no cluster may exceed 16 fields.
        let n = 17;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((FieldIdx(i), FieldIdx(j), 1.0));
            }
        }
        let flg = Flg::from_parts(RecordId(0), vec![10; n], edges);
        let rec = record_u64(n);
        let out = search_layout(
            &flg,
            &rec,
            &SearchParams {
                steps: 400,
                ..SearchParams::default()
            },
            Portfolio {
                chains: 3,
                master_seed: 11,
            },
            2,
        );
        for c in &out.winner().clusters {
            assert!(c.len() <= 16, "cluster exceeds a cache line");
        }
        assert_eq!(out.winner().clustering().field_count(), n);
    }
}
