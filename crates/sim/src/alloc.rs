//! Cache-line-aligned arena allocation and layout tables.
//!
//! The paper's FLG clustering assumes record instances start at cache-line
//! boundaries — true for the HP-UX kernel's arena allocator. [`Arena`]
//! reproduces that behaviour; [`LayoutTable`] maps each record type to the
//! concrete [`StructLayout`] an experiment is running with, so the engine
//! can turn `(instance base, field)` into byte addresses.

use slopt_ir::layout::StructLayout;
use slopt_ir::types::{FieldIdx, RecordId};
use std::collections::HashMap;

/// A bump allocator that aligns every allocation to a cache line.
#[derive(Clone, Debug)]
pub struct Arena {
    next: u64,
    line_size: u64,
}

impl Arena {
    /// Creates an arena starting at `base` with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(base: u64, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        Arena {
            next: base,
            line_size,
        }
    }

    /// Allocates `size` bytes aligned to `align.max(line_size)` and returns
    /// the base address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `size` is zero.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-size allocation");
        let a = align.max(self.line_size);
        let base = (self.next + a - 1) & !(a - 1);
        self.next = base + size;
        base
    }

    /// Allocates an instance of a laid-out record.
    pub fn alloc_record(&mut self, layout: &StructLayout) -> u64 {
        self.alloc(layout.size(), layout.align())
    }

    /// Next free address (for tests / splitting address spaces).
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

/// Record type → concrete layout for the current experiment.
#[derive(Clone, Debug, Default)]
pub struct LayoutTable {
    layouts: HashMap<RecordId, StructLayout>,
}

impl LayoutTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) the layout used for `record`.
    pub fn set(&mut self, record: RecordId, layout: StructLayout) {
        self.layouts.insert(record, layout);
    }

    /// The layout for `record`.
    ///
    /// # Panics
    ///
    /// Panics if no layout was registered — running an experiment without
    /// choosing a layout for an accessed record is a setup bug.
    pub fn layout(&self, record: RecordId) -> &StructLayout {
        self.layouts
            .get(&record)
            .unwrap_or_else(|| panic!("no layout registered for {record}"))
    }

    /// The layout for `record`, if registered.
    pub fn get(&self, record: RecordId) -> Option<&StructLayout> {
        self.layouts.get(&record)
    }

    /// Byte address of `field` in the instance of `record` based at `base`.
    ///
    /// # Panics
    ///
    /// Panics if no layout was registered for `record`.
    pub fn field_addr(&self, record: RecordId, base: u64, field: FieldIdx) -> u64 {
        base + self.layout(record).offset(field)
    }

    /// Number of registered layouts.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slopt_ir::types::{FieldType, PrimType, RecordType};

    #[test]
    fn arena_aligns_to_lines() {
        let mut a = Arena::new(0x1000, 128);
        let p1 = a.alloc(10, 1);
        let p2 = a.alloc(10, 1);
        assert_eq!(p1 % 128, 0);
        assert_eq!(p2 % 128, 0);
        assert!(p2 >= p1 + 10);
        assert!(a.watermark() >= p2 + 10);
    }

    #[test]
    fn arena_respects_larger_alignment() {
        let mut a = Arena::new(64, 64);
        let p = a.alloc(8, 256);
        assert_eq!(p % 256, 0);
    }

    #[test]
    fn layout_table_field_addresses() {
        let rec = RecordType::new(
            "S",
            vec![
                ("a", FieldType::Prim(PrimType::U64)),
                ("b", FieldType::Prim(PrimType::U32)),
            ],
        );
        let layout = StructLayout::declaration_order(&rec, 128).unwrap();
        let mut t = LayoutTable::new();
        assert!(t.is_empty());
        t.set(RecordId(0), layout.clone());
        assert_eq!(t.len(), 1);
        let mut a = Arena::new(0, 128);
        let base = a.alloc_record(t.layout(RecordId(0)));
        assert_eq!(t.field_addr(RecordId(0), base, FieldIdx(1)), base + 8);
        assert!(t.get(RecordId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "no layout registered")]
    fn missing_layout_is_a_setup_bug() {
        LayoutTable::new().layout(RecordId(3));
    }
}
