//! The execution-driven multiprocessor engine.
//!
//! The engine interprets `slopt-ir` programs on every CPU of a simulated
//! machine concurrently. CPUs advance in simulated time; the CPU with the
//! smallest local clock executes next (one basic block at a time, which is
//! also the interleaving granularity). Every field access is priced by the
//! MESI memory system, so contention — and in particular false sharing —
//! slows the affected CPUs down and shows up directly in workload
//! throughput, exactly the mechanism behind the paper's SDET numbers.
//!
//! Work is organized as **scripts** (the SDET unit of throughput): each
//! script is a list of function invocations with instance-slot bindings.
//! [`RunResult::throughput`] reports scripts per million cycles.

use crate::alloc::LayoutTable;
use crate::coherence::MemSystem;
use crate::topology::CpuId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use slopt_ir::cfg::{BlockId, FuncId, Instr, Program, Terminator};
use slopt_ir::profile::Profile;
use slopt_ir::source::SourceLine;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Receives engine events; implemented by the sampler in `slopt-sample`.
pub trait Observer {
    /// A CPU executed (part of) a basic block over `[start, end)` cycles.
    /// Blocks interrupted by calls produce one event per executed segment.
    fn on_block(
        &mut self,
        cpu: CpuId,
        func: FuncId,
        block: BlockId,
        line: SourceLine,
        start: u64,
        end: u64,
    ) {
        let _ = (cpu, func, block, line, start, end);
    }

    /// A CPU finished a script at `time`.
    fn on_script_done(&mut self, cpu: CpuId, time: u64) {
        let _ = (cpu, time);
    }
}

/// An [`Observer`] that ignores everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// One function invocation with its instance-slot bindings (base addresses,
/// indexed by [`slopt_ir::cfg::InstanceSlot`]).
#[derive(Clone, Debug)]
pub struct Invocation {
    /// Function to run.
    pub func: FuncId,
    /// `bindings[slot]` = base address of the record instance bound to that
    /// slot. Callees inherit the caller's bindings.
    pub bindings: Vec<u64>,
}

/// A unit of workload throughput (one SDET "script").
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// The invocations the script performs, in order.
    pub invocations: Vec<Invocation>,
}

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Seed for the per-CPU branch RNGs.
    pub seed: u64,
    /// Safety bound on total basic blocks executed across all CPUs.
    pub max_steps: u64,
    /// Fixed sequencing cost charged per basic block (guarantees progress
    /// even for blocks with no instructions).
    pub block_cost: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0,
            max_steps: 500_000_000,
            block_cost: 1,
        }
    }
}

/// Error: the engine hit its `max_steps` bound before the workload
/// completed.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct StepsExhausted {
    /// Steps executed (equals the configured bound).
    pub steps: u64,
}

impl fmt::Display for StepsExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine exceeded {} block steps", self.steps)
    }
}

impl Error for StepsExhausted {}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Completion time: the maximum CPU clock at the end.
    pub makespan: u64,
    /// Scripts completed across all CPUs.
    pub scripts_done: u64,
    /// Final clock per CPU.
    pub per_cpu_time: Vec<u64>,
    /// Block execution counts observed during the run (usable as PBO data).
    pub profile: Profile,
    /// Total basic blocks executed.
    pub steps: u64,
}

impl RunResult {
    /// Scripts completed per million cycles of makespan — the analogue of
    /// SDET's scripts/hour. Returns 0 for an empty run.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.scripts_done as f64 * 1.0e6 / self.makespan as f64
        }
    }
}

struct FrameState {
    func: FuncId,
    block: BlockId,
    instr_idx: usize,
    /// Loop trip counters indexed by block id, grown lazily on the first
    /// `Loop` terminator — loop-free frames never allocate.
    loop_counters: Vec<u32>,
}

struct CpuState {
    scripts: Vec<Script>,
    script_idx: usize,
    inv_idx: usize,
    frames: Vec<FrameState>,
    bindings: Vec<u64>,
    time: u64,
    rng: SmallRng,
    done: bool,
}

impl CpuState {
    /// Advances to the next invocation (or script); returns `false` when
    /// all work is exhausted. Reports completed scripts via `on_done`.
    fn next_work(
        &mut self,
        cpu: CpuId,
        observer: &mut dyn Observer,
        scripts_done: &mut u64,
    ) -> bool {
        loop {
            if self.script_idx >= self.scripts.len() {
                self.done = true;
                return false;
            }
            let script = &mut self.scripts[self.script_idx];
            if self.inv_idx < script.invocations.len() {
                let inv = &mut script.invocations[self.inv_idx];
                self.inv_idx += 1;
                // The workload is owned by the run and every invocation is
                // executed exactly once, so the bindings can be moved out
                // instead of cloned — no per-invocation allocation.
                self.bindings = std::mem::take(&mut inv.bindings);
                self.frames.push(FrameState {
                    func: inv.func,
                    block: BlockId(0), // placeholder, set by caller
                    instr_idx: 0,
                    loop_counters: Vec::new(),
                });
                return true;
            }
            // Script finished.
            *scripts_done += 1;
            observer.on_script_done(cpu, self.time);
            self.script_idx += 1;
            self.inv_idx = 0;
        }
    }
}

/// Runs `workload[cpu]` (a list of scripts per CPU) over the program on the
/// machine modelled by `mem`. Returns the run outcome; memory statistics
/// accumulate inside `mem`.
///
/// # Errors
///
/// Returns [`StepsExhausted`] if the configured step bound is hit (e.g. a
/// pathological probabilistic loop).
///
/// # Panics
///
/// Panics if `workload` does not have exactly one entry per machine CPU, or
/// if an executed access lacks a registered layout or binding.
pub fn run(
    program: &Program,
    layouts: &LayoutTable,
    mem: &mut MemSystem,
    workload: Vec<Vec<Script>>,
    cfg: &EngineConfig,
    observer: &mut dyn Observer,
) -> Result<RunResult, StepsExhausted> {
    let cpus = mem.topology().cpu_count();
    assert_eq!(workload.len(), cpus, "workload must cover every CPU");

    let mut states: Vec<CpuState> = workload
        .into_iter()
        .enumerate()
        .map(|(i, scripts)| CpuState {
            scripts,
            script_idx: 0,
            inv_idx: 0,
            frames: Vec::new(),
            bindings: Vec::new(),
            time: 0,
            rng: SmallRng::seed_from_u64(cfg.seed ^ (0x9E37_79B9u64.wrapping_mul(i as u64 + 1))),
            done: false,
        })
        .collect();

    let mut profile = Profile::new();
    let mut scripts_done = 0u64;
    let mut steps = 0u64;

    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, state) in states.iter_mut().enumerate() {
        // Prime each CPU with its first invocation.
        let cpu = CpuId(i as u16);
        if state.next_work(cpu, observer, &mut scripts_done) {
            let func = state.frames.last().expect("frame pushed").func;
            state.frames.last_mut().expect("frame").block = program.function(func).entry();
            heap.push(Reverse((state.time, i)));
        }
    }

    while let Some(Reverse((_, idx))) = heap.pop() {
        if steps >= cfg.max_steps {
            return Err(StepsExhausted { steps });
        }
        steps += 1;
        let cpu = CpuId(idx as u16);
        let state = &mut states[idx];
        let start = state.time;

        // Execute the top frame until the block ends or a call suspends it.
        let (func_id, block_id, entered) = {
            let frame = state.frames.last().expect("active frame");
            (frame.func, frame.block, frame.instr_idx == 0)
        };
        let func = program.function(func_id);
        let block = func.block(block_id);
        if entered {
            profile.record(func_id, block_id, 1);
            state.time += cfg.block_cost;
        }

        let mut called: Option<FuncId> = None;
        {
            let frame = state.frames.last_mut().expect("active frame");
            while frame.instr_idx < block.instrs.len() {
                let instr = &block.instrs[frame.instr_idx];
                frame.instr_idx += 1;
                match instr {
                    Instr::Compute(c) => state.time += u64::from(*c),
                    Instr::Access(a) => {
                        let layout = layouts.layout(a.record);
                        let base = *state
                            .bindings
                            .get(a.slot.0 as usize)
                            .unwrap_or_else(|| panic!("unbound {} in {}", a.slot, func.name()));
                        let addr = base + layout.offset(a.field);
                        let size = layout.field_size(a.field).min(8);
                        state.time += mem.access(
                            cpu,
                            addr,
                            size,
                            a.kind.is_write(),
                            Some(a.record),
                            state.time,
                        );
                    }
                    Instr::Call(callee) => {
                        called = Some(*callee);
                        break;
                    }
                }
            }
        }

        observer.on_block(cpu, func_id, block_id, block.line, start, state.time);

        if let Some(callee) = called {
            state.frames.push(FrameState {
                func: callee,
                block: program.function(callee).entry(),
                instr_idx: 0,
                loop_counters: Vec::new(),
            });
            heap.push(Reverse((state.time, idx)));
            continue;
        }

        // Terminator.
        let next = {
            let frame = state.frames.last_mut().expect("active frame");
            match block.term {
                Terminator::Jump(t) => Some(t),
                Terminator::Branch {
                    taken,
                    not_taken,
                    prob_taken,
                } => {
                    if state.rng.gen::<f64>() < prob_taken {
                        Some(taken)
                    } else {
                        Some(not_taken)
                    }
                }
                Terminator::Loop { back, exit, trip } => {
                    let idx = block_id.index();
                    if frame.loop_counters.len() <= idx {
                        frame.loop_counters.resize(idx + 1, 0);
                    }
                    let c = &mut frame.loop_counters[idx];
                    *c += 1;
                    if *c < trip {
                        Some(back)
                    } else {
                        *c = 0;
                        Some(exit)
                    }
                }
                Terminator::Ret => None,
            }
        };

        match next {
            Some(t) => {
                let frame = state.frames.last_mut().expect("active frame");
                frame.block = t;
                frame.instr_idx = 0;
                heap.push(Reverse((state.time, idx)));
            }
            None => {
                state.frames.pop();
                if state.frames.is_empty() {
                    if state.next_work(cpu, observer, &mut scripts_done) {
                        let f = state.frames.last().expect("frame").func;
                        state.frames.last_mut().expect("frame").block = program.function(f).entry();
                        heap.push(Reverse((state.time, idx)));
                    }
                } else {
                    heap.push(Reverse((state.time, idx)));
                }
            }
        }
    }

    let per_cpu_time: Vec<u64> = states.iter().map(|s| s.time).collect();
    let makespan = per_cpu_time.iter().copied().max().unwrap_or(0);
    Ok(RunResult {
        makespan,
        scripts_done,
        per_cpu_time,
        profile,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::topology::{LatencyModel, Topology};
    use slopt_ir::builder::{FunctionBuilder, ProgramBuilder};
    use slopt_ir::cfg::InstanceSlot;
    use slopt_ir::layout::StructLayout;
    use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordType, TypeRegistry};

    fn simple_program() -> (Program, slopt_ir::types::RecordId, FuncId) {
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![
                ("a", FieldType::Prim(PrimType::U64)),
                ("b", FieldType::Prim(PrimType::U64)),
            ],
        ));
        let mut pb = ProgramBuilder::new(reg);
        let mut fb = FunctionBuilder::new("touch");
        let b0 = fb.add_block();
        fb.read(b0, s, FieldIdx(0), InstanceSlot(0));
        fb.write(b0, s, FieldIdx(1), InstanceSlot(0));
        fb.compute(b0, 5);
        let id = pb.add(fb, b0);
        (pb.finish(), s, id)
    }

    fn mem(cpus: usize) -> MemSystem {
        MemSystem::new(
            Topology::superdome(cpus),
            LatencyModel::superdome(),
            CacheConfig {
                line_size: 128,
                sets: 256,
                ways: 4,
            },
        )
    }

    fn layouts_for(prog: &Program, rec: slopt_ir::types::RecordId) -> LayoutTable {
        let mut t = LayoutTable::new();
        t.set(
            rec,
            StructLayout::declaration_order(prog.registry().record(rec), 128).unwrap(),
        );
        t
    }

    #[test]
    fn single_cpu_executes_scripts() {
        let (prog, rec, f) = simple_program();
        let layouts = layouts_for(&prog, rec);
        let mut m = mem(1);
        let script = Script {
            invocations: vec![Invocation {
                func: f,
                bindings: vec![0x10000],
            }],
        };
        let result = run(
            &prog,
            &layouts,
            &mut m,
            vec![vec![script.clone(), script]],
            &EngineConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(result.scripts_done, 2);
        assert_eq!(result.profile.count(f, BlockId(0)), 2);
        assert!(result.makespan > 0);
        assert!(result.throughput() > 0.0);
        // 2 blocks, 4 accesses.
        assert_eq!(m.stats().accesses(), 4);
    }

    #[test]
    fn false_sharing_slows_the_run_down() {
        // Two CPUs write different fields of the same shared instance
        // repeatedly. Packed layout -> same line -> ping-pong. Split layout
        // (fields on different lines) -> independent.
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![
                ("a", FieldType::Prim(PrimType::U64)),
                ("b", FieldType::Prim(PrimType::U64)),
            ],
        ));
        let mut pb = ProgramBuilder::new(reg);

        let mk = |field: u32| {
            let mut fb = FunctionBuilder::new(format!("wr{field}"));
            let e = fb.add_block();
            let body = fb.add_block();
            let x = fb.add_block();
            fb.jump(e, body);
            fb.write(body, s, FieldIdx(field), InstanceSlot(0));
            fb.loop_latch(body, body, x, 200);
            (fb, e)
        };
        let (fb0, e0) = mk(0);
        let f0 = pb.add(fb0, e0);
        let (fb1, e1) = mk(1);
        let f1 = pb.add(fb1, e1);
        let prog = pb.finish();
        let rec_ty = prog.registry().record(s);

        let shared_base = 0x2_0000u64;
        let workload = |f: FuncId| Script {
            invocations: vec![Invocation {
                func: f,
                bindings: vec![shared_base],
            }],
        };

        // Packed: both fields on line 0.
        let mut packed = LayoutTable::new();
        packed.set(s, StructLayout::declaration_order(rec_ty, 128).unwrap());
        let mut m1 = mem(2);
        let r_packed = run(
            &prog,
            &packed,
            &mut m1,
            vec![vec![workload(f0)], vec![workload(f1)]],
            &EngineConfig::default(),
            &mut NullObserver,
        )
        .unwrap();

        // Split: each field on its own line.
        let mut split = LayoutTable::new();
        split.set(
            s,
            StructLayout::from_groups(rec_ty, &[vec![FieldIdx(0)], vec![FieldIdx(1)]], 128)
                .unwrap(),
        );
        let mut m2 = mem(2);
        let r_split = run(
            &prog,
            &split,
            &mut m2,
            vec![vec![workload(f0)], vec![workload(f1)]],
            &EngineConfig::default(),
            &mut NullObserver,
        )
        .unwrap();

        assert!(
            m1.stats().false_sharing_for(s) > 100,
            "packed layout must false-share (got {})",
            m1.stats().false_sharing_for(s)
        );
        assert_eq!(
            m2.stats().false_sharing_for(s),
            0,
            "split layout must not false-share"
        );
        assert!(
            r_packed.makespan > 2 * r_split.makespan,
            "false sharing should dominate: packed {} vs split {}",
            r_packed.makespan,
            r_split.makespan
        );
        m1.check_invariants();
        m2.check_invariants();
    }

    #[test]
    fn calls_suspend_and_resume_blocks() {
        let mut reg = TypeRegistry::new();
        let s = reg.add_record(RecordType::new(
            "S",
            vec![("a", FieldType::Prim(PrimType::U64))],
        ));
        let mut pb = ProgramBuilder::new(reg);
        let mut leaf = FunctionBuilder::new("leaf");
        let l0 = leaf.add_block();
        leaf.compute(l0, 100);
        let leaf_id = pb.add(leaf, l0);

        let mut caller = FunctionBuilder::new("caller");
        let c0 = caller.add_block();
        caller.read(c0, s, FieldIdx(0), InstanceSlot(0));
        caller.call(c0, leaf_id);
        caller.write(c0, s, FieldIdx(0), InstanceSlot(0));
        let caller_id = pb.add(caller, c0);
        let prog = pb.finish();

        let layouts = layouts_for(&prog, s);
        let mut m = mem(1);
        let result = run(
            &prog,
            &layouts,
            &mut m,
            vec![vec![Script {
                invocations: vec![Invocation {
                    func: caller_id,
                    bindings: vec![0x1000],
                }],
            }]],
            &EngineConfig::default(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(result.scripts_done, 1);
        assert_eq!(result.profile.count(leaf_id, BlockId(0)), 1);
        assert_eq!(result.profile.count(caller_id, BlockId(0)), 1);
        // Both accesses happened (read + write).
        assert_eq!(m.stats().accesses(), 2);
        // Leaf compute cost charged.
        assert!(result.makespan >= 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let (prog, rec, f) = simple_program();
        let layouts = layouts_for(&prog, rec);
        let script = Script {
            invocations: vec![Invocation {
                func: f,
                bindings: vec![0x4000],
            }],
        };
        let mut results = Vec::new();
        for _ in 0..2 {
            let mut m = mem(4);
            let r = run(
                &prog,
                &layouts,
                &mut m,
                vec![vec![script.clone(); 5]; 4],
                &EngineConfig::default(),
                &mut NullObserver,
            )
            .unwrap();
            results.push((r.makespan, r.scripts_done, m.stats().accesses()));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn step_bound_is_enforced() {
        let reg = TypeRegistry::new();
        let mut pb = ProgramBuilder::new(reg);
        let mut fb = FunctionBuilder::new("spin");
        let b0 = fb.add_block();
        fb.branch(b0, b0, b0, 1.0);
        let f = pb.add(fb, b0);
        let prog = pb.finish();
        let layouts = LayoutTable::new();
        let mut m = mem(1);
        let cfg = EngineConfig {
            max_steps: 1000,
            ..EngineConfig::default()
        };
        let err = run(
            &prog,
            &layouts,
            &mut m,
            vec![vec![Script {
                invocations: vec![Invocation {
                    func: f,
                    bindings: vec![],
                }],
            }]],
            &cfg,
            &mut NullObserver,
        )
        .unwrap_err();
        assert_eq!(err.steps, 1000);
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn observer_sees_blocks_and_scripts() {
        #[derive(Default)]
        struct Counting {
            blocks: u64,
            scripts: u64,
            last_end: u64,
        }
        impl Observer for Counting {
            fn on_block(
                &mut self,
                _c: CpuId,
                _f: FuncId,
                _b: BlockId,
                _l: slopt_ir::source::SourceLine,
                start: u64,
                end: u64,
            ) {
                assert!(start <= end);
                self.blocks += 1;
                self.last_end = self.last_end.max(end);
            }
            fn on_script_done(&mut self, _c: CpuId, _t: u64) {
                self.scripts += 1;
            }
        }
        let (prog, rec, f) = simple_program();
        let layouts = layouts_for(&prog, rec);
        let mut m = mem(1);
        let mut obs = Counting::default();
        let r = run(
            &prog,
            &layouts,
            &mut m,
            vec![vec![Script {
                invocations: vec![Invocation {
                    func: f,
                    bindings: vec![0x8000],
                }],
            }]],
            &EngineConfig::default(),
            &mut obs,
        )
        .unwrap();
        assert_eq!(obs.blocks, 1);
        assert_eq!(obs.scripts, 1);
        assert_eq!(obs.last_end, r.makespan);
    }

    #[test]
    #[should_panic(expected = "workload must cover every CPU")]
    fn workload_size_must_match() {
        let (prog, rec, _) = simple_program();
        let layouts = layouts_for(&prog, rec);
        let mut m = mem(2);
        let _ = run(
            &prog,
            &layouts,
            &mut m,
            vec![vec![]],
            &EngineConfig::default(),
            &mut NullObserver,
        );
    }
}
