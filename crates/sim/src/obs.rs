//! Publishing simulator results to an [`Obs`] handle.
//!
//! The simulator's hot path (every memory access) already accumulates into
//! [`MemStats`]; instrumentation must not add per-access work on top. So
//! the coherence layer keeps counting into its local accumulators, and
//! these helpers flush the totals as `sim.*` / `engine.*` counters once
//! per run — the cost is a handful of counter emissions regardless of how
//! many billions of accesses the run simulated.

use slopt_obs::Obs;

use crate::engine::RunResult;
use crate::stats::{AccessClass, MemStats};

/// Flushes accumulated memory-system statistics as `sim.*` counters.
pub fn publish_mem_stats(stats: &MemStats, obs: &Obs) {
    if !obs.enabled() {
        return;
    }
    obs.counter("sim.accesses", stats.accesses());
    obs.counter("sim.mem_cycles", stats.total_cycles());
    obs.counter("sim.hits", stats.class(AccessClass::Hit).count);
    obs.counter(
        "sim.upgrade_hits",
        stats.class(AccessClass::UpgradeHit).count,
    );
    obs.counter("sim.cold_misses", stats.class(AccessClass::ColdMiss).count);
    obs.counter(
        "sim.capacity_misses",
        stats.class(AccessClass::CapacityMiss).count,
    );
    obs.counter(
        "sim.true_sharing_misses",
        stats.class(AccessClass::TrueSharingMiss).count,
    );
    obs.counter(
        "sim.false_sharing_misses",
        stats.class(AccessClass::FalseSharingMiss).count,
    );
    obs.counter("sim.invalidations", stats.invalidations);
    obs.counter("sim.writebacks", stats.writebacks);
    obs.counter("sim.state_transitions", stats.state_transitions);
    obs.counter("sim.dir_overflow_hits", stats.dir_overflow_hits);
}

/// Flushes an engine run's outcome as `engine.*` counters/gauges.
pub fn publish_run_result(result: &RunResult, obs: &Obs) {
    if !obs.enabled() {
        return;
    }
    obs.counter("engine.steps", result.steps);
    obs.counter("engine.scripts_done", result.scripts_done);
    obs.gauge("engine.makespan", result.makespan as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_nonzero_sim_counters() {
        use crate::cache::CacheConfig;
        use crate::coherence::MemSystem;
        use crate::topology::{CpuId, LatencyModel, Topology};

        let mut mem = MemSystem::new(
            Topology::superdome(2),
            LatencyModel::superdome(),
            CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
        );
        mem.access(CpuId(0), 0, 8, false, None, 0);
        mem.access(CpuId(1), 64, 8, true, None, 0);
        mem.access(CpuId(0), 0, 8, false, None, 0);

        let obs = Obs::aggregating();
        publish_mem_stats(mem.stats(), &obs);
        let m = obs.summary().metrics;
        assert_eq!(m.counter("sim.accesses"), 3);
        assert_eq!(m.counter("sim.false_sharing_misses"), 1);
        assert!(m.counter("sim.invalidations") >= 1);
        assert!(m.counter("sim.state_transitions") >= 3);
        assert_eq!(m.counter("sim.dir_overflow_hits"), 0);
    }

    #[test]
    fn disabled_obs_publishes_nothing() {
        let stats = MemStats::new();
        let obs = Obs::disabled();
        publish_mem_stats(&stats, &obs);
        assert!(obs.summary().metrics.is_empty());
    }
}
