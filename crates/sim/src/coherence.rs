//! Directory-based MESI coherence with false-sharing classification.
//!
//! [`MemSystem`] owns one [`Cache`] per CPU plus a global directory. Every
//! access is priced in cycles using the machine's [`LatencyModel`]:
//!
//! * hits cost the hit latency;
//! * misses are served from the owning cache (cache-to-cache transfer priced
//!   by hierarchical distance), from a sharer, or from memory;
//! * writes invalidate remote copies, paying the round-trip to the farthest
//!   invalidated CPU.
//!
//! **Miss classification.** When CPU `c` loses a line to another CPU's
//! write, the directory starts accumulating the bytes *other* CPUs write to
//! that line. When `c` next misses on the line, the miss is classified as
//! **false sharing** if the bytes `c` accesses are disjoint from everything
//! written since the invalidation, and **true sharing** otherwise. Misses on
//! never-held lines are **cold**; misses on self-evicted lines are
//! **capacity**. This is the per-access analogue of the classification of
//! Torrellas et al. and is what makes layout effects directly observable in
//! the statistics.

use crate::cache::{Cache, CacheConfig, Mesi};

/// Which invalidation protocol the directory runs (paper §1 lists MESI,
/// MSI, MOSI and MOESI as the common choices; the Itanium machines use
/// MESI-family protocols).
///
/// The observable difference modelled here is the **Exclusive** state:
/// under MESI a sole reader holds the line in E and a subsequent local
/// write upgrades silently; under MSI the same line is merely Shared and
/// the write must consult the directory even with no other sharers.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash)]
pub enum Protocol {
    /// MESI (default): silent upgrades for sole owners.
    #[default]
    Mesi,
    /// MSI: every S→M transition pays a directory round trip.
    Msi,
}
use crate::stats::{AccessClass, MemStats};
use crate::topology::{CpuId, LatencyModel, Topology};
use slopt_ir::types::RecordId;
use std::collections::{HashMap, HashSet};

/// One logged sharing miss, for ground-truth analysis of *which bytes*
/// (and hence which fields) actually collided. The paper could not
/// measure this on hardware ("there is no easy way to measure how many
/// cycles are lost due to false sharing on a native execution"); the
/// simulator can, which makes the CycleLoss estimate checkable — see the
/// `validate_cycleloss` binary.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct SharingMissEvent {
    /// The line (byte address / line size) the miss happened on.
    pub line: u64,
    /// The CPU that missed.
    pub reader: CpuId,
    /// Byte bitmap (bit i = byte i of the line) the missing access uses.
    pub reader_mask: u128,
    /// Byte bitmap written by other CPUs since this CPU lost the line.
    pub written_mask: u128,
    /// True if the masks are disjoint (false sharing), false otherwise.
    pub false_sharing: bool,
}

/// Directory state for one line.
#[derive(Clone, Debug, Default)]
struct DirEntry {
    /// CPU holding the line in M or E, if any. Invariant: when set,
    /// `sharers` contains exactly that CPU.
    owner: Option<u16>,
    /// Bitmask of CPUs holding a copy.
    sharers: u128,
    /// CPUs that lost the line to an invalidation, with the bytes written
    /// by other CPUs since — consumed (and classified) at their next miss.
    pending_inval: Vec<(u16, u128)>,
    /// Directory occupancy: coherence transactions on this line serialize
    /// behind this timestamp.
    busy_until: u64,
}

/// Lines per dense directory page (and per [`LineSet`] page).
const DIR_PAGE_LINES: usize = 1024;
const DIR_PAGE_SHIFT: u32 = DIR_PAGE_LINES.trailing_zeros();

/// Line numbers below this live in the dense paged array; anything above
/// (synthetic tests probing far addresses) overflows into a hash map so a
/// single outlier cannot force a huge page vector. 1 << 24 lines of 128
/// bytes covers a 2 GiB simulated address space — far beyond what the
/// arena allocator ([`crate::Arena`]) hands out.
const DENSE_LINE_LIMIT: u64 = 1 << 24;

/// The default directory storage: line number → entry via a paged dense
/// array. The engine's address space is allocator-controlled (instances
/// come from a bump [`crate::Arena`] starting near zero), so line numbers
/// are small and dense — an index computation plus two loads replaces
/// hashing on the hottest path of the simulator.
///
/// A default [`DirEntry`] (no owner, no sharers, nothing pending, never
/// busy) behaves identically to an absent hash-map entry in every
/// directory operation, so presence does not need to be tracked.
#[derive(Debug, Default)]
struct DenseDirectory {
    pages: Vec<Option<Box<[DirEntry]>>>,
    overflow: HashMap<u64, DirEntry>,
}

impl DenseDirectory {
    #[inline]
    fn probe_mut(&mut self, line: u64) -> Option<&mut DirEntry> {
        if line < DENSE_LINE_LIMIT {
            self.pages
                .get_mut((line >> DIR_PAGE_SHIFT) as usize)?
                .as_mut()
                .map(|p| &mut p[(line as usize) & (DIR_PAGE_LINES - 1)])
        } else {
            self.overflow.get_mut(&line)
        }
    }

    #[inline]
    fn entry_mut(&mut self, line: u64) -> &mut DirEntry {
        if line < DENSE_LINE_LIMIT {
            let page_idx = (line >> DIR_PAGE_SHIFT) as usize;
            if page_idx >= self.pages.len() {
                self.pages.resize_with(page_idx + 1, || None);
            }
            let page = self.pages[page_idx].get_or_insert_with(|| {
                vec![DirEntry::default(); DIR_PAGE_LINES].into_boxed_slice()
            });
            &mut page[(line as usize) & (DIR_PAGE_LINES - 1)]
        } else {
            self.overflow.entry(line).or_default()
        }
    }
}

/// Directory storage: the dense paged layout (default) or the original
/// hash map, retained as the equivalence/performance reference
/// ([`MemSystem::set_reference_directory`], `perf_report --reference`,
/// and the property tests in `crates/sim/tests`).
#[derive(Debug)]
enum Directory {
    Dense(DenseDirectory),
    Reference(HashMap<u64, DirEntry>),
}

impl Directory {
    /// The entry for `line` if it may carry state; `None` only when the
    /// line provably has no directory state.
    #[inline]
    fn probe_mut(&mut self, line: u64) -> Option<&mut DirEntry> {
        match self {
            Directory::Dense(d) => d.probe_mut(line),
            Directory::Reference(m) => m.get_mut(&line),
        }
    }

    /// The entry for `line`, created (default) if missing.
    #[inline]
    fn entry_mut(&mut self, line: u64) -> &mut DirEntry {
        match self {
            Directory::Dense(d) => d.entry_mut(line),
            Directory::Reference(m) => m.entry(line).or_default(),
        }
    }

    /// Visits every line that may carry directory state (dense pages
    /// include untouched default entries, which satisfy all invariants
    /// vacuously). The dense walk streams one 1024-entry page at a time
    /// in line order — each page is a contiguous block that fits in L1,
    /// and absent pages are skipped without touching any entry.
    fn for_each(&self, mut f: impl FnMut(u64, &DirEntry)) {
        match self {
            Directory::Dense(d) => {
                for (pi, page) in d.pages.iter().enumerate() {
                    if let Some(p) = page {
                        for (i, entry) in p.iter().enumerate() {
                            f(((pi << DIR_PAGE_SHIFT) + i) as u64, entry);
                        }
                    }
                }
                for (&line, entry) in &d.overflow {
                    f(line, entry);
                }
            }
            Directory::Reference(m) => {
                for (&line, entry) in m {
                    f(line, entry);
                }
            }
        }
    }
}

/// A paged per-CPU set of line numbers (the ever-cached set consulted on
/// every miss for cold-vs-capacity classification): one bit per line for
/// small line numbers, hash-set overflow for outliers.
#[derive(Debug, Default)]
struct LineSet {
    words: Vec<u64>,
    overflow: HashSet<u64>,
}

impl LineSet {
    #[inline]
    fn insert(&mut self, line: u64) {
        if line < DENSE_LINE_LIMIT {
            let idx = (line / 64) as usize;
            if idx >= self.words.len() {
                self.words.resize(idx + 1, 0);
            }
            self.words[idx] |= 1u64 << (line % 64);
        } else {
            self.overflow.insert(line);
        }
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        if line < DENSE_LINE_LIMIT {
            self.words
                .get((line / 64) as usize)
                .is_some_and(|w| w & (1u64 << (line % 64)) != 0)
        } else {
            self.overflow.contains(&line)
        }
    }
}

fn cpu_bit(cpu: CpuId) -> u128 {
    1u128 << cpu.0
}

fn byte_mask(offset_in_line: u64, size: u64) -> u128 {
    debug_assert!(offset_in_line + size <= 128);
    if size >= 128 {
        !0u128
    } else {
        ((1u128 << size) - 1) << offset_in_line
    }
}

/// The multiprocessor memory system.
#[derive(Debug)]
pub struct MemSystem {
    topo: Topology,
    lat: LatencyModel,
    cfg: CacheConfig,
    caches: Vec<Cache>,
    dir: Directory,
    ever_cached: Vec<LineSet>,
    stats: MemStats,
    serialize: bool,
    log_sharing: bool,
    sharing_log: Vec<SharingMissEvent>,
    protocol: Protocol,
}

impl MemSystem {
    /// Creates a memory system for the given machine.
    ///
    /// # Panics
    ///
    /// Panics on invalid cache geometry.
    pub fn new(topo: Topology, lat: LatencyModel, cfg: CacheConfig) -> Self {
        cfg.validate();
        let n = topo.cpu_count();
        MemSystem {
            topo,
            lat,
            cfg,
            caches: (0..n).map(|_| Cache::new(cfg)).collect(),
            dir: Directory::Dense(DenseDirectory::default()),
            ever_cached: (0..n).map(|_| LineSet::default()).collect(),
            stats: MemStats::new(),
            serialize: true,
            log_sharing: false,
            sharing_log: Vec::new(),
            protocol: Protocol::Mesi,
        }
    }

    /// Selects the coherence protocol (default [`Protocol::Mesi`]).
    pub fn set_protocol(&mut self, protocol: Protocol) {
        self.protocol = protocol;
    }

    /// Switches the directory to the retained hash-map reference
    /// implementation (`true`) or back to the default dense paged layout
    /// (`false`). Both are observationally identical; the reference exists
    /// for equivalence tests and the `perf_report` old-vs-new comparison.
    ///
    /// # Panics
    ///
    /// Panics if any access has already been performed — the directory
    /// kind must be chosen while the system is empty.
    pub fn set_reference_directory(&mut self, on: bool) {
        assert_eq!(
            self.stats.accesses(),
            0,
            "directory kind must be chosen before the first access"
        );
        self.dir = if on {
            Directory::Reference(HashMap::new())
        } else {
            Directory::Dense(DenseDirectory::default())
        };
    }

    /// Enables recording of every sharing miss (bytes read vs bytes
    /// written) into a log retrievable via
    /// [`MemSystem::sharing_events`]. Off by default — the log grows with
    /// the number of sharing misses.
    pub fn set_sharing_log(&mut self, on: bool) {
        self.log_sharing = on;
    }

    /// The recorded sharing-miss events (empty unless logging was turned
    /// on with [`MemSystem::set_sharing_log`]).
    pub fn sharing_events(&self) -> &[SharingMissEvent] {
        &self.sharing_log
    }

    /// Enables or disables directory serialization: when enabled (the
    /// default), coherence transactions on one line queue behind each
    /// other, so heavily contended lines serialize their writers — the
    /// mechanism that makes false sharing catastrophic on large machines.
    /// Disable for analytical unit tests that assert exact transfer
    /// latencies.
    pub fn set_serialize(&mut self, on: bool) {
        self.serialize = on;
    }

    /// The line/coherence-block size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.line_size
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Performs an access of `size` bytes at `addr` by `cpu`, returning its
    /// total latency in cycles. Accesses spanning multiple lines are split
    /// and each chunk is priced and classified separately (latencies sum —
    /// the engine models them as sequential).
    ///
    /// `record` attributes the access to a record type in the per-record
    /// statistics breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or if `cpu` is out of range.
    pub fn access(
        &mut self,
        cpu: CpuId,
        addr: u64,
        size: u64,
        write: bool,
        record: Option<RecordId>,
        now: u64,
    ) -> u64 {
        assert!(size > 0, "zero-size access");
        assert!(cpu.index() < self.caches.len(), "cpu {cpu} out of range");
        let line_size = self.cfg.line_size;
        let mut total = 0;
        let mut cursor = addr;
        let end = addr + size;
        while cursor < end {
            let line = cursor / line_size;
            let off = cursor % line_size;
            let chunk = (line_size - off).min(end - cursor);
            let mask = byte_mask(off, chunk);
            let (lat, class) = self.access_line(cpu, line, mask, write, now + total);
            self.stats.record(class, lat, record);
            total += lat;
            cursor += chunk;
        }
        total
    }

    /// One access entirely within line `line`, touching the bytes of
    /// `mask`.
    fn access_line(
        &mut self,
        cpu: CpuId,
        line: u64,
        mask: u128,
        write: bool,
        now: u64,
    ) -> (u64, AccessClass) {
        // Counted for both directory kinds (from the line number alone) so
        // dense/reference equivalence is preserved.
        if line >= DENSE_LINE_LIMIT {
            self.stats.dir_overflow_hits += 1;
        }
        let state = self.caches[cpu.index()].lookup(line);
        match state {
            Some(Mesi::Modified) => {
                if write {
                    self.note_write(cpu, line, mask);
                }
                (self.lat.hit, AccessClass::Hit)
            }
            Some(Mesi::Exclusive) => {
                if write {
                    self.caches[cpu.index()].set_state(line, Mesi::Modified);
                    self.stats.state_transitions += 1;
                    let entry = self.dir.entry_mut(line);
                    entry.owner = Some(cpu.0);
                    self.note_write(cpu, line, mask);
                }
                (self.lat.hit, AccessClass::Hit)
            }
            Some(Mesi::Shared) => {
                if write {
                    self.upgrade(cpu, line, mask, now)
                } else {
                    (self.lat.hit, AccessClass::Hit)
                }
            }
            None => self.miss(cpu, line, mask, write, now),
        }
    }

    /// Accumulates written bytes into the pending-invalidation records of
    /// CPUs waiting to re-fetch this line.
    fn note_write(&mut self, writer: CpuId, line: u64, mask: u128) {
        if let Some(entry) = self.dir.probe_mut(line) {
            for (c, bm) in entry.pending_inval.iter_mut() {
                if *c != writer.0 {
                    *bm |= mask;
                }
            }
        }
    }

    /// Write hit on a Shared line: invalidate remote copies and take
    /// ownership.
    ///
    /// Victims are walked straight off the sharer bitmask
    /// (`trailing_zeros`, ascending CPU order — the same order the old
    /// full-CPU scan produced), with no victim list allocation and one
    /// directory probe for the whole batch of pending-invalidation
    /// records instead of one probe per victim.
    fn upgrade(&mut self, cpu: CpuId, line: u64, mask: u128, now: u64) -> (u64, AccessClass) {
        let entry = self.dir.entry_mut(line);
        let others = entry.sharers & !cpu_bit(cpu);
        let mut inval_lat = 0;
        let mut killed = 0;
        if others != 0 {
            let mut rest = others;
            while rest != 0 {
                let v = rest.trailing_zeros() as u16;
                rest &= rest - 1;
                let d = self.topo.distance(cpu, CpuId(v));
                inval_lat = inval_lat.max(self.lat.transfer(d));
                self.caches[v as usize].invalidate(line);
                self.stats.state_transitions += 1;
                killed += 1;
            }
            let entry = self.dir.probe_mut(line).expect("entry exists");
            let mut rest = others;
            while rest != 0 {
                let v = rest.trailing_zeros() as u16;
                rest &= rest - 1;
                entry.pending_inval.push((v, 0));
            }
        }
        let entry = self.dir.probe_mut(line).expect("entry exists");
        entry.owner = Some(cpu.0);
        entry.sharers = cpu_bit(cpu);
        self.caches[cpu.index()].set_state(line, Mesi::Modified);
        self.stats.state_transitions += 1;
        self.stats.invalidations += killed;
        self.note_write(cpu, line, mask);
        if killed > 0 {
            let lat = self.lat.hit + self.queue_delay(line, now, inval_lat);
            (lat, AccessClass::UpgradeHit)
        } else if self.protocol == Protocol::Msi {
            // MSI has no Exclusive state: even a sole holder must ask the
            // directory for ownership.
            let lat = self.lat.hit + self.queue_delay(line, now, self.lat.memory);
            (lat, AccessClass::UpgradeHit)
        } else {
            (self.lat.hit, AccessClass::Hit)
        }
    }

    /// Serializes a coherence transaction of `service` cycles on `line`
    /// starting at `now`: it waits for the directory entry to become free,
    /// then occupies it. Returns the total (wait + service) latency.
    fn queue_delay(&mut self, line: u64, now: u64, service: u64) -> u64 {
        if !self.serialize {
            return service;
        }
        let entry = self.dir.entry_mut(line);
        let wait = entry.busy_until.saturating_sub(now);
        entry.busy_until = now + wait + service;
        wait + service
    }

    /// Read or write miss.
    fn miss(
        &mut self,
        cpu: CpuId,
        line: u64,
        mask: u128,
        write: bool,
        now: u64,
    ) -> (u64, AccessClass) {
        let entry = self.dir.entry_mut(line);

        // Classify before mutating sharer state.
        let mut sharing_event: Option<SharingMissEvent> = None;
        let class = if let Some(pos) = entry.pending_inval.iter().position(|(c, _)| *c == cpu.0) {
            let (_, written) = entry.pending_inval.swap_remove(pos);
            let false_sharing = written & mask == 0;
            if self.log_sharing {
                sharing_event = Some(SharingMissEvent {
                    line,
                    reader: cpu,
                    reader_mask: mask,
                    written_mask: written,
                    false_sharing,
                });
            }
            if false_sharing {
                AccessClass::FalseSharingMiss
            } else {
                AccessClass::TrueSharingMiss
            }
        } else if self.ever_cached[cpu.index()].contains(line) {
            AccessClass::CapacityMiss
        } else {
            AccessClass::ColdMiss
        };

        // Price the data fetch.
        let owner = entry.owner;
        let sharers = entry.sharers;
        let fetch_lat = if let Some(o) = owner {
            let d = self.topo.distance(CpuId(o), cpu);
            self.lat.transfer(d)
        } else if sharers != 0 {
            // Nearest sharer forwards the line; walk the sharer bits
            // directly instead of scanning every CPU.
            let mut best = u64::MAX;
            let mut rest = sharers;
            while rest != 0 {
                let c = rest.trailing_zeros() as u16;
                rest &= rest - 1;
                best = best.min(self.lat.transfer(self.topo.distance(CpuId(c), cpu)));
            }
            best
        } else {
            self.lat.memory
        };

        let lat;
        if write {
            // Read-for-ownership: every remote copy is invalidated.
            // Victims come straight off the sharer bitmask in ascending
            // CPU order, with no victim list allocation.
            let victim_mask = sharers & !cpu_bit(cpu);
            let mut inval_lat = 0;
            let mut rest = victim_mask;
            while rest != 0 {
                let v = rest.trailing_zeros() as u16;
                rest &= rest - 1;
                let d = self.topo.distance(cpu, CpuId(v));
                inval_lat = inval_lat.max(self.lat.transfer(d));
                if self.caches[v as usize].invalidate(line) == Some(Mesi::Modified) {
                    self.stats.writebacks += 1;
                }
                self.stats.invalidations += 1;
                self.stats.state_transitions += 1;
            }
            let entry = self.dir.probe_mut(line).expect("entry exists");
            let mut rest = victim_mask;
            while rest != 0 {
                let v = rest.trailing_zeros() as u16;
                rest &= rest - 1;
                entry.pending_inval.push((v, 0));
            }
            entry.owner = Some(cpu.0);
            entry.sharers = cpu_bit(cpu);
            let had_copies = owner.is_some() || sharers != 0;
            let service = fetch_lat.max(inval_lat);
            lat = if had_copies {
                self.queue_delay(line, now, service)
            } else {
                service
            };
            self.insert_line(cpu, line, Mesi::Modified);
            self.note_write(cpu, line, mask);
        } else {
            // Read: demote an owner to Shared.
            if let Some(o) = owner {
                if self.caches[o as usize].peek(line) == Some(Mesi::Modified) {
                    self.stats.writebacks += 1;
                }
                self.caches[o as usize].set_state(line, Mesi::Shared);
                self.stats.state_transitions += 1;
            }
            let protocol = self.protocol;
            let entry = self.dir.probe_mut(line).expect("entry exists");
            entry.owner = None;
            let new_state = if entry.sharers == 0 && protocol == Protocol::Mesi {
                Mesi::Exclusive
            } else {
                Mesi::Shared
            };
            entry.sharers |= cpu_bit(cpu);
            if new_state == Mesi::Exclusive {
                entry.owner = Some(cpu.0);
            }
            lat = if owner.is_some() {
                // Cache-to-cache transfers occupy the directory entry.
                self.queue_delay(line, now, fetch_lat)
            } else {
                fetch_lat
            };
            self.insert_line(cpu, line, new_state);
        }
        self.ever_cached[cpu.index()].insert(line);
        if let Some(ev) = sharing_event {
            self.sharing_log.push(ev);
        }
        (lat, class)
    }

    /// Inserts a line into a CPU's cache, handling the directory update for
    /// an evicted victim.
    fn insert_line(&mut self, cpu: CpuId, line: u64, state: Mesi) {
        // The inserted line leaves Invalid; an evicted victim enters it.
        self.stats.state_transitions += 1;
        if let Some((victim, vstate)) = self.caches[cpu.index()].insert(line, state) {
            self.stats.state_transitions += 1;
            if vstate == Mesi::Modified {
                self.stats.writebacks += 1;
            }
            if let Some(entry) = self.dir.probe_mut(victim) {
                entry.sharers &= !cpu_bit(cpu);
                if entry.owner == Some(cpu.0) {
                    entry.owner = None;
                }
            }
        }
    }

    /// Checks directory/cache invariants for every line the directory
    /// knows. Intended for tests; O(lines × cpus).
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        self.dir.for_each(|line, entry| {
            if let Some(o) = entry.owner {
                assert_eq!(
                    entry.sharers,
                    1u128 << o,
                    "line {line:#x}: owner {o} must be the only sharer"
                );
                let st = self.caches[o as usize].peek(line);
                assert!(
                    matches!(st, Some(Mesi::Modified) | Some(Mesi::Exclusive)),
                    "line {line:#x}: owner {o} cache state {st:?}"
                );
            }
            for c in 0..self.topo.cpu_count() {
                let has = self.caches[c].peek(line).is_some();
                let marked = entry.sharers & (1u128 << c) != 0;
                assert_eq!(
                    has, marked,
                    "line {line:#x}: cpu {c} cache/directory disagree"
                );
                if has && entry.owner != Some(c as u16) {
                    assert_eq!(
                        self.caches[c].peek(line),
                        Some(Mesi::Shared),
                        "line {line:#x}: non-owner cpu {c} must be Shared"
                    );
                }
                // A CPU with a pending invalidation record must not hold
                // the line.
                if entry.pending_inval.iter().any(|(p, _)| *p as usize == c) {
                    assert!(!has, "line {line:#x}: cpu {c} pending-inval yet resident");
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(cpus: usize) -> MemSystem {
        MemSystem::new(
            Topology::superdome(cpus),
            LatencyModel::superdome(),
            CacheConfig {
                line_size: 128,
                sets: 64,
                ways: 4,
            },
        )
    }

    const REC: Option<RecordId> = None;

    #[test]
    fn cold_miss_then_hit() {
        let mut m = system(2);
        let lat = m.access(CpuId(0), 0x1000, 8, false, REC, 0);
        assert_eq!(lat, LatencyModel::superdome().memory);
        assert_eq!(m.stats().class(AccessClass::ColdMiss).count, 1);
        let lat = m.access(CpuId(0), 0x1000, 8, false, REC, 0);
        assert_eq!(lat, LatencyModel::superdome().hit);
        assert_eq!(m.stats().class(AccessClass::Hit).count, 1);
        m.check_invariants();
    }

    #[test]
    fn read_sharing_is_cheap_and_stable() {
        let mut m = system(4);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 0, 8, false, REC, 0); // fetched from cpu0's cache
        m.access(CpuId(2), 0, 8, false, REC, 0);
        // Everyone can now hit.
        for c in 0..3 {
            let lat = m.access(CpuId(c), 0, 8, false, REC, 0);
            assert_eq!(lat, LatencyModel::superdome().hit);
        }
        assert_eq!(m.stats().invalidations, 0);
        m.check_invariants();
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = system(2);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 0, 8, false, REC, 0);
        // cpu1 writes: cpu0 must be invalidated.
        m.access(CpuId(1), 0, 8, true, REC, 0);
        assert_eq!(m.stats().invalidations, 1);
        m.check_invariants();
        // cpu0's next read is a coherence miss on the same bytes -> true.
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert_eq!(m.stats().class(AccessClass::TrueSharingMiss).count, 1);
        m.check_invariants();
    }

    #[test]
    fn false_sharing_is_detected() {
        let mut m = system(2);
        // cpu0 reads bytes 0..8; cpu1 writes bytes 64..72 of the same line.
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 64, 8, true, REC, 0);
        // cpu0 re-reads its own bytes: invalidation hit disjoint bytes.
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert_eq!(m.stats().class(AccessClass::FalseSharingMiss).count, 1);
        assert_eq!(m.stats().class(AccessClass::TrueSharingMiss).count, 0);
        m.check_invariants();
    }

    #[test]
    fn true_sharing_when_bytes_overlap() {
        let mut m = system(2);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 4, 8, true, REC, 0); // overlaps bytes 4..8
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert_eq!(m.stats().class(AccessClass::TrueSharingMiss).count, 1);
        m.check_invariants();
    }

    #[test]
    fn accumulated_writes_count_for_classification() {
        let mut m = system(3);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        // cpu1 takes the line writing far bytes, then writes cpu0's bytes
        // in a second access while still owning the line.
        m.access(CpuId(1), 64, 8, true, REC, 0);
        m.access(CpuId(1), 0, 8, true, REC, 0);
        // cpu0 rereads: bytes 0..8 were written since invalidation -> true.
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert_eq!(m.stats().class(AccessClass::TrueSharingMiss).count, 1);
        m.check_invariants();
    }

    #[test]
    fn capacity_miss_after_eviction() {
        let mut m = MemSystem::new(
            Topology::bus(1),
            LatencyModel::bus(),
            CacheConfig {
                line_size: 64,
                sets: 1,
                ways: 2,
            },
        );
        m.access(CpuId(0), 0, 8, false, REC, 0); // line 0
        m.access(CpuId(0), 64, 8, false, REC, 0); // line 1
        m.access(CpuId(0), 128, 8, false, REC, 0); // line 2 evicts line 0
        m.access(CpuId(0), 0, 8, false, REC, 0); // line 0 again: capacity
        assert_eq!(m.stats().class(AccessClass::CapacityMiss).count, 1);
        assert_eq!(m.stats().class(AccessClass::ColdMiss).count, 3);
        m.check_invariants();
    }

    #[test]
    fn upgrade_pays_farthest_sharer() {
        let lat = LatencyModel::superdome();
        let mut m = system(64);
        m.set_serialize(false);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 0, 8, false, REC, 0); // same chip as 0
        m.access(CpuId(33), 0, 8, false, REC, 0); // different crossbar? 33 -> chip 16, cell 4, crossbar 1
        let l = m.access(CpuId(0), 0, 8, true, REC, 0);
        // Upgrade must pay the remote invalidation (cpu33 is crossbar 1).
        assert_eq!(l, lat.hit + lat.remote);
        assert_eq!(m.stats().class(AccessClass::UpgradeHit).count, 1);
        assert_eq!(m.stats().invalidations, 2);
        m.check_invariants();
    }

    #[test]
    fn dirty_transfer_writes_back() {
        let mut m = system(2);
        m.access(CpuId(0), 0, 8, true, REC, 0); // M in cpu0
        m.access(CpuId(1), 0, 8, false, REC, 0); // read from owner
        assert_eq!(m.stats().writebacks, 1);
        // Both now Shared.
        assert_eq!(
            m.access(CpuId(0), 0, 8, false, REC, 0),
            LatencyModel::superdome().hit
        );
        m.check_invariants();
    }

    #[test]
    fn write_write_pingpong_costs_transfers() {
        let mut m = system(2);
        let lat = LatencyModel::superdome();
        m.access(CpuId(0), 0, 8, true, REC, 0);
        let mut expensive = 0;
        for i in 0..10 {
            let cpu = CpuId((i % 2) as u16);
            let l = m.access(CpuId(1 - cpu.0), 0, 8, true, REC, 0);
            if l >= lat.same_chip {
                expensive += 1;
            }
        }
        assert!(
            expensive >= 9,
            "ping-pong writes should mostly miss ({expensive}/10)"
        );
        m.check_invariants();
    }

    #[test]
    fn multi_line_access_is_split() {
        let mut m = system(1);
        // 16 bytes starting 8 before a line boundary -> two chunks.
        let lat = m.access(CpuId(0), 120, 16, false, REC, 0);
        assert_eq!(m.stats().accesses(), 2);
        assert_eq!(lat, 2 * LatencyModel::superdome().memory);
    }

    #[test]
    fn per_record_attribution() {
        let mut m = system(2);
        let rec = Some(RecordId(7));
        m.access(CpuId(0), 0, 8, false, rec, 0);
        m.access(CpuId(1), 64, 8, true, rec, 0);
        m.access(CpuId(0), 0, 8, false, rec, 0);
        assert_eq!(m.stats().false_sharing_for(RecordId(7)), 1);
        assert_eq!(m.stats().false_sharing_for(RecordId(8)), 0);
    }

    #[test]
    fn exclusive_silent_upgrade() {
        let mut m = system(2);
        m.access(CpuId(0), 0, 8, false, REC, 0); // E
        let l = m.access(CpuId(0), 0, 8, true, REC, 0); // E -> M silently
        assert_eq!(l, LatencyModel::superdome().hit);
        assert_eq!(m.stats().invalidations, 0);
        m.check_invariants();
    }

    #[test]
    fn msi_pays_for_sole_owner_upgrades() {
        let lat = LatencyModel::superdome();
        // MESI: read-then-write of private data is two cheap operations.
        let mut mesi = system(2);
        mesi.access(CpuId(0), 0, 8, false, REC, 0);
        let l = mesi.access(CpuId(0), 0, 8, true, REC, 0);
        assert_eq!(l, lat.hit, "MESI silent E->M upgrade");
        assert_eq!(mesi.stats().class(AccessClass::UpgradeHit).count, 0);

        // MSI: the same sequence pays a directory round trip on the write.
        let mut msi = system(2);
        msi.set_protocol(Protocol::Msi);
        msi.access(CpuId(0), 0, 8, false, REC, 0);
        let l = msi.access(CpuId(0), 0, 8, true, REC, 0);
        assert_eq!(l, lat.hit + lat.memory, "MSI ownership request");
        assert_eq!(msi.stats().class(AccessClass::UpgradeHit).count, 1);
        msi.check_invariants();
    }

    #[test]
    fn msi_never_holds_exclusive() {
        let mut m = system(2);
        m.set_protocol(Protocol::Msi);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.check_invariants();
        // Directly peek the cache state through invariants: a sole reader
        // is Shared under MSI, so a second reader's fetch changes nothing
        // about ownership.
        m.access(CpuId(1), 0, 8, false, REC, 0);
        m.check_invariants();
        assert_eq!(m.stats().invalidations, 0);
    }

    #[test]
    fn sharing_log_records_masks() {
        let mut m = system(2);
        m.set_sharing_log(true);
        // cpu0 reads bytes 0..8; cpu1 writes bytes 64..72; cpu0 rereads.
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 64, 8, true, REC, 0);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        let events = m.sharing_events();
        assert_eq!(events.len(), 1);
        let ev = events[0];
        assert!(ev.false_sharing);
        assert_eq!(ev.reader, CpuId(0));
        assert_eq!(ev.reader_mask, 0xFF);
        assert_eq!(ev.written_mask, 0xFFu128 << 64);
        assert_eq!(ev.line, 0);
        // True sharing is logged too, flagged accordingly.
        m.access(CpuId(1), 0, 8, true, REC, 0);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert_eq!(m.sharing_events().len(), 2);
        assert!(!m.sharing_events()[1].false_sharing);
    }

    #[test]
    fn sharing_log_off_by_default() {
        let mut m = system(2);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        m.access(CpuId(1), 64, 8, true, REC, 0);
        m.access(CpuId(0), 0, 8, false, REC, 0);
        assert!(m.sharing_events().is_empty());
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_access_rejected() {
        let mut m = system(1);
        m.access(CpuId(0), 0, 0, false, REC, 0);
    }
}
