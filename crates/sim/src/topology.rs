//! Machine topologies and the distance-dependent latency model.
//!
//! The paper evaluates on two machines:
//!
//! * a **128-processor HP Superdome**: 64 mx2 chips of two Itanium 2 CPUs;
//!   two chips per bus, two buses per cell, four cells per crossbar, four
//!   crossbars — with remote-cache accesses costing up to ~1000 cycles;
//! * a **4-processor bus machine**, where a remote cache access costs only
//!   slightly more than an L2 miss.
//!
//! [`Topology`] places each CPU in that hierarchy and [`LatencyModel`]
//! prices a cache-to-cache transfer (or invalidation round) by the
//! hierarchical distance between the CPUs.

use std::fmt;

/// A processor id. The simulator supports at most 128 CPUs (matching the
/// largest machine in the paper, and the width of the sharer bitmasks).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct CpuId(pub u16);

impl CpuId {
    /// The CPU id as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Maximum number of CPUs supported by the simulator.
pub const MAX_CPUS: usize = 128;

/// Where a CPU sits in the machine hierarchy.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub struct CpuLoc {
    /// Chip (socket) index.
    pub chip: u16,
    /// Front-side bus index.
    pub bus: u16,
    /// Cell board index.
    pub cell: u16,
    /// Crossbar index.
    pub crossbar: u16,
}

/// Hierarchical distance between two CPUs, from closest to farthest.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Ord, PartialOrd, Hash)]
pub enum Distance {
    /// The same CPU.
    Local,
    /// Different CPUs on one chip.
    SameChip,
    /// Different chips on one bus.
    SameBus,
    /// Different buses on one cell.
    SameCell,
    /// Different cells on one crossbar.
    SameCrossbar,
    /// Different crossbars.
    Remote,
}

/// A machine: a set of CPUs with hierarchy coordinates.
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    locs: Vec<CpuLoc>,
}

impl Topology {
    /// A single-bus SMP with `cpus` processors, one CPU per chip — the
    /// paper's "small 4 processor machine" for `cpus = 4`.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or exceeds [`MAX_CPUS`].
    pub fn bus(cpus: usize) -> Self {
        assert!(
            cpus > 0 && cpus <= MAX_CPUS,
            "cpu count {cpus} out of range"
        );
        let locs = (0..cpus)
            .map(|i| CpuLoc {
                chip: i as u16,
                bus: 0,
                cell: 0,
                crossbar: 0,
            })
            .collect();
        Topology {
            name: format!("bus{cpus}"),
            locs,
        }
    }

    /// An HP-Superdome-like hierarchy: 2 CPUs per chip, 2 chips per bus,
    /// 2 buses per cell, 4 cells per crossbar, up to 4 crossbars (128
    /// CPUs). Smaller `cpus` values take a prefix of the hierarchy — e.g.
    /// `superdome(16)` is the paper's 16-way concurrency-collection
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is 0 or exceeds [`MAX_CPUS`].
    pub fn superdome(cpus: usize) -> Self {
        assert!(
            cpus > 0 && cpus <= MAX_CPUS,
            "cpu count {cpus} out of range"
        );
        let locs = (0..cpus)
            .map(|i| {
                let chip = (i / 2) as u16;
                let bus = chip / 2;
                let cell = bus / 2;
                let crossbar = cell / 4;
                CpuLoc {
                    chip,
                    bus,
                    cell,
                    crossbar,
                }
            })
            .collect();
        Topology {
            name: format!("superdome{cpus}"),
            locs,
        }
    }

    /// The machine's name (e.g. `superdome128`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of CPUs.
    pub fn cpu_count(&self) -> usize {
        self.locs.len()
    }

    /// All CPU ids.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.locs.len() as u16).map(CpuId)
    }

    /// The hierarchy coordinates of a CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn loc(&self, cpu: CpuId) -> CpuLoc {
        self.locs[cpu.index()]
    }

    /// Hierarchical distance between two CPUs.
    ///
    /// # Panics
    ///
    /// Panics if either CPU is out of range.
    pub fn distance(&self, a: CpuId, b: CpuId) -> Distance {
        if a == b {
            return Distance::Local;
        }
        let la = self.loc(a);
        let lb = self.loc(b);
        if la.chip == lb.chip {
            Distance::SameChip
        } else if la.bus == lb.bus {
            Distance::SameBus
        } else if la.cell == lb.cell {
            Distance::SameCell
        } else if la.crossbar == lb.crossbar {
            Distance::SameCrossbar
        } else {
            Distance::Remote
        }
    }
}

/// Cycle costs for cache events, by distance.
///
/// `transfer(d)` prices a cache-to-cache data transfer or an invalidation
/// round-trip spanning distance `d`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// Cache hit (load-to-use) latency.
    pub hit: u64,
    /// Transfer between the two CPUs of one chip.
    pub same_chip: u64,
    /// Transfer across one bus.
    pub same_bus: u64,
    /// Transfer within a cell.
    pub same_cell: u64,
    /// Transfer within a crossbar.
    pub same_crossbar: u64,
    /// Transfer across crossbars (~1000 cycles on the Superdome).
    pub remote: u64,
    /// Miss served from memory.
    pub memory: u64,
}

impl LatencyModel {
    /// Latencies approximating the 128-way HP Superdome of the paper.
    pub fn superdome() -> Self {
        LatencyModel {
            hit: 12,
            same_chip: 60,
            same_bus: 110,
            same_cell: 220,
            same_crossbar: 400,
            remote: 1000,
            memory: 450,
        }
    }

    /// Latencies approximating the small 4-way bus machine: a remote cache
    /// access costs "only slightly higher than an L2 miss".
    pub fn bus() -> Self {
        LatencyModel {
            hit: 12,
            same_chip: 180,
            same_bus: 240,
            same_cell: 240,
            same_crossbar: 240,
            remote: 240,
            memory: 210,
        }
    }

    /// Cost of a transfer or invalidation round over distance `d`.
    /// `Distance::Local` costs the hit latency.
    pub fn transfer(&self, d: Distance) -> u64 {
        match d {
            Distance::Local => self.hit,
            Distance::SameChip => self.same_chip,
            Distance::SameBus => self.same_bus,
            Distance::SameCell => self.same_cell,
            Distance::SameCrossbar => self.same_crossbar,
            Distance::Remote => self.remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_topology_is_flat() {
        let t = Topology::bus(4);
        assert_eq!(t.cpu_count(), 4);
        assert_eq!(t.distance(CpuId(0), CpuId(0)), Distance::Local);
        for a in t.cpus() {
            for b in t.cpus() {
                if a != b {
                    assert_eq!(t.distance(a, b), Distance::SameBus);
                }
            }
        }
    }

    #[test]
    fn superdome_structure_matches_paper() {
        let t = Topology::superdome(128);
        assert_eq!(t.cpu_count(), 128);
        // Two CPUs per chip.
        assert_eq!(t.distance(CpuId(0), CpuId(1)), Distance::SameChip);
        // Chips 0 and 1 share bus 0: cpus 2,3 are chip 1.
        assert_eq!(t.distance(CpuId(0), CpuId(2)), Distance::SameBus);
        // Buses 0 and 1 share cell 0: cpus 4..8 are bus 1.
        assert_eq!(t.distance(CpuId(0), CpuId(4)), Distance::SameCell);
        // Cells 0..4 share crossbar 0: cpu 8 is cell 1.
        assert_eq!(t.distance(CpuId(0), CpuId(8)), Distance::SameCrossbar);
        // Cell 4 (cpu 32) is crossbar 1.
        assert_eq!(t.distance(CpuId(0), CpuId(32)), Distance::Remote);
        // Distance is symmetric.
        assert_eq!(t.distance(CpuId(32), CpuId(0)), Distance::Remote);
        // 32 cpus per crossbar: cpu 127 is crossbar 3.
        assert_eq!(t.loc(CpuId(127)).crossbar, 3);
        assert_eq!(t.loc(CpuId(31)).crossbar, 0);
    }

    #[test]
    fn superdome_prefix_is_consistent() {
        let t = Topology::superdome(16);
        assert_eq!(t.cpu_count(), 16);
        // All 16 cpus fit in crossbar 0 (two cells).
        for c in t.cpus() {
            assert_eq!(t.loc(c).crossbar, 0);
        }
        assert_eq!(t.distance(CpuId(0), CpuId(8)), Distance::SameCrossbar);
    }

    #[test]
    fn latency_ordering_is_monotonic_in_distance() {
        let m = LatencyModel::superdome();
        let ds = [
            Distance::Local,
            Distance::SameChip,
            Distance::SameBus,
            Distance::SameCell,
            Distance::SameCrossbar,
            Distance::Remote,
        ];
        for w in ds.windows(2) {
            assert!(
                m.transfer(w[0]) < m.transfer(w[1]),
                "{:?} !< {:?}",
                w[0],
                w[1]
            );
        }
        // Remote transfers dwarf memory on the big machine (the false
        // sharing penalty the paper highlights).
        assert!(m.transfer(Distance::Remote) > m.memory);
    }

    #[test]
    fn bus_latency_remote_is_close_to_memory() {
        let m = LatencyModel::bus();
        let remote = m.transfer(Distance::SameBus) as f64;
        assert!(
            remote / m.memory as f64 <= 1.25,
            "remote should be only slightly above memory"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_cpus() {
        Topology::bus(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_too_many_cpus() {
        Topology::superdome(129);
    }
}
