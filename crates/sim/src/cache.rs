//! Per-CPU set-associative cache with LRU replacement.
//!
//! The cache tracks MESI state per resident line; the coherence protocol
//! itself (who to invalidate, where data comes from) lives in
//! [`crate::coherence`]. Addresses handled here are *line numbers*
//! (`byte_addr / line_size`), not byte addresses.

/// MESI state of a resident cache line (the I state is represented by the
/// line's absence).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash)]
pub enum Mesi {
    /// Modified: this cache holds the only, dirty copy.
    Modified,
    /// Exclusive: this cache holds the only, clean copy.
    Exclusive,
    /// Shared: other caches may hold clean copies too.
    Shared,
}

/// Geometry of a cache.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub struct CacheConfig {
    /// Line (and coherence block) size in bytes. Must be a power of two,
    /// at most 128 (the byte bitmaps used for false-sharing classification
    /// are 128 bits wide).
    pub line_size: u64,
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A 4 MiB, 8-way cache of 128-byte lines — roughly the 6 MB Itanium 2
    /// L3 of the paper's machines, at the L2 line/coherence granularity.
    pub fn itanium_l2() -> Self {
        CacheConfig {
            line_size: 128,
            sets: 4096,
            ways: 8,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.line_size * (self.sets * self.ways) as u64
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (zero/odd sizes).
    pub fn validate(&self) {
        assert!(
            self.line_size.is_power_of_two() && self.line_size <= 128,
            "line size {} must be a power of two <= 128",
            self.line_size
        );
        assert!(
            self.sets.is_power_of_two(),
            "set count {} must be a power of two",
            self.sets
        );
        assert!(self.ways > 0, "associativity must be non-zero");
    }
}

#[derive(Copy, Clone, Debug)]
struct Frame {
    line: u64,
    state: Mesi,
    lru: u64,
}

/// A set-associative, LRU cache indexed by line number.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Frame>>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Cache {
            cfg,
            sets: vec![Vec::new(); cfg.sets],
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.cfg.sets - 1)
    }

    /// Looks up a line, refreshing its LRU position. Returns its state.
    pub fn lookup(&mut self, line: u64) -> Option<Mesi> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let frame = self.sets[set].iter_mut().find(|f| f.line == line)?;
        frame.lru = tick;
        Some(frame.state)
    }

    /// Peeks at a line's state without touching LRU.
    pub fn peek(&self, line: u64) -> Option<Mesi> {
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .find(|f| f.line == line)
            .map(|f| f.state)
    }

    /// Changes the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident — a coherence protocol bug.
    pub fn set_state(&mut self, line: u64, state: Mesi) {
        let set = self.set_of(line);
        let frame = self.sets[set]
            .iter_mut()
            .find(|f| f.line == line)
            .expect("set_state on non-resident line");
        frame.state = state;
    }

    /// Inserts a line (which must not be resident), evicting the LRU frame
    /// of its set if full. Returns the evicted `(line, state)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident.
    pub fn insert(&mut self, line: u64, state: Mesi) -> Option<(u64, Mesi)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        assert!(
            set.iter().all(|f| f.line != line),
            "insert of resident line {line:#x}"
        );
        let evicted = if set.len() == ways {
            let (pos, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.lru)
                .expect("non-empty full set");
            let victim = set.swap_remove(pos);
            Some((victim.line, victim.state))
        } else {
            None
        };
        set.push(Frame {
            line,
            state,
            lru: tick,
        });
        evicted
    }

    /// Removes a line (coherence invalidation or external eviction).
    /// Returns its state if it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<Mesi> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|f| f.line == line)?;
        Some(self.sets[set].swap_remove(pos).state)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            line_size: 64,
            sets: 2,
            ways: 2,
        })
    }

    #[test]
    fn insert_lookup_invalidate_roundtrip() {
        let mut c = tiny();
        assert_eq!(c.lookup(10), None);
        assert_eq!(c.insert(10, Mesi::Exclusive), None);
        assert_eq!(c.lookup(10), Some(Mesi::Exclusive));
        c.set_state(10, Mesi::Modified);
        assert_eq!(c.peek(10), Some(Mesi::Modified));
        assert_eq!(c.invalidate(10), Some(Mesi::Modified));
        assert_eq!(c.lookup(10), None);
        assert_eq!(c.invalidate(10), None);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.insert(0, Mesi::Shared);
        c.insert(2, Mesi::Shared);
        assert_eq!(c.resident(), 2);
        // Touch 0 so 2 becomes LRU.
        c.lookup(0);
        let evicted = c.insert(4, Mesi::Shared);
        assert_eq!(evicted, Some((2, Mesi::Shared)));
        assert!(c.peek(0).is_some());
        assert!(c.peek(4).is_some());
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.insert(0, Mesi::Shared); // set 0
        c.insert(1, Mesi::Shared); // set 1
        c.insert(2, Mesi::Shared); // set 0
        c.insert(3, Mesi::Shared); // set 1
        assert_eq!(c.resident(), 4);
        // Set 0 full; inserting another even line evicts an even line.
        let (line, _) = c.insert(4, Mesi::Shared).expect("eviction");
        assert!(line % 2 == 0);
    }

    #[test]
    #[should_panic(expected = "resident")]
    fn double_insert_is_a_bug() {
        let mut c = tiny();
        c.insert(0, Mesi::Shared);
        c.insert(0, Mesi::Shared);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_requires_residency() {
        let mut c = tiny();
        c.set_state(0, Mesi::Shared);
    }

    #[test]
    fn config_capacity_and_validation() {
        let cfg = CacheConfig::itanium_l2();
        assert_eq!(cfg.capacity(), 128 * 4096 * 8);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        Cache::new(CacheConfig {
            line_size: 96,
            sets: 2,
            ways: 1,
        });
    }
}
