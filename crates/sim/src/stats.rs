//! Memory-system statistics, including false-sharing attribution.

use slopt_ir::types::RecordId;
use std::collections::HashMap;
use std::fmt;

/// How a single access was served.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash)]
pub enum AccessClass {
    /// Served from the local cache.
    Hit,
    /// Write hit on a Shared line: data was local but other copies had to
    /// be invalidated.
    UpgradeHit,
    /// First-ever access to the line by this CPU.
    ColdMiss,
    /// The CPU held the line before but evicted it for capacity reasons.
    CapacityMiss,
    /// The line was invalidated by another CPU's write to bytes this access
    /// (or an intervening local access) actually uses — true sharing.
    TrueSharingMiss,
    /// The line was invalidated by another CPU's write to *disjoint* bytes —
    /// false sharing, the effect the paper's CycleLoss targets.
    FalseSharingMiss,
}

impl AccessClass {
    /// Whether this class is any kind of miss.
    pub fn is_miss(self) -> bool {
        !matches!(self, AccessClass::Hit | AccessClass::UpgradeHit)
    }
}

/// Counters for one class of accesses.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct ClassCounts {
    /// Number of accesses in the class.
    pub count: u64,
    /// Total cycles those accesses cost.
    pub cycles: u64,
}

/// Aggregate memory statistics.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    counts: HashMap<AccessClass, ClassCounts>,
    /// Invalidation messages sent (one per remote copy killed).
    pub invalidations: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// MESI line-state changes (insertions, upgrades, demotions, and
    /// invalidations all count one transition each).
    pub state_transitions: u64,
    /// Line accesses that fell past the dense directory range and were
    /// served by the overflow hash map.
    pub dir_overflow_hits: u64,
    /// Per-record breakdown (only for accesses within tagged ranges).
    per_record: HashMap<RecordId, HashMap<AccessClass, ClassCounts>>,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access of class `class` costing `cycles`, optionally
    /// attributed to a record instance.
    pub fn record(&mut self, class: AccessClass, cycles: u64, record: Option<RecordId>) {
        let c = self.counts.entry(class).or_default();
        c.count += 1;
        c.cycles += cycles;
        if let Some(r) = record {
            let rc = self
                .per_record
                .entry(r)
                .or_default()
                .entry(class)
                .or_default();
            rc.count += 1;
            rc.cycles += cycles;
        }
    }

    /// Counters for one access class.
    pub fn class(&self, class: AccessClass) -> ClassCounts {
        self.counts.get(&class).copied().unwrap_or_default()
    }

    /// Counters for one access class restricted to a record.
    pub fn class_for(&self, record: RecordId, class: AccessClass) -> ClassCounts {
        self.per_record
            .get(&record)
            .and_then(|m| m.get(&class))
            .copied()
            .unwrap_or_default()
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.counts.values().map(|c| c.count).sum()
    }

    /// Total misses (all classes except hits/upgrades).
    pub fn misses(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(c, _)| c.is_miss())
            .map(|(_, v)| v.count)
            .sum()
    }

    /// Total cycles spent in the memory system.
    pub fn total_cycles(&self) -> u64 {
        self.counts.values().map(|c| c.cycles).sum()
    }

    /// False-sharing miss count for a record.
    pub fn false_sharing_for(&self, record: RecordId) -> u64 {
        self.class_for(record, AccessClass::FalseSharingMiss).count
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &MemStats) {
        for (&class, &cc) in &other.counts {
            let c = self.counts.entry(class).or_default();
            c.count += cc.count;
            c.cycles += cc.cycles;
        }
        self.invalidations += other.invalidations;
        self.writebacks += other.writebacks;
        self.state_transitions += other.state_transitions;
        self.dir_overflow_hits += other.dir_overflow_hits;
        for (&rec, m) in &other.per_record {
            let e = self.per_record.entry(rec).or_default();
            for (&class, &cc) in m {
                let c = e.entry(class).or_default();
                c.count += cc.count;
                c.cycles += cc.cycles;
            }
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "memory accesses: {}", self.accesses())?;
        for class in [
            AccessClass::Hit,
            AccessClass::UpgradeHit,
            AccessClass::ColdMiss,
            AccessClass::CapacityMiss,
            AccessClass::TrueSharingMiss,
            AccessClass::FalseSharingMiss,
        ] {
            let c = self.class(class);
            if c.count > 0 {
                writeln!(f, "  {class:?}: {} ({} cycles)", c.count, c.cycles)?;
            }
        }
        writeln!(f, "  invalidations: {}", self.invalidations)?;
        writeln!(f, "  writebacks: {}", self.writebacks)?;
        writeln!(f, "  state transitions: {}", self.state_transitions)?;
        if self.dir_overflow_hits > 0 {
            writeln!(f, "  directory overflow hits: {}", self.dir_overflow_hits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut s = MemStats::new();
        s.record(AccessClass::Hit, 12, None);
        s.record(AccessClass::Hit, 12, Some(RecordId(0)));
        s.record(AccessClass::FalseSharingMiss, 1000, Some(RecordId(0)));
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.class(AccessClass::Hit).count, 2);
        assert_eq!(s.total_cycles(), 1024);
        assert_eq!(s.false_sharing_for(RecordId(0)), 1);
        assert_eq!(s.false_sharing_for(RecordId(9)), 0);
        assert_eq!(s.class_for(RecordId(0), AccessClass::Hit).count, 1);
    }

    #[test]
    fn class_predicates() {
        assert!(!AccessClass::Hit.is_miss());
        assert!(!AccessClass::UpgradeHit.is_miss());
        assert!(AccessClass::ColdMiss.is_miss());
        assert!(AccessClass::FalseSharingMiss.is_miss());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MemStats::new();
        let mut b = MemStats::new();
        a.record(AccessClass::Hit, 10, Some(RecordId(1)));
        b.record(AccessClass::Hit, 20, Some(RecordId(1)));
        b.invalidations = 3;
        b.writebacks = 1;
        b.state_transitions = 5;
        b.dir_overflow_hits = 2;
        a.merge(&b);
        assert_eq!(a.class(AccessClass::Hit).count, 2);
        assert_eq!(a.class_for(RecordId(1), AccessClass::Hit).cycles, 30);
        assert_eq!(a.invalidations, 3);
        assert_eq!(a.writebacks, 1);
        assert_eq!(a.state_transitions, 5);
        assert_eq!(a.dir_overflow_hits, 2);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = MemStats::new();
        s.record(AccessClass::ColdMiss, 450, None);
        let txt = s.to_string();
        assert!(txt.contains("ColdMiss"));
        assert!(txt.contains("450"));
    }
}
