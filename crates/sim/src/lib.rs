//! # slopt-sim — execution-driven multiprocessor cache simulator
//!
//! The evaluation substrate for the CGO 2007 structure-layout paper: where
//! the authors ran the HP-UX kernel on 4-way and 128-way HP machines, this
//! crate simulates those machines so layout effects (spatial locality and
//! false sharing) are observable and attributable.
//!
//! * [`topology`] — hierarchical machine descriptions ([`Topology::bus`],
//!   [`Topology::superdome`]) and distance-priced [`LatencyModel`]s.
//! * [`cache`] — per-CPU set-associative caches with MESI line states.
//! * [`coherence`] — the directory protocol ([`MemSystem`]), including
//!   per-access miss classification (cold / capacity / true sharing /
//!   **false sharing**) via byte-overlap tracking.
//! * [`alloc`] — cache-line-aligned arenas (the paper's kernel arena
//!   allocator behaviour) and per-record [`LayoutTable`]s.
//! * [`engine`] — interprets `slopt-ir` programs on all CPUs concurrently;
//!   field accesses are priced by the memory system, so workload
//!   throughput responds to structure layout exactly as in the paper's
//!   SDET runs.
//! * [`stats`] — counters, including per-record false-sharing attribution.
//!
//! ## Example: false sharing visible end to end
//!
//! ```
//! use slopt_sim::cache::CacheConfig;
//! use slopt_sim::coherence::MemSystem;
//! use slopt_sim::stats::AccessClass;
//! use slopt_sim::topology::{CpuId, LatencyModel, Topology};
//!
//! let mut mem = MemSystem::new(
//!     Topology::superdome(2),
//!     LatencyModel::superdome(),
//!     CacheConfig { line_size: 128, sets: 64, ways: 4 },
//! );
//! // CPU 0 reads bytes 0..8; CPU 1 writes bytes 64..72 of the same line.
//! mem.access(CpuId(0), 0, 8, false, None, 0);
//! mem.access(CpuId(1), 64, 8, true, None, 0);
//! // CPU 0's re-read misses although nobody touched its bytes:
//! mem.access(CpuId(0), 0, 8, false, None, 0);
//! assert_eq!(mem.stats().class(AccessClass::FalseSharingMiss).count, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod cache;
pub mod coherence;
pub mod engine;
pub mod obs;
pub mod stats;
pub mod topology;

pub use alloc::{Arena, LayoutTable};
pub use cache::{Cache, CacheConfig, Mesi};
pub use coherence::{MemSystem, Protocol, SharingMissEvent};
pub use engine::{
    run, EngineConfig, Invocation, NullObserver, Observer, RunResult, Script, StepsExhausted,
};
pub use obs::{publish_mem_stats, publish_run_result};
pub use stats::{AccessClass, ClassCounts, MemStats};
pub use topology::{CpuId, CpuLoc, Distance, LatencyModel, Topology, MAX_CPUS};
