//! Property tests for the simulator: cache geometry, MESI consistency and
//! statistics conservation under randomized traffic on several machines.

use proptest::prelude::*;
use slopt_sim::{AccessClass, Cache, CacheConfig, CpuId, LatencyModel, MemSystem, Mesi, Topology};

proptest! {
    /// The cache never holds more lines than its geometry allows, and a
    /// line inserted is resident until evicted or invalidated.
    #[test]
    fn cache_respects_capacity(
        lines in prop::collection::vec(0u64..64, 1..200),
    ) {
        let cfg = CacheConfig { line_size: 64, sets: 4, ways: 2 };
        let mut c = Cache::new(cfg);
        for &l in &lines {
            if c.lookup(l).is_none() {
                c.insert(l, Mesi::Shared);
            }
            prop_assert!(c.resident() <= cfg.sets * cfg.ways);
        }
        // Everything resident is findable.
        for &l in &lines {
            if let Some(state) = c.peek(l) {
                prop_assert_eq!(c.lookup(l), Some(state));
            }
        }
    }

    /// MESI + directory invariants hold after arbitrary traffic on every
    /// machine shape, with serialization on and off.
    #[test]
    fn mesi_invariants_on_all_machines(
        ops in prop::collection::vec(
            (0u16..8, 0u64..12, 0u64..120, 1u64..8, any::<bool>()),
            1..250
        ),
        serialize in any::<bool>(),
        superdome in any::<bool>(),
    ) {
        let topo = if superdome { Topology::superdome(8) } else { Topology::bus(8) };
        let lat = if superdome { LatencyModel::superdome() } else { LatencyModel::bus() };
        let mut mem = MemSystem::new(topo, lat, CacheConfig { line_size: 128, sets: 4, ways: 2 });
        mem.set_serialize(serialize);
        let mut now = 0u64;
        for &(cpu, line, off, size, write) in &ops {
            now += mem.access(CpuId(cpu), line * 128 + off.min(120), size, write, None, now);
        }
        mem.check_invariants();
        // Conservation: every access is classified exactly once.
        let s = mem.stats();
        let total: u64 = [
            AccessClass::Hit,
            AccessClass::UpgradeHit,
            AccessClass::ColdMiss,
            AccessClass::CapacityMiss,
            AccessClass::TrueSharingMiss,
            AccessClass::FalseSharingMiss,
        ]
        .iter()
        .map(|&c| s.class(c).count)
        .sum();
        prop_assert_eq!(total, s.accesses());
    }

    /// Single-CPU traffic never produces sharing misses or invalidations.
    #[test]
    fn single_cpu_never_shares(
        ops in prop::collection::vec((0u64..32, any::<bool>()), 1..200),
    ) {
        let mut mem = MemSystem::new(
            Topology::bus(1),
            LatencyModel::bus(),
            CacheConfig { line_size: 64, sets: 8, ways: 2 },
        );
        let mut now = 0;
        for &(line, write) in &ops {
            now += mem.access(CpuId(0), line * 64, 8, write, None, now);
        }
        let s = mem.stats();
        prop_assert_eq!(s.class(AccessClass::TrueSharingMiss).count, 0);
        prop_assert_eq!(s.class(AccessClass::FalseSharingMiss).count, 0);
        prop_assert_eq!(s.class(AccessClass::UpgradeHit).count, 0);
        prop_assert_eq!(s.invalidations, 0);
        mem.check_invariants();
    }

    /// Read-only traffic is free of invalidations and sharing misses even
    /// across many CPUs.
    #[test]
    fn read_only_sharing_is_harmless(
        ops in prop::collection::vec((0u16..8, 0u64..16), 1..200),
    ) {
        let mut mem = MemSystem::new(
            Topology::superdome(8),
            LatencyModel::superdome(),
            CacheConfig { line_size: 128, sets: 8, ways: 4 },
        );
        let mut now = 0;
        for &(cpu, line) in &ops {
            now += mem.access(CpuId(cpu), line * 128, 8, false, None, now);
        }
        let s = mem.stats();
        prop_assert_eq!(s.invalidations, 0);
        prop_assert_eq!(s.class(AccessClass::TrueSharingMiss).count, 0);
        prop_assert_eq!(s.class(AccessClass::FalseSharingMiss).count, 0);
        mem.check_invariants();
    }

    /// The paged dense directory is observationally equivalent to the
    /// reference `HashMap` directory: identical per-access latencies and
    /// identical statistics on arbitrary traffic, across machine shapes,
    /// protocols and address ranges (including addresses past the dense
    /// page limit, which exercise the overflow map).
    #[test]
    fn dense_directory_matches_reference(
        ops in prop::collection::vec(
            // flags bit 0: write, bit 1: far (overflow-path address).
            (0u16..8, 0u64..24, 0u64..120, 1u64..8, 0u8..4),
            1..300
        ),
        superdome in any::<bool>(),
        msi in any::<bool>(),
    ) {
        let mk = |reference: bool| {
            let topo = if superdome { Topology::superdome(8) } else { Topology::bus(8) };
            let lat = if superdome { LatencyModel::superdome() } else { LatencyModel::bus() };
            let mut mem = MemSystem::new(topo, lat, CacheConfig { line_size: 128, sets: 4, ways: 2 });
            if msi {
                mem.set_protocol(slopt_sim::Protocol::Msi);
            }
            mem.set_reference_directory(reference);
            mem
        };
        let mut dense = mk(false);
        let mut reference = mk(true);
        let mut now = 0u64;
        for &(cpu, line, off, size, flags) in &ops {
            let (write, far) = (flags & 1 != 0, flags & 2 != 0);
            // `far` pushes the line past the dense limit (1 << 24 lines)
            // into the overflow path.
            let base = if far { (1u64 << 24) * 128 } else { 0 };
            let addr = base + line * 128 + off.min(120);
            let ld = dense.access(CpuId(cpu), addr, size, write, None, now);
            let lr = reference.access(CpuId(cpu), addr, size, write, None, now);
            prop_assert_eq!(ld, lr, "latency diverged at t={}", now);
            now += ld;
        }
        dense.check_invariants();
        reference.check_invariants();
        let (ds, rs) = (dense.stats(), reference.stats());
        prop_assert_eq!(ds.accesses(), rs.accesses());
        prop_assert_eq!(ds.invalidations, rs.invalidations);
        prop_assert_eq!(ds.writebacks, rs.writebacks);
        for class in [
            AccessClass::Hit,
            AccessClass::UpgradeHit,
            AccessClass::ColdMiss,
            AccessClass::CapacityMiss,
            AccessClass::TrueSharingMiss,
            AccessClass::FalseSharingMiss,
        ] {
            prop_assert_eq!(ds.class(class), rs.class(class));
        }
    }

    /// Disjoint per-CPU address spaces never interact: all misses are cold
    /// or capacity.
    #[test]
    fn disjoint_working_sets_never_share(
        ops in prop::collection::vec((0u16..4, 0u64..64, any::<bool>()), 1..300),
    ) {
        let mut mem = MemSystem::new(
            Topology::superdome(4),
            LatencyModel::superdome(),
            CacheConfig { line_size: 128, sets: 4, ways: 2 },
        );
        let mut now = 0;
        for &(cpu, line, write) in &ops {
            // Each CPU owns a private 64-line region.
            let addr = (u64::from(cpu) * 1_000_000) + line * 128;
            now += mem.access(CpuId(cpu), addr, 8, write, None, now);
        }
        let s = mem.stats();
        prop_assert_eq!(s.class(AccessClass::TrueSharingMiss).count, 0);
        prop_assert_eq!(s.class(AccessClass::FalseSharingMiss).count, 0);
        mem.check_invariants();
    }
}
