//! End-to-end: an instrumented run writes a trace file, and replay/lint
//! recover the same aggregates the live handle reports.

use slopt_obs::{replay_str, Obs};

#[test]
fn trace_file_roundtrips_through_replay() {
    let dir = std::env::temp_dir().join("slopt_obs_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");

    let obs = Obs::to_trace_file(&path).unwrap();
    {
        let _run = obs.span("run");
        for i in 0..4u64 {
            let _step = obs.span("step");
            obs.counter("work.items", i + 1);
        }
        obs.gauge("work.util", 0.5);
    }
    std::thread::scope(|scope| {
        let o = obs.clone();
        scope.spawn(move || {
            let _w = o.span("worker");
            o.counter("work.items", 5);
        });
    });
    obs.finish();

    let live = obs.summary();
    let text = std::fs::read_to_string(&path).unwrap();
    let replayed = replay_str(&text).unwrap();

    // Counter totals and span counts agree between live and replayed views.
    assert_eq!(
        replayed.counters.get("work.items").copied(),
        Some(live.metrics.counter("work.items") as f64)
    );
    assert_eq!(live.metrics.counter("work.items"), 1 + 2 + 3 + 4 + 5);
    assert_eq!(replayed.counters.get("work.util").copied(), Some(0.5));
    assert_eq!(replayed.spans["step"].count, live.span_count("step"));
    assert_eq!(replayed.spans["run"].count, 1);
    assert_eq!(replayed.spans["worker"].count, 1);
    // Two threads emitted: main (0) and the worker (1).
    assert_eq!(replayed.tids, vec![0, 1]);

    std::fs::remove_file(&path).ok();
}
