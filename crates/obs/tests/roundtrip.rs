//! End-to-end: an instrumented run writes a trace file, and replay/lint
//! recover the same aggregates the live handle reports.

use slopt_obs::{replay_str, Obs};

#[test]
fn trace_file_roundtrips_through_replay() {
    let dir = std::env::temp_dir().join("slopt_obs_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");

    let obs = Obs::to_trace_file(&path).unwrap();
    {
        let _run = obs.span("run");
        for i in 0..4u64 {
            let _step = obs.span("step");
            obs.counter("work.items", i + 1);
        }
        obs.gauge("work.util", 0.5);
        obs.histogram("work.cost", 3);
        obs.histogram("work.cost", 1000);
    }
    std::thread::scope(|scope| {
        let o = obs.clone();
        scope.spawn(move || {
            let _w = o.span("worker");
            o.counter("work.items", 5);
        });
    });
    obs.finish();

    let live = obs.summary();
    let text = std::fs::read_to_string(&path).unwrap();
    let replayed = replay_str(&text).unwrap();

    // Counter totals and span counts agree between live and replayed views.
    assert_eq!(
        replayed.counters.get("work.items").copied(),
        Some(live.metrics.counter("work.items") as f64)
    );
    assert_eq!(live.metrics.counter("work.items"), 1 + 2 + 3 + 4 + 5);
    // Gauges are tagged on the wire and replay into their own table.
    assert_eq!(replayed.gauges.get("work.util").copied(), Some(0.5));
    assert!(!replayed.counters.contains_key("work.util"));
    assert_eq!(replayed.spans["step"].count, live.span_count("step"));
    assert_eq!(replayed.spans["run"].count, 1);
    assert_eq!(replayed.spans["worker"].count, 1);
    // Two threads emitted: main (0) and the worker (1).
    assert_eq!(replayed.tids, vec![0, 1]);

    // Histogram summaries survive the round trip exactly: the replayed
    // S event matches the live histogram's counts and quantiles.
    let live_hist = live.hist("work.cost").unwrap();
    let rep = &replayed.hists["work.cost"];
    assert_eq!(rep.count, live_hist.count());
    assert_eq!(rep.buckets, live_hist.nonzero_buckets());
    let s = live_hist.summary();
    assert_eq!((rep.min, rep.max), (s.min, s.max));
    assert_eq!((rep.p50, rep.p90, rep.p99), (s.p50, s.p90, s.p99));
    // Span-duration histograms were summarized too, with matching counts.
    assert_eq!(
        replayed.hists["span.step"].count,
        replayed.spans["step"].count
    );
    // Self time: "run" contains "step" spans, so its self time is below
    // its inclusive time; leaf spans have self == total.
    assert!(replayed.spans["run"].self_us <= replayed.spans["run"].total_us);
    assert!((replayed.spans["step"].self_us - replayed.spans["step"].total_us).abs() < 1e-9);
    // The folded profile has a path through run -> step.
    assert!(replayed.folded.contains_key("run;step"));

    std::fs::remove_file(&path).ok();
}
