//! Property tests for the deterministic histogram: merge is associative
//! and commutative, sharding observations across any worker count yields
//! the bit-identical aggregate (the `--jobs` invariance argument), and
//! the wire round trip preserves everything quantiles depend on.

use proptest::prelude::*;
use slopt_obs::Histogram;

fn fold(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merge is associative and commutative: any merge tree over the same
    /// shards produces the same histogram, field for field.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(any::<u64>(), 0..60),
        ys in prop::collection::vec(any::<u64>(), 0..60),
        zs in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let (a, b, c) = (fold(&xs), fold(&ys), fold(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);

        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert_eq!(&ab, &ba);
    }

    /// Jobs invariance: recording serially equals splitting the stream
    /// round-robin over 1/2/4/7 workers and merging the partials — in any
    /// merge order. This is exactly why `--jobs` cannot change p50/p99.
    #[test]
    fn sharded_merge_equals_serial_fold(
        values in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let serial = fold(&values);
        for jobs in [1usize, 2, 4, 7] {
            let mut shards = vec![Histogram::new(); jobs];
            for (i, &v) in values.iter().enumerate() {
                shards[i % jobs].record(v);
            }
            // Forward merge order.
            let mut fwd = Histogram::new();
            for s in &shards {
                fwd.merge(s);
            }
            // Reverse merge order.
            let mut rev = Histogram::new();
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            prop_assert_eq!(&fwd, &serial, "jobs={}", jobs);
            prop_assert_eq!(&rev, &serial, "jobs={} (reversed)", jobs);
            prop_assert_eq!(fwd.summary(), serial.summary(), "jobs={}", jobs);
        }
    }

    /// Summary invariants: quantiles are ordered, clamped to the observed
    /// range, and each quantile's bucket bound is within 2x of some
    /// observation at or above the rank (log2 bucket error bound).
    #[test]
    fn summary_invariants(values in prop::collection::vec(0u64..1 << 48, 1..150)) {
        let h = fold(&values);
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.min, *values.iter().min().unwrap());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            // The reported quantile is >= the exact order statistic and
            // at most 2x above it (bucket upper bound, clamped to max).
            prop_assert!(got >= exact, "q={q}: {got} < exact {exact}");
            prop_assert!(got <= exact.saturating_mul(2).max(1), "q={q}: {got} > 2x {exact}");
        }
    }

    /// Wire round trip: cumulative bucket pairs + min/max rebuild a
    /// histogram with identical counts and quantiles.
    #[test]
    fn cumulative_round_trip_preserves_quantiles(
        values in prop::collection::vec(any::<u64>(), 0..120),
    ) {
        let h = fold(&values);
        let back = Histogram::from_cumulative_buckets(&h.nonzero_buckets(), h.min(), h.max())
            .expect("nonzero_buckets output is always well-formed");
        prop_assert_eq!(back.bucket_counts(), h.bucket_counts());
        prop_assert_eq!(back.count(), h.count());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(back.quantile(q), h.quantile(q));
        }
    }
}
