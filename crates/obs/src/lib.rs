//! # slopt-obs — instrumentation for the slopt pipeline
//!
//! Zero-dependency spans, counters, and machine-readable run traces. The
//! entire layer hangs off one cloneable [`Obs`] handle:
//!
//! * **Disabled** ([`Obs::disabled`]) it is a `None` inside an `Option` —
//!   every operation is a single branch, so instrumented code paths cost
//!   nothing measurable when nobody asked for telemetry. This is the
//!   default everywhere.
//! * **Enabled** it aggregates [`Metrics`] (counters/gauges) and per-span
//!   wall-clock timings, and forwards every event to an [`ObsSink`]:
//!   [`NullSink`] (aggregate only, for `--stats`), [`TraceSink`]
//!   (`slopt-trace/1` JSONL for `--trace-out`, loadable in Perfetto), or
//!   [`MemorySink`] (tests).
//!
//! Spans are RAII guards and thread-aware: each OS thread gets a dense
//! `tid` in first-emission order, so `par_map` workers nest correctly and
//! a `--jobs 1` run is always `tid 0` in program order — which makes
//! traces deterministic modulo timestamps, and therefore testable.
//!
//! ```
//! use slopt_obs::{MemorySink, Obs};
//!
//! let sink = MemorySink::new();
//! let events = sink.events();
//! let obs = Obs::with_sink(Box::new(sink));
//! {
//!     let _phase = obs.span("flg_build");
//!     obs.counter("flg.edges_kept", 12);
//! }
//! let summary = obs.summary();
//! assert_eq!(summary.metrics.counter("flg.edges_kept"), 12);
//! assert_eq!(events.lock().unwrap().len(), 3); // B, C, E
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flame;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod replay;
pub mod sink;
pub mod trace;

pub use histogram::{HistSummary, Histogram};
pub use metrics::Metrics;
pub use replay::{lint_str, replay_str, structural_deltas, ReplaySummary, SpanStats, TraceError};
pub use sink::{MemorySink, NullSink, ObsSink, TraceEvent};
pub use trace::{TraceSink, SCHEMA};

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// State shared by all clones of one enabled [`Obs`] handle.
struct Shared {
    /// Epoch for trace timestamps.
    t0: Instant,
    state: Mutex<State>,
}

struct State {
    metrics: Metrics,
    sink: Box<dyn ObsSink>,
    /// OS thread → dense tid, assigned in first-emission order (the main
    /// thread emits first, so it is always tid 0; a `--jobs 1` run never
    /// leaves tid 0).
    tids: HashMap<ThreadId, u64>,
    /// Open-span depth per dense tid.
    depth: Vec<u64>,
    /// Completed-span aggregation keyed by (name, tid).
    spans: BTreeMap<(String, u64), SpanAgg>,
    /// Per-span-name duration histograms (ns), fed on every guard drop.
    /// Keyed by the span's `&'static str` name so drops never allocate.
    span_hists: BTreeMap<&'static str, Histogram>,
    /// Workload-level value histograms fed via [`Obs::histogram`].
    hists: BTreeMap<String, Histogram>,
    /// Scratch buffer for composed metric names (`warn.<x>`,
    /// `span.<x>`), reused across calls so hot paths do not allocate.
    name_buf: String,
    /// Guards one-shot summary emission in [`Obs::finish`].
    summarized: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

impl State {
    fn tid(&mut self) -> u64 {
        let next = self.tids.len() as u64;
        let tid = *self.tids.entry(std::thread::current().id()).or_insert(next);
        if self.depth.len() <= tid as usize {
            self.depth.resize(tid as usize + 1, 0);
        }
        tid
    }
}

/// The instrumentation handle threaded through the pipeline.
///
/// Cheap to clone (an `Option<Arc>`); clones share one metrics registry
/// and one sink. See the crate docs for the enabled/disabled contract.
#[derive(Clone, Default)]
pub struct Obs {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The no-op handle: every operation is a single branch.
    pub fn disabled() -> Obs {
        Obs { shared: None }
    }

    /// An enabled handle forwarding events to `sink`.
    pub fn with_sink(sink: Box<dyn ObsSink>) -> Obs {
        Obs {
            shared: Some(Arc::new(Shared {
                t0: Instant::now(),
                state: Mutex::new(State {
                    metrics: Metrics::new(),
                    sink,
                    tids: HashMap::new(),
                    depth: Vec::new(),
                    spans: BTreeMap::new(),
                    span_hists: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    name_buf: String::new(),
                    summarized: false,
                }),
            })),
        }
    }

    /// An enabled handle that only aggregates (for `--stats` without
    /// `--trace-out`).
    pub fn aggregating() -> Obs {
        Obs::with_sink(Box::new(NullSink))
    }

    /// An enabled handle streaming `slopt-trace/1` JSONL to `path`.
    pub fn to_trace_file(path: &std::path::Path) -> std::io::Result<Obs> {
        Ok(Obs::with_sink(Box::new(TraceSink::create(path)?)))
    }

    /// True when instrumentation is live. Guard any *preparation* work
    /// (string formatting, extra scans) behind this; the emit calls
    /// themselves already early-return when disabled.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    fn ts_us(shared: &Shared, now: Instant) -> f64 {
        now.duration_since(shared.t0).as_secs_f64() * 1e6
    }

    /// Opens a span; it closes (emitting the `E` event and feeding the
    /// aggregate) when the returned guard drops.
    #[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(shared) = &self.shared else {
            return SpanGuard {
                shared: None,
                name,
                start: None,
                tid: 0,
            };
        };
        let start = Instant::now();
        let ts = Self::ts_us(shared, start);
        let mut st = shared.state.lock().unwrap();
        let tid = st.tid();
        st.depth[tid as usize] += 1;
        st.sink.begin_span(tid, name, ts);
        drop(st);
        SpanGuard {
            shared: Some(Arc::clone(shared)),
            name,
            start: Some(start),
            tid,
        }
    }

    /// Adds `delta` to counter `name` and emits a `C` event carrying the
    /// new cumulative value.
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(shared) = &self.shared else { return };
        let ts = Self::ts_us(shared, Instant::now());
        let mut st = shared.state.lock().unwrap();
        let tid = st.tid();
        let value = st.metrics.add(name, delta);
        st.sink.counter(tid, name, value as f64, ts);
    }

    /// Records one occurrence of a recoverable anomaly (a skipped shard,
    /// a torn checkpoint line, …) as counter `warn.<name>`. Warnings are
    /// ordinary counters — they ride along in `--stats` tables and
    /// traces — but the shared prefix lets [`Summary::warning_total`]
    /// and operators spot them at a glance.
    pub fn warning(&self, name: &str) {
        self.warning_n(name, 1);
    }

    /// [`warning`](Obs::warning) with an explicit occurrence count.
    ///
    /// Composes the `warn.<name>` key in a retained scratch buffer so
    /// hot-path warnings (shard ingest) never allocate per call once the
    /// buffer has grown to the longest warning name.
    pub fn warning_n(&self, name: &str, count: u64) {
        let Some(shared) = &self.shared else { return };
        let ts = Self::ts_us(shared, Instant::now());
        let mut st = shared.state.lock().unwrap();
        let tid = st.tid();
        let State {
            metrics,
            sink,
            name_buf,
            ..
        } = &mut *st;
        name_buf.clear();
        name_buf.push_str("warn.");
        name_buf.push_str(name);
        let value = metrics.add(name_buf, count);
        sink.counter(tid, name_buf, value as f64, ts);
    }

    /// Sets gauge `name` to `value` and emits a gauge-tagged `C` event.
    ///
    /// Gauges are point-in-time readings (worker utilization, queue
    /// depth); unlike counters and histograms they are *not* expected to
    /// be deterministic across runs, so the trace sink tags them and
    /// `trace_diff` skips them during structural comparison.
    pub fn gauge(&self, name: &str, value: f64) {
        let Some(shared) = &self.shared else { return };
        let ts = Self::ts_us(shared, Instant::now());
        let mut st = shared.state.lock().unwrap();
        let tid = st.tid();
        st.metrics.set_gauge(name, value);
        st.sink.gauge(tid, name, value, ts);
    }

    /// Records `value` into the named workload-level histogram and emits
    /// an `H` event. Buckets are fixed log2 boundaries and counts are
    /// exact `u64`s, so the aggregate is bit-reproducible at any `--jobs`
    /// (see [`histogram::Histogram`]).
    pub fn histogram(&self, name: &str, value: u64) {
        let Some(shared) = &self.shared else { return };
        let ts = Self::ts_us(shared, Instant::now());
        let mut st = shared.state.lock().unwrap();
        let tid = st.tid();
        let State { hists, sink, .. } = &mut *st;
        // get_mut-then-insert instead of entry() so the steady state
        // (histogram already exists) never allocates the key.
        match hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                hists.insert(name.to_string(), h);
            }
        }
        sink.hist_value(tid, name, value, ts);
    }

    /// A snapshot of everything aggregated so far.
    pub fn summary(&self) -> Summary {
        let Some(shared) = &self.shared else {
            return Summary::default();
        };
        let st = shared.state.lock().unwrap();
        let mut hists: BTreeMap<String, Histogram> = st
            .hists
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect();
        for (name, h) in &st.span_hists {
            hists.insert(format!("span.{name}"), h.clone());
        }
        Summary {
            metrics: st.metrics.clone(),
            spans: st
                .spans
                .iter()
                .map(|((name, tid), agg)| SpanRow {
                    name: name.clone(),
                    tid: *tid,
                    count: agg.count,
                    total_ns: agg.total_ns,
                })
                .collect(),
            hists,
        }
    }

    /// Emits one `S` summary event per histogram (span-duration
    /// histograms under `span.<name>`, workload histograms under their
    /// own name), then flushes the sink. Call once at end of run; the
    /// summary emission is guarded so repeated calls only re-flush.
    pub fn finish(&self) {
        if let Some(shared) = &self.shared {
            let ts = Self::ts_us(shared, Instant::now());
            let mut st = shared.state.lock().unwrap();
            let tid = st.tid();
            if !st.summarized {
                st.summarized = true;
                let State {
                    span_hists,
                    hists,
                    sink,
                    name_buf,
                    ..
                } = &mut *st;
                for (name, h) in span_hists.iter() {
                    name_buf.clear();
                    name_buf.push_str("span.");
                    name_buf.push_str(name);
                    sink.hist_summary(tid, name_buf, h, ts);
                }
                for (name, h) in hists.iter() {
                    sink.hist_summary(tid, name, h, ts);
                }
            }
            st.sink.flush();
        }
    }
}

/// RAII guard returned by [`Obs::span`].
#[derive(Debug)]
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
    name: &'static str,
    start: Option<Instant>,
    tid: u64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(shared), Some(start)) = (&self.shared, self.start) else {
            return;
        };
        let now = Instant::now();
        let ts = Obs::ts_us(shared, now);
        let dur_ns = now.duration_since(start).as_nanos() as u64;
        let mut st = shared.state.lock().unwrap();
        st.sink.end_span(self.tid, self.name, ts);
        let agg = st
            .spans
            .entry((self.name.to_string(), self.tid))
            .or_default();
        agg.count += 1;
        agg.total_ns += dur_ns;
        st.span_hists.entry(self.name).or_default().record(dur_ns);
        let d = &mut st.depth[self.tid as usize];
        *d = d.saturating_sub(1);
    }
}

/// One (span name, thread) aggregate row in a [`Summary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name.
    pub name: String,
    /// Dense thread id the completions ran on.
    pub tid: u64,
    /// Completed B/E pairs.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions.
    pub total_ns: u64,
}

/// Snapshot of an enabled handle's aggregates: the metrics registry plus
/// per-(span, thread) timing rows. `Display` renders the human `--stats`
/// table.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Counters and gauges.
    pub metrics: Metrics,
    /// Span timing rows, ordered by (name, tid).
    pub spans: Vec<SpanRow>,
    /// Histograms: workload histograms under their own name, span
    /// duration histograms (ns) under `span.<name>`.
    pub hists: BTreeMap<String, Histogram>,
}

impl Summary {
    /// The named histogram, if any values were recorded into it.
    /// Span-duration histograms live under `span.<name>`.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Rows for one span name (one per thread that ran it).
    pub fn span_rows<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRow> {
        self.spans.iter().filter(move |r| r.name == name)
    }

    /// Total nanoseconds spent in `name` across all threads.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.span_rows(name).map(|r| r.total_ns).sum()
    }

    /// Total completions of `name` across all threads.
    pub fn span_count(&self, name: &str) -> u64 {
        self.span_rows(name).map(|r| r.count).sum()
    }

    /// Sum of all `warn.*` counters — the run's recoverable-anomaly
    /// count (skipped shards, torn checkpoint lines, …). Zero on a
    /// clean run.
    pub fn warning_total(&self) -> u64 {
        self.metrics
            .counters()
            .filter(|(name, _)| name.starts_with("warn."))
            .map(|(_, v)| v)
            .sum()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.spans.is_empty() {
            writeln!(
                f,
                "  {:<40} {:>8} {:>12} {:>12}",
                "span", "count", "total_ms", "mean_ms"
            )?;
            // Collapse per-thread rows by name for the human table; the
            // per-thread split is still available programmatically.
            let mut by_name: BTreeMap<&str, SpanAgg> = BTreeMap::new();
            for r in &self.spans {
                let agg = by_name.entry(&r.name).or_default();
                agg.count += r.count;
                agg.total_ns += r.total_ns;
            }
            for (name, agg) in by_name {
                let total_ms = agg.total_ns as f64 / 1e6;
                let mean_ms = if agg.count > 0 {
                    total_ms / agg.count as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "  {:<40} {:>8} {:>12.3} {:>12.3}",
                    name, agg.count, total_ms, mean_ms
                )?;
            }
        }
        if !self.hists.is_empty() {
            writeln!(
                f,
                "  {:<40} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99", "max"
            )?;
            for (name, h) in &self.hists {
                let s = h.summary();
                writeln!(
                    f,
                    "  {:<40} {:>8} {:>12} {:>12} {:>12} {:>12}",
                    name, s.count, s.p50, s.p90, s.p99, s.max
                )?;
            }
        }
        if !self.metrics.is_empty() {
            writeln!(f, "  {:<40} {:>14}", "counter/gauge", "value")?;
            write!(f, "{}", self.metrics)?;
        }
        Ok(())
    }
}

/// Builds the handle the shared `--trace-out <path>` / `--stats` flags ask
/// for: trace sink if a path was given, aggregate-only if just `--stats`,
/// disabled otherwise.
pub fn obs_from_flags(trace_out: Option<&str>, stats: bool) -> std::io::Result<Obs> {
    match trace_out {
        Some(path) => Obs::to_trace_file(std::path::Path::new(path)),
        None if stats => Ok(Obs::aggregating()),
        None => Ok(Obs::disabled()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let _g = obs.span("x");
        obs.counter("c", 1);
        obs.gauge("g", 1.0);
        obs.finish();
        let s = obs.summary();
        assert!(s.metrics.is_empty());
        assert!(s.spans.is_empty());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let sink = MemorySink::new();
        let events = sink.events();
        let obs = Obs::with_sink(Box::new(sink));
        {
            let _outer = obs.span("outer");
            for _ in 0..3 {
                let _inner = obs.span("inner");
            }
        }
        let seq: Vec<(char, String)> = events
            .lock()
            .unwrap()
            .iter()
            .map(|e| (e.ph, e.name.clone()))
            .collect();
        let want: Vec<(char, String)> = [
            ('B', "outer"),
            ('B', "inner"),
            ('E', "inner"),
            ('B', "inner"),
            ('E', "inner"),
            ('B', "inner"),
            ('E', "inner"),
            ('E', "outer"),
        ]
        .iter()
        .map(|(p, n)| (*p, n.to_string()))
        .collect();
        assert_eq!(seq, want);
        let s = obs.summary();
        assert_eq!(s.span_count("inner"), 3);
        assert_eq!(s.span_count("outer"), 1);
        assert!(s.span_total_ns("outer") >= s.span_total_ns("inner"));
    }

    #[test]
    fn counters_emit_cumulative_values() {
        let sink = MemorySink::new();
        let events = sink.events();
        let obs = Obs::with_sink(Box::new(sink));
        obs.counter("n", 2);
        obs.counter("n", 3);
        obs.gauge("g", 0.5);
        let got = events.lock().unwrap();
        assert_eq!(got[0].value, Some(2.0));
        assert_eq!(got[1].value, Some(5.0));
        assert_eq!(got[2].value, Some(0.5));
        drop(got);
        assert_eq!(obs.summary().metrics.counter("n"), 5);
        assert_eq!(obs.summary().metrics.gauge("g"), Some(0.5));
    }

    #[test]
    fn threads_get_dense_tids_and_balanced_spans() {
        let sink = MemorySink::new();
        let events = sink.events();
        let obs = Obs::with_sink(Box::new(sink));
        {
            let _main = obs.span("main_work"); // main thread claims tid 0
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let _w = obs.span("worker");
                        obs.counter("items", 1);
                    });
                }
            });
        }
        let got = events.lock().unwrap();
        let max_tid = got.iter().map(|e| e.tid).max().unwrap();
        assert!(max_tid <= 3, "dense tids expected, got {max_tid}");
        // B/E balance per tid.
        let mut depth: HashMap<u64, i64> = HashMap::new();
        for e in got.iter() {
            match e.ph {
                'B' => *depth.entry(e.tid).or_default() += 1,
                'E' => {
                    let d = depth.entry(e.tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without B on tid {}", e.tid);
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0));
        drop(got);
        assert_eq!(obs.summary().metrics.counter("items"), 3);
        assert_eq!(obs.summary().span_count("worker"), 3);
    }

    #[test]
    fn warnings_are_prefixed_counters() {
        let obs = Obs::aggregating();
        obs.warning("shard.skipped.truncated");
        obs.warning("shard.skipped.truncated");
        obs.warning_n("shard.missing", 3);
        obs.counter("cc.pairs", 10); // not a warning
        let s = obs.summary();
        assert_eq!(s.metrics.counter("warn.shard.skipped.truncated"), 2);
        assert_eq!(s.metrics.counter("warn.shard.missing"), 3);
        assert_eq!(s.warning_total(), 5);
        assert!(s.to_string().contains("warn.shard.skipped.truncated"));

        // Disabled handles pay one branch and allocate nothing.
        let off = Obs::disabled();
        off.warning("x");
        assert_eq!(off.summary().warning_total(), 0);
    }

    #[test]
    fn histograms_aggregate_and_emit_h_events() {
        let sink = MemorySink::new();
        let events = sink.events();
        let obs = Obs::with_sink(Box::new(sink));
        obs.histogram("cc.interval_cells", 3);
        obs.histogram("cc.interval_cells", 900);
        obs.histogram("flg.objective", 7);
        let s = obs.summary();
        let h = s.hist("cc.interval_cells").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!((h.min(), h.max()), (3, 900));
        assert_eq!(s.hist("flg.objective").unwrap().count(), 1);
        let got = events.lock().unwrap();
        let hs: Vec<_> = got.iter().filter(|e| e.ph == 'H').collect();
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0].value, Some(3.0));
        assert!(s.to_string().contains("cc.interval_cells"));
    }

    #[test]
    fn spans_feed_duration_histograms() {
        let obs = Obs::aggregating();
        for _ in 0..5 {
            let _g = obs.span("phase_a");
        }
        let s = obs.summary();
        let h = s.hist("span.phase_a").unwrap();
        assert_eq!(h.count(), 5);
        let sum = s.span_total_ns("phase_a");
        assert_eq!(h.sum(), sum);
    }

    #[test]
    fn finish_emits_summaries_once() {
        let sink = MemorySink::new();
        let events = sink.events();
        let obs = Obs::with_sink(Box::new(sink));
        {
            let _g = obs.span("work");
        }
        obs.histogram("vals", 9);
        obs.finish();
        obs.finish(); // second call only re-flushes
        let got = events.lock().unwrap();
        let summaries: Vec<_> = got.iter().filter(|e| e.ph == 'S').collect();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].name, "span.work");
        assert_eq!(summaries[1].name, "vals");
    }

    #[test]
    fn warnings_do_not_grow_allocations_per_call() {
        // Behavioral contract of the retained name buffer: repeated
        // warnings of the same name keep aggregating correctly.
        let obs = Obs::aggregating();
        for _ in 0..100 {
            obs.warning("shard.skipped.truncated");
            obs.warning("io");
        }
        let s = obs.summary();
        assert_eq!(s.metrics.counter("warn.shard.skipped.truncated"), 100);
        assert_eq!(s.metrics.counter("warn.io"), 100);
        assert_eq!(s.warning_total(), 200);
    }

    #[test]
    fn summary_display_renders_tables() {
        let obs = Obs::aggregating();
        {
            let _g = obs.span("phase_a");
        }
        obs.counter("widgets", 7);
        let text = obs.summary().to_string();
        assert!(text.contains("phase_a"));
        assert!(text.contains("widgets"));
        assert!(text.contains("total_ms"));
    }

    #[test]
    fn obs_from_flags_matrix() {
        assert!(!obs_from_flags(None, false).unwrap().enabled());
        assert!(obs_from_flags(None, true).unwrap().enabled());
        let dir = std::env::temp_dir().join("slopt_obs_flags_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let obs = obs_from_flags(Some(path.to_str().unwrap()), false).unwrap();
        assert!(obs.enabled());
        obs.finish();
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
