//! Prometheus text-format exposition.
//!
//! [`MetricsSnapshot`] is the bridge between the profiling layer and
//! anything that scrapes: it freezes counters, gauges and histograms from
//! either a live [`crate::Summary`] or a replayed trace
//! ([`crate::replay::ReplaySummary`]) and renders the Prometheus
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! (`slopt-tool stats --prom`, and the API the future `slopt-serve`
//! daemon will expose on `/metrics`). Histograms keep their exact log2
//! cumulative bucket counts, which map 1:1 onto Prometheus `le` series.
//!
//! [`validate`] is the self-check CI pipes the exposition through: it
//! re-parses the rendered text and rejects undeclared samples, malformed
//! names, and non-monotonic histogram bucket series.

use std::collections::BTreeMap;

use crate::histogram::bucket_upper;
use crate::replay::ReplaySummary;
use crate::Summary;

/// All metric names are prefixed with this namespace in the exposition.
pub const NAMESPACE: &str = "slopt";

/// One frozen histogram, in the cumulative-bucket form Prometheus wants.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// `(inclusive upper bound, cumulative count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

/// A frozen, renderable view of one run's metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, f64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms (span durations under `span.<name>`).
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// Maps an internal metric name (`cc.interval_cells`,
/// `span.measure_cell`) to a legal Prometheus name: the `slopt_`
/// namespace plus the name with every character outside
/// `[a-zA-Z0-9_:]` replaced by `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(NAMESPACE.len() + 1 + name.len());
    out.push_str(NAMESPACE);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl MetricsSnapshot {
    /// Freezes a live [`Summary`] (the `--stats` aggregate).
    pub fn from_summary(s: &Summary) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, v) in s.metrics.counters() {
            snap.counters.insert(name.to_string(), v as f64);
        }
        for (name, v) in s.metrics.gauges() {
            snap.gauges.insert(name.to_string(), v);
        }
        for (name, h) in &s.hists {
            let buckets = h
                .nonzero_buckets()
                .into_iter()
                .map(|(i, cum)| (bucket_upper(i), cum))
                .collect();
            snap.hists.insert(
                name.clone(),
                HistSnapshot {
                    buckets,
                    count: h.count(),
                    sum: h.sum() as f64,
                },
            );
        }
        snap
    }

    /// Freezes a replayed trace (`slopt-tool stats --prom <file>`).
    pub fn from_replay(s: &ReplaySummary) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, v) in &s.counters {
            snap.counters.insert(name.clone(), *v);
        }
        for (name, v) in &s.gauges {
            snap.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &s.hists {
            let buckets = h
                .buckets
                .iter()
                .map(|&(i, cum)| (bucket_upper(i), cum))
                .collect();
            snap.hists.insert(
                name.clone(),
                HistSnapshot {
                    buckets,
                    count: h.count,
                    sum: h.sum,
                },
            );
        }
        snap
    }

    /// Renders the Prometheus text exposition. Deterministic: metrics are
    /// emitted in name order, one `# TYPE` comment per family.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n"));
            out.push_str(&format!("{n} {}\n", fmt_value(*v)));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n"));
            out.push_str(&format!("{n} {}\n", fmt_value(*v)));
        }
        for (name, h) in &self.hists {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            for (upper, cum) in &h.buckets {
                out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", fmt_value(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Self-check for a rendered exposition: every sample's family must be
/// declared by a preceding `# TYPE`, names must be legal, values must
/// parse, and histogram bucket series must be monotonically
/// non-decreasing with `le` bounds ascending and `+Inf` last, its count
/// matching `_count`. Returns the number of samples on success.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // In-progress histogram bucket state: family -> (last le, last cum,
    // saw +Inf, +Inf count).
    let mut hist_state: BTreeMap<String, (Option<f64>, u64, Option<u64>)> = BTreeMap::new();
    let mut samples = 0usize;
    for (no, raw) in text.lines().enumerate() {
        let no = no + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {no}: malformed # TYPE"));
            };
            if !valid_name(name) {
                return Err(format!("line {no}: illegal metric name '{name}'"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {no}: unknown metric type '{kind}'"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {no}: duplicate # TYPE for '{name}'"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (sample, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {no}: sample without value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {no}: unparsable value '{value}'"))?;
        let (name, labels) = match sample.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {no}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (sample, None),
        };
        if !valid_name(name) {
            return Err(format!("line {no}: illegal sample name '{name}'"));
        }
        // Resolve the family: histogram series use _bucket/_sum/_count.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        let kind = types
            .get(family)
            .ok_or_else(|| format!("line {no}: sample '{name}' has no # TYPE declaration"))?;
        if kind == "histogram" && name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {no}: histogram bucket without le label"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("line {no}: histogram bucket without le label"))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {no}: unparsable le bound '{le}'"))?
            };
            let cum = value as u64;
            let st = hist_state
                .entry(family.to_string())
                .or_insert((None, 0, None));
            if let Some(prev) = st.0 {
                if bound <= prev {
                    return Err(format!("line {no}: le bounds not ascending for '{family}'"));
                }
            }
            if cum < st.1 {
                return Err(format!(
                    "line {no}: bucket counts not monotonic for '{family}'"
                ));
            }
            st.0 = Some(bound);
            st.1 = cum;
            if bound.is_infinite() {
                st.2 = Some(cum);
            }
        } else if kind == "histogram" && name.ends_with("_count") {
            let st = hist_state
                .get(family)
                .ok_or_else(|| format!("line {no}: _count before buckets for '{family}'"))?;
            let inf =
                st.2.ok_or_else(|| format!("line {no}: histogram '{family}' missing +Inf bucket"))?;
            if value as u64 != inf {
                return Err(format!(
                    "line {no}: _count {} disagrees with +Inf bucket {} for '{family}'",
                    value as u64, inf
                ));
            }
        }
        samples += 1;
    }
    for (family, st) in &hist_state {
        if st.2.is_none() {
            return Err(format!("histogram '{family}' missing +Inf bucket"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Obs};

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("cc.interval_cells"), "slopt_cc_interval_cells");
        assert_eq!(sanitize("span.measure_cell"), "slopt_span_measure_cell");
        assert_eq!(sanitize("warn.shard-skipped"), "slopt_warn_shard_skipped");
    }

    #[test]
    fn renders_and_validates_a_live_summary() {
        let obs = Obs::with_sink(Box::new(MemorySink::new()));
        {
            let _g = obs.span("phase");
        }
        obs.counter("cc.pairs", 41);
        obs.gauge("runner.worker0.utilization", 0.75);
        obs.histogram("cc.interval_cells", 3);
        obs.histogram("cc.interval_cells", 900);
        let snap = MetricsSnapshot::from_summary(&obs.summary());
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE slopt_cc_pairs counter"));
        assert!(text.contains("slopt_cc_pairs 41"));
        assert!(text.contains("# TYPE slopt_runner_worker0_utilization gauge"));
        assert!(text.contains("slopt_runner_worker0_utilization 0.75"));
        assert!(text.contains("# TYPE slopt_cc_interval_cells histogram"));
        assert!(text.contains("slopt_cc_interval_cells_bucket{le=\"3\"} 1"));
        assert!(text.contains("slopt_cc_interval_cells_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("slopt_cc_interval_cells_count 2"));
        assert!(text.contains("slopt_span_phase_bucket"));
        let n = validate(&text).unwrap();
        assert!(n >= 8, "expected several samples, got {n}");
    }

    #[test]
    fn validate_rejects_malformed_expositions() {
        // Undeclared sample.
        assert!(validate("slopt_x 1\n").is_err());
        // Illegal name.
        assert!(validate("# TYPE 9bad counter\n9bad 1\n").is_err());
        // Unknown type keyword.
        assert!(validate("# TYPE slopt_x stuff\nslopt_x 1\n").is_err());
        // Non-monotonic buckets.
        let bad = "# TYPE slopt_h histogram\n\
                   slopt_h_bucket{le=\"1\"} 5\n\
                   slopt_h_bucket{le=\"2\"} 3\n\
                   slopt_h_bucket{le=\"+Inf\"} 5\n\
                   slopt_h_sum 9\nslopt_h_count 5\n";
        assert!(validate(bad).is_err());
        // le bounds must ascend.
        let bad = "# TYPE slopt_h histogram\n\
                   slopt_h_bucket{le=\"3\"} 1\n\
                   slopt_h_bucket{le=\"2\"} 2\n\
                   slopt_h_bucket{le=\"+Inf\"} 2\n";
        assert!(validate(bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE slopt_h histogram\nslopt_h_bucket{le=\"2\"} 2\n";
        assert!(validate(bad).is_err());
        // _count disagreeing with +Inf.
        let bad = "# TYPE slopt_h histogram\n\
                   slopt_h_bucket{le=\"+Inf\"} 2\n\
                   slopt_h_count 3\n";
        assert!(validate(bad).is_err());
        // Unparsable value.
        assert!(validate("# TYPE slopt_x counter\nslopt_x abc\n").is_err());
    }

    #[test]
    fn empty_snapshot_renders_empty_and_validates() {
        let text = MetricsSnapshot::default().to_prometheus();
        assert!(text.is_empty());
        assert_eq!(validate(&text).unwrap(), 0);
    }
}
