//! Global-free counter/gauge registry.
//!
//! A [`Metrics`] value is owned by whoever created the [`crate::Obs`]
//! handle — there is no process-global state, so two pipelines running in
//! the same process (e.g. parallel tests) cannot contaminate each other's
//! numbers. Counters are monotonic `u64` sums; gauges are last-write-wins
//! `f64` readings (utilization ratios, makespans).

use std::collections::BTreeMap;
use std::fmt;

/// A registry of named counters and gauges.
///
/// Names are dotted paths (`sim.invalidations`, `flg.edges_pruned`); the
/// `BTreeMap` keeps iteration order — and therefore every rendered table
/// and every trace replay — deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero), returning
    /// the new cumulative value. Saturates instead of wrapping.
    pub fn add(&mut self, name: &str, delta: u64) -> u64 {
        let slot = match self.counters.get_mut(name) {
            Some(v) => v,
            None => self.counters.entry(name.to_string()).or_insert(0),
        };
        *slot = slot.saturating_add(delta);
        *slot
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when no counter or gauge has ever been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other side's value. Used when aggregating per-worker registries.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in other.counters() {
            self.add(name, v);
        }
        for (name, v) in other.gauges() {
            self.set_gauge(name, v);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.counters() {
            writeln!(f, "  {name:<40} {v:>14}")?;
        }
        for (name, v) in self.gauges() {
            writeln!(f, "  {name:<40} {v:>14.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.add("a.b", 3), 3);
        assert_eq!(m.add("a.b", 4), 7);
        assert_eq!(m.counter("a.b"), 7);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut m = Metrics::new();
        m.add("x", u64::MAX - 1);
        assert_eq!(m.add("x", 5), u64::MAX);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge("u"), None);
        m.set_gauge("u", 0.5);
        m.set_gauge("u", 0.75);
        assert_eq!(m.gauge("u"), Some(0.75));
    }

    #[test]
    fn merge_adds_counters_and_overwrites_gauges() {
        let mut a = Metrics::new();
        a.add("c", 1);
        a.set_gauge("g", 1.0);
        let mut b = Metrics::new();
        b.add("c", 2);
        b.add("d", 9);
        b.set_gauge("g", 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 9);
        assert_eq!(a.gauge("g"), Some(2.0));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.add("z", 1);
        m.add("a", 1);
        m.add("m", 1);
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
