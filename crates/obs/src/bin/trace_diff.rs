//! Compares two `slopt-trace/1` files — the triage tool `perf_guard`
//! points at when it trips.
//!
//! ```text
//! trace_diff <a.jsonl> <b.jsonl> [--threshold-pct N] [--min-self-us U]
//! ```
//!
//! Two comparisons happen, with different determinism expectations:
//!
//! * **Structural** — span completion counts, counter final values, and
//!   workload histogram contents (count/min/max/buckets). These are pure
//!   functions of the work done, so two same-seed serial runs must match
//!   exactly; any delta exits 1. Gauges (tagged `"gauge":true`, e.g.
//!   worker utilization) and span-duration histograms (`span.*`) are
//!   timing-derived and excluded.
//! * **Timing** — per-span total/self microseconds and span-duration p99.
//!   Always reported for spans above `--min-self-us` (default 100), but
//!   only *judged* when `--threshold-pct N` is given: any such span whose
//!   self time or p99 moved more than N% exits 1.
//!
//! Exit codes: 0 no deltas, 1 structural delta or threshold breach,
//! 2 usage or unreadable/invalid input.

use std::collections::BTreeSet;
use std::process::ExitCode;

use slopt_obs::replay::ReplaySummary;
use slopt_obs::replay_str;

const USAGE: &str = "usage: trace_diff <a.jsonl> <b.jsonl> [--threshold-pct N] [--min-self-us U]";

struct Args {
    a: String,
    b: String,
    threshold_pct: Option<f64>,
    min_self_us: f64,
}

fn parse_args() -> Result<Args, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = None;
    let mut min_self_us = 100.0;
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--threshold-pct" => {
                let v = it.next().ok_or("--threshold-pct needs a value")?;
                let v: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --threshold-pct '{v}'"))?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("bad --threshold-pct '{v}'"));
                }
                threshold_pct = Some(v);
            }
            "--min-self-us" => {
                let v = it.next().ok_or("--min-self-us needs a value")?;
                min_self_us = v.parse().map_err(|_| format!("bad --min-self-us '{v}'"))?;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if paths.len() != 2 {
        return Err("expected exactly two trace files".to_string());
    }
    let b = paths.pop().unwrap_or_default();
    let a = paths.pop().unwrap_or_default();
    Ok(Args {
        a,
        b,
        threshold_pct,
        min_self_us,
    })
}

fn load(path: &str) -> Result<ReplaySummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    replay_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (b - a) / a * 100.0
    }
}

/// Structural comparison; returns the number of deltas printed. The
/// comparison itself lives in [`slopt_obs::structural_deltas`] so the
/// conformance suites can assert on it without shelling out.
fn diff_structural(a: &ReplaySummary, b: &ReplaySummary) -> usize {
    let deltas = slopt_obs::structural_deltas(a, b);
    for delta in &deltas {
        println!("  {delta}");
    }
    deltas.len()
}

/// Timing report; returns the number of threshold breaches (always 0
/// without `--threshold-pct`).
fn diff_timing(a: &ReplaySummary, b: &ReplaySummary, args: &Args) -> usize {
    let mut breaches = 0;
    let mut header = false;
    let span_names: BTreeSet<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    for name in span_names {
        let sa = a.spans.get(name).copied().unwrap_or_default();
        let sb = b.spans.get(name).copied().unwrap_or_default();
        if sa.self_us.max(sb.self_us) < args.min_self_us {
            continue;
        }
        if !header {
            println!(
                "  {:<40} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
                "span (timing)", "self_ms_a", "self_ms_b", "self%", "p99_us_a", "p99_us_b", "p99%"
            );
            header = true;
        }
        let self_pct = pct(sa.self_us, sb.self_us);
        let key = format!("span.{name}");
        let p99a = a.hists.get(&key).map_or(0, |h| h.p99) / 1000; // ns -> us
        let p99b = b.hists.get(&key).map_or(0, |h| h.p99) / 1000;
        let p99_pct = pct(p99a as f64, p99b as f64);
        let mut flag = "";
        if let Some(t) = args.threshold_pct {
            if self_pct.abs() > t || p99_pct.abs() > t {
                breaches += 1;
                flag = "  <-- over threshold";
            }
        }
        println!(
            "  {:<40} {:>12.3} {:>12.3} {:>7.1}% {:>10} {:>10} {:>7.1}%{}",
            name,
            sa.self_us / 1e3,
            sb.self_us / 1e3,
            self_pct,
            p99a,
            p99b,
            p99_pct,
            flag
        );
    }
    breaches
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("trace_diff: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (a, b) = match (load(&args.a), load(&args.b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("trace_diff: {e}");
            return ExitCode::from(2);
        }
    };
    println!("trace_diff: {} vs {}", args.a, args.b);
    println!("structural (spans, counters, workload histograms):");
    let structural = diff_structural(&a, &b);
    if structural == 0 {
        println!("  no deltas");
    }
    println!("timing (informational unless --threshold-pct):");
    let breaches = diff_timing(&a, &b, &args);
    println!("result: {structural} structural delta(s), {breaches} timing breach(es)");
    if structural > 0 || breaches > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
