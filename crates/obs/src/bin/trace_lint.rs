//! Line-by-line validator for `slopt-trace/1` files (CI gate).
//!
//! ```text
//! trace_lint <trace.jsonl> [--summary]
//! ```
//!
//! Exit 0 with a one-line verdict when the file is valid; exit 1 with the
//! offending line number otherwise. `--summary` additionally prints the
//! replayed counter/span table.

use std::process::ExitCode;

use slopt_obs::replay_str;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut summary = false;
    for a in &args {
        match a.as_str() {
            "--summary" => summary = true,
            "--help" | "-h" => {
                println!("usage: trace_lint <trace.jsonl> [--summary]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("trace_lint: unexpected argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_lint <trace.jsonl> [--summary]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match replay_str(&text) {
        Ok(s) => {
            println!(
                "{path}: OK ({} events, {} span names, {} counters, {} gauges, \
                 {} histograms, {} threads)",
                s.events,
                s.spans.len(),
                s.counters.len(),
                s.gauges.len(),
                s.hists.len(),
                s.tids.len()
            );
            if summary {
                print!("{s}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_lint: {path}: INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
