//! The [`ObsSink`] event-consumer trait and its in-process implementations.
//!
//! A sink receives the raw event stream (span begin/end, counter updates)
//! from an [`crate::Obs`] handle. The default [`NullSink`] drops everything
//! — with it, instrumentation cost is one branch plus one mutex round trip
//! per *span* (never per memory access; hot loops batch into local
//! accumulators and flush once). [`MemorySink`] buffers events for tests;
//! the file-backed JSONL sink lives in [`crate::trace`].

/// One instrumentation event, as delivered to sinks and as parsed back out
/// of a trace file.
///
/// `ph` follows the Chrome trace-event phase vocabulary: `B`/`E` bracket a
/// span on one thread, `C` carries a cumulative counter (or gauge) value,
/// `M` is metadata. Two slopt-specific phases ride along: `H` is one
/// histogram observation, `S` is an end-of-run histogram summary (bucket
/// counts + quantiles).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Phase tag: `B`, `E`, `C`, `M`, `H`, or `S`.
    pub ph: char,
    /// Span, counter, or metadata name.
    pub name: String,
    /// Dense thread id (0 = first thread to emit, i.e. the main thread).
    pub tid: u64,
    /// Microseconds since the owning `Obs` was created.
    pub ts_us: f64,
    /// Cumulative value, present on `C` events only.
    pub value: Option<f64>,
}

/// Consumes instrumentation events. All methods default to no-ops so a
/// sink only implements what it cares about.
pub trait ObsSink: Send {
    /// A span named `name` opened on thread `tid` at `ts_us`.
    fn begin_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        let _ = (tid, name, ts_us);
    }

    /// The innermost open span named `name` on thread `tid` closed.
    fn end_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        let _ = (tid, name, ts_us);
    }

    /// Counter `name` now reads `value` (cumulative).
    fn counter(&mut self, tid: u64, name: &str, value: f64, ts_us: f64) {
        let _ = (tid, name, value, ts_us);
    }

    /// Gauge `name` sampled at `value`. Gauges are point-in-time readings
    /// (often timing-derived, e.g. worker utilization) and are therefore
    /// *not* expected to be deterministic across runs; sinks that persist
    /// them should tag them so `trace_diff` can exclude them from
    /// structural comparison. Defaults to the counter path.
    fn gauge(&mut self, tid: u64, name: &str, value: f64, ts_us: f64) {
        self.counter(tid, name, value, ts_us);
    }

    /// One observation of `value` recorded into histogram `name`.
    fn hist_value(&mut self, tid: u64, name: &str, value: u64, ts_us: f64) {
        let _ = (tid, name, value, ts_us);
    }

    /// End-of-run summary of histogram `name` (bucket counts + quantiles).
    fn hist_summary(
        &mut self,
        tid: u64,
        name: &str,
        hist: &crate::histogram::Histogram,
        ts_us: f64,
    ) {
        let _ = (tid, name, hist, ts_us);
    }

    /// Flush any buffered output (end of run).
    fn flush(&mut self) {}
}

/// Discards every event. The disabled-instrumentation default.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// Buffers events in memory behind a shared handle, so tests can hand an
/// `Obs` to a pipeline and inspect the exact event sequence afterwards.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle that stays valid after the sink is moved into an `Obs`;
    /// lock it once the run is over to read the recorded events.
    pub fn events(&self) -> std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>> {
        std::sync::Arc::clone(&self.events)
    }
}

impl ObsSink for MemorySink {
    fn begin_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        self.events.lock().unwrap().push(TraceEvent {
            ph: 'B',
            name: name.to_string(),
            tid,
            ts_us,
            value: None,
        });
    }

    fn end_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        self.events.lock().unwrap().push(TraceEvent {
            ph: 'E',
            name: name.to_string(),
            tid,
            ts_us,
            value: None,
        });
    }

    fn counter(&mut self, tid: u64, name: &str, value: f64, ts_us: f64) {
        self.events.lock().unwrap().push(TraceEvent {
            ph: 'C',
            name: name.to_string(),
            tid,
            ts_us,
            value: Some(value),
        });
    }

    fn hist_value(&mut self, tid: u64, name: &str, value: u64, ts_us: f64) {
        self.events.lock().unwrap().push(TraceEvent {
            ph: 'H',
            name: name.to_string(),
            tid,
            ts_us,
            value: Some(value as f64),
        });
    }

    fn hist_summary(
        &mut self,
        tid: u64,
        name: &str,
        hist: &crate::histogram::Histogram,
        ts_us: f64,
    ) {
        self.events.lock().unwrap().push(TraceEvent {
            ph: 'S',
            name: name.to_string(),
            tid,
            ts_us,
            value: Some(hist.count() as f64),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        let events = sink.events();
        let mut s: Box<dyn ObsSink> = Box::new(sink);
        s.begin_span(0, "a", 1.0);
        s.counter(0, "c", 5.0, 2.0);
        s.end_span(0, "a", 3.0);
        s.flush();
        let got = events.lock().unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].ph, got[0].name.as_str()), ('B', "a"));
        assert_eq!(got[1].value, Some(5.0));
        assert_eq!((got[2].ph, got[2].name.as_str()), ('E', "a"));
    }

    #[test]
    fn null_sink_is_silent() {
        let mut s = NullSink;
        s.begin_span(0, "a", 1.0);
        s.end_span(0, "a", 2.0);
        s.counter(0, "c", 1.0, 3.0);
        s.flush();
    }
}
