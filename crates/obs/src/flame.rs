//! Folded-stack (FlameGraph collapsed) export.
//!
//! Renders the [`crate::replay::ReplaySummary::folded`] profile as one
//! line per distinct span stack — `outer;mid;leaf 412` — the input format
//! of Brendan Gregg's `flamegraph.pl` and of `inferno-flamegraph`, so any
//! `slopt-trace/1` file turns into a flamegraph with
//! `slopt-tool flame run.jsonl | flamegraph.pl > run.svg`.
//!
//! The value column is **self time in integer microseconds** (time spent
//! in the frame itself, excluding direct children), which is what makes
//! the rendered widths sum correctly instead of double-counting parents.
//! Lines are sorted by stack path, so two exports of the same trace are
//! byte-identical and two same-seed serial runs differ only in the value
//! column (timestamps are the one nondeterministic trace ingredient).

use crate::replay::ReplaySummary;

/// Renders the folded-stack profile of a replayed trace, one
/// `path;to;frame <self_us>` line per stack, sorted by path.
///
/// Self time is rounded to whole microseconds; stacks that round to zero
/// are still emitted (with value 0) so the stack *structure* of a trace
/// is fully preserved for golden tests.
pub fn folded(summary: &ReplaySummary) -> String {
    let mut out = String::new();
    for (path, self_us) in &summary.folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&format!("{}", self_us.round() as u64));
        out.push('\n');
    }
    out
}

/// The stack paths alone (no values), one per line, sorted — the
/// timestamp-independent skeleton golden tests pin.
pub fn folded_stacks_only(summary: &ReplaySummary) -> String {
    let mut out = String::new();
    for path in summary.folded.keys() {
        out.push_str(path);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_str;

    const HEADER: &str = "{\"ph\":\"M\",\"name\":\"slopt_trace_schema\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"schema\":\"slopt-trace/1\"}}";

    fn ev(ph: &str, name: &str, ts: f64) -> String {
        format!("{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"pid\":1,\"tid\":0,\"ts\":{ts}}}")
    }

    #[test]
    fn folds_nested_spans_with_self_time_values() {
        let text = [
            HEADER.to_string(),
            ev("B", "outer", 0.0),
            ev("B", "leaf", 2.0),
            ev("E", "leaf", 5.0),
            ev("E", "outer", 10.0),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        let got = folded(&s);
        assert_eq!(got, "outer 7\nouter;leaf 3\n");
        assert_eq!(folded_stacks_only(&s), "outer\nouter;leaf\n");
    }

    #[test]
    fn export_is_deterministic_for_a_fixed_summary() {
        let text = [
            HEADER.to_string(),
            ev("B", "b", 0.0),
            ev("E", "b", 1.0),
            ev("B", "a", 2.0),
            ev("E", "a", 3.0),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        // Sorted by path regardless of completion order.
        assert_eq!(folded(&s), "a 1\nb 1\n");
        assert_eq!(folded(&s), folded(&replay_str(&text).unwrap()));
    }
}
