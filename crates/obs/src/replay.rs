//! Replay and validation of saved `slopt-trace/1` files.
//!
//! [`replay_str`] re-aggregates a trace into the same counter/span summary
//! the live `--stats` sink prints, so `slopt-tool stats <file>` can
//! inspect a run without re-executing it. [`lint_str`] is the strict
//! line-by-line validator behind the `trace_lint` bin used in CI.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{parse, Json};
use crate::trace::SCHEMA;

/// A trace validation failure, pointing at the offending line.
#[derive(Clone, Debug)]
pub struct TraceError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Aggregate duration statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of completed B/E pairs.
    pub count: u64,
    /// Total microseconds across all completions.
    pub total_us: f64,
}

/// What a full replay of a trace recovers.
#[derive(Clone, Debug, Default)]
pub struct ReplaySummary {
    /// Schema string from the metadata line.
    pub schema: String,
    /// Total event lines (including metadata).
    pub events: usize,
    /// Final cumulative value per counter/gauge name.
    pub counters: BTreeMap<String, f64>,
    /// Per-name span statistics, aggregated over all threads.
    pub spans: BTreeMap<String, SpanStats>,
    /// Distinct thread ids that emitted events.
    pub tids: Vec<u64>,
}

impl fmt::Display for ReplaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: schema {}, {} events, {} threads",
            self.schema,
            self.events,
            self.tids.len()
        )?;
        if !self.spans.is_empty() {
            writeln!(
                f,
                "  {:<40} {:>8} {:>12} {:>12}",
                "span", "count", "total_ms", "mean_ms"
            )?;
            for (name, s) in &self.spans {
                let total_ms = s.total_us / 1e3;
                let mean_ms = if s.count > 0 {
                    total_ms / s.count as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "  {:<40} {:>8} {:>12.3} {:>12.3}",
                    name, s.count, total_ms, mean_ms
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "  {:<40} {:>14}", "counter/gauge", "value")?;
            for (name, v) in &self.counters {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    writeln!(f, "  {:<40} {:>14}", name, *v as i64)?;
                } else {
                    writeln!(f, "  {name:<40} {v:>14.4}")?;
                }
            }
        }
        Ok(())
    }
}

/// One parsed trace line, validated.
struct Line {
    ph: char,
    name: String,
    tid: u64,
    ts: f64,
    value: Option<f64>,
}

fn check_line(no: usize, text: &str) -> Result<Line, TraceError> {
    let fail = |msg: &str| TraceError {
        line: no,
        msg: msg.to_string(),
    };
    let v = parse(text).map_err(|e| fail(&format!("not valid JSON: {e}")))?;
    let ph_str = v
        .get("ph")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field 'ph'"))?;
    let ph = match ph_str {
        "M" => 'M',
        "B" => 'B',
        "E" => 'E',
        "C" => 'C',
        other => return Err(fail(&format!("unknown phase '{other}'"))),
    };
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field 'name'"))?;
    if name.is_empty() {
        return Err(fail("empty event name"));
    }
    v.get("pid")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'pid'"))?;
    let tid = v
        .get("tid")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'tid'"))?;
    let ts = v
        .get("ts")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'ts'"))?;
    if ts < 0.0 || !ts.is_finite() {
        return Err(fail("negative or non-finite 'ts'"));
    }
    let value = match ph {
        'C' => Some(
            v.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("C event missing numeric args.value"))?,
        ),
        _ => None,
    };
    if ph == 'M' && no == 1 {
        let schema = v
            .get("args")
            .and_then(|a| a.get("schema"))
            .and_then(Json::as_str)
            .ok_or_else(|| fail("metadata line missing args.schema"))?;
        if schema != SCHEMA {
            return Err(fail(&format!("schema '{schema}' is not '{SCHEMA}'")));
        }
    }
    Ok(Line {
        ph,
        name: name.to_string(),
        tid: tid as u64,
        ts,
        value,
    })
}

/// Validates and aggregates a trace held in memory.
///
/// Enforces, per line: valid JSON with `ph`/`name`/`pid`/`tid`/`ts`
/// fields, a known phase, and `args.value` on `C` events. Enforces across
/// lines: line 1 is the `slopt-trace/1` metadata event, and span B/E
/// events are properly nested (LIFO, matching names) and balanced on every
/// thread by end of file.
pub fn replay_str(text: &str) -> Result<ReplaySummary, TraceError> {
    let mut summary = ReplaySummary::default();
    let mut stacks: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut first = true;
    let mut no = 0usize;
    for raw in text.lines() {
        no += 1;
        let line = check_line(no, raw)?;
        if first {
            if line.ph != 'M' {
                return Err(TraceError {
                    line: no,
                    msg: format!(
                        "first line must be the schema metadata event, got '{}'",
                        line.ph
                    ),
                });
            }
            summary.schema = SCHEMA.to_string();
            first = false;
        }
        summary.events += 1;
        if !summary.tids.contains(&line.tid) {
            summary.tids.push(line.tid);
        }
        match line.ph {
            'B' => stacks
                .entry(line.tid)
                .or_default()
                .push((line.name, line.ts)),
            'E' => {
                let stack = stacks.entry(line.tid).or_default();
                let Some((open, began)) = stack.pop() else {
                    return Err(TraceError {
                        line: no,
                        msg: format!("E '{}' with no open span on tid {}", line.name, line.tid),
                    });
                };
                if open != line.name {
                    return Err(TraceError {
                        line: no,
                        msg: format!(
                            "E '{}' does not match innermost open span '{open}' on tid {}",
                            line.name, line.tid
                        ),
                    });
                }
                let s = summary.spans.entry(open).or_default();
                s.count += 1;
                s.total_us += (line.ts - began).max(0.0);
            }
            'C' => {
                summary
                    .counters
                    .insert(line.name, line.value.unwrap_or(0.0));
            }
            _ => {}
        }
    }
    if first {
        return Err(TraceError {
            line: 0,
            msg: "empty trace file".to_string(),
        });
    }
    for (tid, stack) in &stacks {
        if let Some((open, _)) = stack.last() {
            return Err(TraceError {
                line: no,
                msg: format!("span '{open}' still open on tid {tid} at end of trace"),
            });
        }
    }
    summary.tids.sort_unstable();
    Ok(summary)
}

/// Strict validation only (same checks as [`replay_str`], summary
/// discarded). Returns the number of event lines checked.
pub fn lint_str(text: &str) -> Result<usize, TraceError> {
    replay_str(text).map(|s| s.events)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"ph\":\"M\",\"name\":\"slopt_trace_schema\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"schema\":\"slopt-trace/1\"}}";

    fn ev(ph: &str, name: &str, tid: u64, ts: f64, value: Option<u64>) -> String {
        match value {
            Some(v) => format!(
                "{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{v}}}}}"
            ),
            None => format!(
                "{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
            ),
        }
    }

    #[test]
    fn replays_counters_and_spans() {
        let text = [
            HEADER.to_string(),
            ev("B", "outer", 0, 10.0, None),
            ev("C", "n", 0, 11.0, Some(3)),
            ev("B", "inner", 0, 12.0, None),
            ev("E", "inner", 0, 15.0, None),
            ev("C", "n", 0, 16.0, Some(7)),
            ev("E", "outer", 0, 20.0, None),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        assert_eq!(s.events, 7);
        assert_eq!(s.counters.get("n"), Some(&7.0));
        assert_eq!(s.spans["outer"].count, 1);
        assert!((s.spans["outer"].total_us - 10.0).abs() < 1e-9);
        assert!((s.spans["inner"].total_us - 3.0).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("outer"));
        assert!(rendered.contains('7'));
    }

    #[test]
    fn rejects_missing_schema_header() {
        let text = ev("B", "x", 0, 1.0, None);
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("metadata"), "{}", err.msg);
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = HEADER.replace("slopt-trace/1", "slopt-trace/0");
        assert!(replay_str(&text).is_err());
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let text = [HEADER.to_string(), ev("B", "x", 0, 1.0, None)].join("\n");
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("still open"), "{}", err.msg);
    }

    #[test]
    fn rejects_mismatched_end() {
        let text = [
            HEADER.to_string(),
            ev("B", "x", 0, 1.0, None),
            ev("E", "y", 0, 2.0, None),
        ]
        .join("\n");
        let err = replay_str(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("does not match"), "{}", err.msg);
    }

    #[test]
    fn spans_balance_independently_per_thread() {
        let text = [
            HEADER.to_string(),
            ev("B", "work", 1, 1.0, None),
            ev("B", "work", 2, 2.0, None),
            ev("E", "work", 1, 3.0, None),
            ev("E", "work", 2, 4.0, None),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        assert_eq!(s.spans["work"].count, 2);
        assert_eq!(s.tids, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_c_event_without_value() {
        let text = [HEADER.to_string(), ev("C", "n", 0, 1.0, None)].join("\n");
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("args.value"), "{}", err.msg);
    }

    #[test]
    fn rejects_empty_file_and_bad_json() {
        assert!(replay_str("").is_err());
        let text = [HEADER.to_string(), "{not json".to_string()].join("\n");
        assert!(lint_str(&text).is_err());
    }
}
