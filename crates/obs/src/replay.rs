//! Replay and validation of saved `slopt-trace/1` files.
//!
//! [`replay_str`] re-aggregates a trace into the same counter/span summary
//! the live `--stats` sink prints, so `slopt-tool stats <file>` can
//! inspect a run without re-executing it. On top of the flat aggregates it
//! runs the *attribution* pass: the span tree is reconstructed per thread
//! (spans nest LIFO per tid), each completion's duration is split into
//! **self time** (duration minus direct children) and inclusive time, and
//! every completion's full ancestor path is folded into a stack profile
//! ([`ReplaySummary::folded`]) that [`crate::flame`] renders in FlameGraph
//! collapsed format.
//!
//! [`lint_str`] is the strict line-by-line validator behind the
//! `trace_lint` bin used in CI. It understands every phase the trace sink
//! writes — `M`/`B`/`E`/`C` plus the profiling phases `H` (one histogram
//! observation) and `S` (end-of-run histogram summary) — and rejects
//! malformed histogram payloads (out-of-range or descending bucket
//! indices, non-monotonic cumulative counts, quantiles outside
//! `[min, max]`, summaries inconsistent with the `H` stream) instead of
//! silently passing them.

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::{Histogram, BUCKETS};
use crate::json::{parse, Json};
use crate::trace::SCHEMA;

/// A trace validation failure, pointing at the offending line.
#[derive(Clone, Debug)]
pub struct TraceError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Aggregate duration statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of completed B/E pairs.
    pub count: u64,
    /// Total (inclusive) microseconds across all completions.
    pub total_us: f64,
    /// Self microseconds: inclusive time minus time spent in direct
    /// children. Sums to the trace's total wall-clock span time across
    /// all names, which is what makes it the right regression unit.
    pub self_us: f64,
}

/// One `S` summary event, as parsed off the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayHist {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations (f64 on the wire).
    pub sum: f64,
    /// Exact minimum observation.
    pub min: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Median (bucket upper bound clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(bucket index, cumulative count)`,
    /// ascending in both.
    pub buckets: Vec<(usize, u64)>,
}

/// What a full replay of a trace recovers.
#[derive(Clone, Debug, Default)]
pub struct ReplaySummary {
    /// Schema string from the metadata line.
    pub schema: String,
    /// Total event lines (including metadata).
    pub events: usize,
    /// Final cumulative value per counter name (gauge-tagged `C` events
    /// are kept separately in [`ReplaySummary::gauges`]).
    pub counters: BTreeMap<String, f64>,
    /// Final value per gauge name (`C` events tagged `"gauge":true`).
    /// Gauges are point-in-time, usually timing-derived readings, so
    /// `trace_diff` excludes them from structural comparison.
    pub gauges: BTreeMap<String, f64>,
    /// Per-name span statistics, aggregated over all threads.
    pub spans: BTreeMap<String, SpanStats>,
    /// Histogram summaries from `S` events, by name (span-duration
    /// histograms under `span.<name>`).
    pub hists: BTreeMap<String, ReplayHist>,
    /// Folded stack profile: `a;b;c` ancestor path → self microseconds,
    /// merged across threads. Rendered by [`crate::flame::folded`].
    pub folded: BTreeMap<String, f64>,
    /// Distinct thread ids that emitted events.
    pub tids: Vec<u64>,
}

impl fmt::Display for ReplaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: schema {}, {} events, {} threads",
            self.schema,
            self.events,
            self.tids.len()
        )?;
        if !self.spans.is_empty() {
            writeln!(
                f,
                "  {:<40} {:>8} {:>12} {:>12} {:>12}",
                "span", "count", "total_ms", "self_ms", "mean_ms"
            )?;
            for (name, s) in &self.spans {
                let total_ms = s.total_us / 1e3;
                let mean_ms = if s.count > 0 {
                    total_ms / s.count as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "  {:<40} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                    name,
                    s.count,
                    total_ms,
                    s.self_us / 1e3,
                    mean_ms
                )?;
            }
        }
        if !self.hists.is_empty() {
            writeln!(
                f,
                "  {:<40} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99", "max"
            )?;
            for (name, h) in &self.hists {
                writeln!(
                    f,
                    "  {:<40} {:>8} {:>12} {:>12} {:>12} {:>12}",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                )?;
            }
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            writeln!(f, "  {:<40} {:>14}", "counter/gauge", "value")?;
            for (name, v) in self.counters.iter().chain(self.gauges.iter()) {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    writeln!(f, "  {:<40} {:>14}", name, *v as i64)?;
                } else {
                    writeln!(f, "  {name:<40} {v:>14.4}")?;
                }
            }
        }
        Ok(())
    }
}

/// Compares the *structural* content of two replayed traces: span
/// completion counts, counter final values, and workload histogram
/// contents (count/min/max/buckets). These are pure functions of the
/// work done, so two runs of the same seeded workload — at any `--jobs`,
/// resumed or not — must match exactly. Gauges and span-duration
/// histograms (`span.*`) are timing-derived and excluded.
///
/// Returns one human-readable line per delta, empty when the traces are
/// structurally identical. This is the comparison behind the
/// `trace_diff` bin and the ExecCtx conformance matrix.
pub fn structural_deltas(a: &ReplaySummary, b: &ReplaySummary) -> Vec<String> {
    let mut deltas = Vec::new();

    let span_names: std::collections::BTreeSet<&String> =
        a.spans.keys().chain(b.spans.keys()).collect();
    for name in span_names {
        let ca = a.spans.get(name).map_or(0, |s| s.count);
        let cb = b.spans.get(name).map_or(0, |s| s.count);
        if ca != cb {
            deltas.push(format!("span {name}: count {ca} -> {cb}"));
        }
    }

    let counter_names: std::collections::BTreeSet<&String> =
        a.counters.keys().chain(b.counters.keys()).collect();
    for name in counter_names {
        let va = a.counters.get(name).copied();
        let vb = b.counters.get(name).copied();
        if va != vb {
            let fmt = |v: Option<f64>| v.map_or("absent".to_string(), |x| format!("{x}"));
            deltas.push(format!("counter {name}: {} -> {}", fmt(va), fmt(vb)));
        }
    }

    // Workload histograms are deterministic; span.* duration histograms
    // are timing and excluded.
    let hist_names: std::collections::BTreeSet<&String> = a
        .hists
        .keys()
        .chain(b.hists.keys())
        .filter(|n| !n.starts_with("span."))
        .collect();
    for name in hist_names {
        match (a.hists.get(name), b.hists.get(name)) {
            (Some(ha), Some(hb)) => {
                if ha.count != hb.count
                    || ha.min != hb.min
                    || ha.max != hb.max
                    || ha.buckets != hb.buckets
                {
                    deltas.push(format!(
                        "histogram {name}: count {} -> {}, min {} -> {}, max {} -> {}",
                        ha.count, hb.count, ha.min, hb.min, ha.max, hb.max
                    ));
                }
            }
            (pa, _) => {
                let (present, missing) = if pa.is_some() { ("a", "b") } else { ("b", "a") };
                deltas.push(format!(
                    "histogram {name}: present in {present}, absent in {missing}"
                ));
            }
        }
    }
    deltas
}

/// One parsed trace line, validated.
struct Line {
    ph: char,
    name: String,
    tid: u64,
    ts: f64,
    value: Option<f64>,
    gauge: bool,
    hist: Option<ReplayHist>,
}

fn non_negative_u64(v: &Json, field: &str) -> Result<u64, String> {
    let n = v
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("S event missing numeric args.{field}"))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
        return Err(format!("args.{field} is not a non-negative integer"));
    }
    Ok(n as u64)
}

/// Validates an `S` event's args: all summary fields present, bucket
/// indices ascending and in range, cumulative counts strictly increasing
/// and ending at `count`, quantiles ordered and inside `[min, max]`.
fn check_summary_args(args: &Json) -> Result<ReplayHist, String> {
    let count = non_negative_u64(args, "count")?;
    let sum = args
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or("S event missing numeric args.sum")?;
    let min = non_negative_u64(args, "min")?;
    let max = non_negative_u64(args, "max")?;
    let p50 = non_negative_u64(args, "p50")?;
    let p90 = non_negative_u64(args, "p90")?;
    let p99 = non_negative_u64(args, "p99")?;
    let raw = args
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("S event missing array args.buckets")?;
    let mut buckets = Vec::with_capacity(raw.len());
    for pair in raw {
        let pair = pair.as_arr().ok_or("bucket entry is not a 2-array")?;
        if pair.len() != 2 {
            return Err("bucket entry is not a 2-array".to_string());
        }
        let idx = pair[0]
            .as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .ok_or("bucket index is not a non-negative integer")? as usize;
        let cum = pair[1]
            .as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .ok_or("bucket cumulative count is not a non-negative integer")?
            as u64;
        if idx >= BUCKETS {
            return Err(format!(
                "bucket index {idx} out of range (max {})",
                BUCKETS - 1
            ));
        }
        if let Some(&(prev_idx, prev_cum)) = buckets.last() {
            if idx <= prev_idx {
                return Err(format!("bucket indices not ascending at index {idx}"));
            }
            if cum <= prev_cum {
                return Err(format!(
                    "cumulative counts not increasing at bucket {idx} ({cum} <= {prev_cum})"
                ));
            }
        }
        buckets.push((idx, cum));
    }
    let bucket_total = buckets.last().map_or(0, |&(_, cum)| cum);
    if bucket_total != count {
        return Err(format!(
            "bucket counts sum to {bucket_total} but args.count is {count}"
        ));
    }
    if count > 0 {
        if min > max {
            return Err(format!("min {min} exceeds max {max}"));
        }
        if !(p50 <= p90 && p90 <= p99) {
            return Err("quantiles not ordered (p50 <= p90 <= p99)".to_string());
        }
        if p50 < min || p99 > max {
            return Err("quantiles outside [min, max]".to_string());
        }
    } else if !buckets.is_empty() {
        return Err("empty summary (count 0) with non-empty buckets".to_string());
    }
    Ok(ReplayHist {
        count,
        sum,
        min,
        max,
        p50,
        p90,
        p99,
        buckets,
    })
}

fn check_line(no: usize, text: &str) -> Result<Line, TraceError> {
    let fail = |msg: &str| TraceError {
        line: no,
        msg: msg.to_string(),
    };
    let v = parse(text).map_err(|e| fail(&format!("not valid JSON: {e}")))?;
    let ph_str = v
        .get("ph")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field 'ph'"))?;
    let ph = match ph_str {
        "M" => 'M',
        "B" => 'B',
        "E" => 'E',
        "C" => 'C',
        "H" => 'H',
        "S" => 'S',
        other => return Err(fail(&format!("unknown phase '{other}'"))),
    };
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field 'name'"))?;
    if name.is_empty() {
        return Err(fail("empty event name"));
    }
    v.get("pid")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'pid'"))?;
    let tid = v
        .get("tid")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'tid'"))?;
    let ts = v
        .get("ts")
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing numeric field 'ts'"))?;
    if ts < 0.0 || !ts.is_finite() {
        return Err(fail("negative or non-finite 'ts'"));
    }
    let value = match ph {
        'C' => Some(
            v.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("C event missing numeric args.value"))?,
        ),
        'H' => {
            let raw = v
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .ok_or_else(|| fail("H event missing numeric args.value"))?;
            if !(raw.is_finite() && raw >= 0.0 && raw.fract() == 0.0) {
                return Err(fail("H event args.value is not a non-negative integer"));
            }
            Some(raw)
        }
        _ => None,
    };
    let gauge = ph == 'C'
        && v.get("args")
            .and_then(|a| a.get("gauge"))
            .map(|g| *g == Json::Bool(true))
            .unwrap_or(false);
    let hist = if ph == 'S' {
        let args = v.get("args").ok_or_else(|| fail("S event missing args"))?;
        Some(check_summary_args(args).map_err(|e| fail(&e))?)
    } else {
        None
    };
    if ph == 'M' && no == 1 {
        let schema = v
            .get("args")
            .and_then(|a| a.get("schema"))
            .and_then(Json::as_str)
            .ok_or_else(|| fail("metadata line missing args.schema"))?;
        if schema != SCHEMA {
            return Err(fail(&format!("schema '{schema}' is not '{SCHEMA}'")));
        }
    }
    Ok(Line {
        ph,
        name: name.to_string(),
        tid: tid as u64,
        ts,
        value,
        gauge,
        hist,
    })
}

/// One open span frame during replay: name, begin ts, and the inclusive
/// microseconds its direct children have consumed so far.
struct Frame {
    name: String,
    began: f64,
    child_us: f64,
}

/// Validates and aggregates a trace held in memory.
///
/// Enforces, per line: valid JSON with `ph`/`name`/`pid`/`tid`/`ts`
/// fields, a known phase, `args.value` on `C`/`H` events, and a
/// well-formed summary payload on `S` events. Enforces across lines: line
/// 1 is the `slopt-trace/1` metadata event, span B/E events are properly
/// nested (LIFO, matching names) and balanced on every thread by end of
/// file, and every `S` summary agrees with the `H` observations of the
/// same name (exact bucket counts).
pub fn replay_str(text: &str) -> Result<ReplaySummary, TraceError> {
    let mut summary = ReplaySummary::default();
    let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    // Histograms rebuilt from the H stream, to cross-check S summaries.
    let mut observed: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut first = true;
    let mut no = 0usize;
    for raw in text.lines() {
        no += 1;
        let line = check_line(no, raw)?;
        if first {
            if line.ph != 'M' {
                return Err(TraceError {
                    line: no,
                    msg: format!(
                        "first line must be the schema metadata event, got '{}'",
                        line.ph
                    ),
                });
            }
            summary.schema = SCHEMA.to_string();
            first = false;
        }
        summary.events += 1;
        if !summary.tids.contains(&line.tid) {
            summary.tids.push(line.tid);
        }
        match line.ph {
            'B' => stacks.entry(line.tid).or_default().push(Frame {
                name: line.name,
                began: line.ts,
                child_us: 0.0,
            }),
            'E' => {
                let stack = stacks.entry(line.tid).or_default();
                let Some(frame) = stack.pop() else {
                    return Err(TraceError {
                        line: no,
                        msg: format!("E '{}' with no open span on tid {}", line.name, line.tid),
                    });
                };
                if frame.name != line.name {
                    return Err(TraceError {
                        line: no,
                        msg: format!(
                            "E '{}' does not match innermost open span '{}' on tid {}",
                            line.name, frame.name, line.tid
                        ),
                    });
                }
                let total = (line.ts - frame.began).max(0.0);
                let self_us = (total - frame.child_us).max(0.0);
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += total;
                }
                let mut path = String::new();
                for f in stack.iter() {
                    path.push_str(&f.name);
                    path.push(';');
                }
                path.push_str(&frame.name);
                *summary.folded.entry(path).or_insert(0.0) += self_us;
                let s = summary.spans.entry(frame.name).or_default();
                s.count += 1;
                s.total_us += total;
                s.self_us += self_us;
            }
            'C' => {
                let target = if line.gauge {
                    &mut summary.gauges
                } else {
                    &mut summary.counters
                };
                target.insert(line.name, line.value.unwrap_or(0.0));
            }
            'H' => {
                observed
                    .entry(line.name)
                    .or_default()
                    .record(line.value.unwrap_or(0.0) as u64);
            }
            'S' => {
                let hist = line.hist.unwrap_or_default();
                if let Some(h) = observed.get(&line.name) {
                    if h.nonzero_buckets() != hist.buckets {
                        return Err(TraceError {
                            line: no,
                            msg: format!(
                                "S summary for '{}' disagrees with its H events \
                                 (bucket counts differ)",
                                line.name
                            ),
                        });
                    }
                }
                summary.hists.insert(line.name, hist);
            }
            _ => {}
        }
    }
    if first {
        return Err(TraceError {
            line: 0,
            msg: "empty trace file".to_string(),
        });
    }
    for (tid, stack) in &stacks {
        if let Some(frame) = stack.last() {
            return Err(TraceError {
                line: no,
                msg: format!(
                    "span '{}' still open on tid {tid} at end of trace",
                    frame.name
                ),
            });
        }
    }
    summary.tids.sort_unstable();
    Ok(summary)
}

/// Strict validation only (same checks as [`replay_str`], summary
/// discarded). Returns the number of event lines checked.
pub fn lint_str(text: &str) -> Result<usize, TraceError> {
    replay_str(text).map(|s| s.events)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"ph\":\"M\",\"name\":\"slopt_trace_schema\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"schema\":\"slopt-trace/1\"}}";

    fn ev(ph: &str, name: &str, tid: u64, ts: f64, value: Option<u64>) -> String {
        match value {
            Some(v) => format!(
                "{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{v}}}}}"
            ),
            None => format!(
                "{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
            ),
        }
    }

    fn summary_ev(name: &str, ts: f64, args: &str) -> String {
        format!(
            "{{\"ph\":\"S\",\"name\":\"{name}\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"args\":{args}}}"
        )
    }

    #[test]
    fn replays_counters_and_spans() {
        let text = [
            HEADER.to_string(),
            ev("B", "outer", 0, 10.0, None),
            ev("C", "n", 0, 11.0, Some(3)),
            ev("B", "inner", 0, 12.0, None),
            ev("E", "inner", 0, 15.0, None),
            ev("C", "n", 0, 16.0, Some(7)),
            ev("E", "outer", 0, 20.0, None),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        assert_eq!(s.events, 7);
        assert_eq!(s.counters.get("n"), Some(&7.0));
        assert_eq!(s.spans["outer"].count, 1);
        assert!((s.spans["outer"].total_us - 10.0).abs() < 1e-9);
        assert!((s.spans["inner"].total_us - 3.0).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("outer"));
        assert!(rendered.contains('7'));
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let text = [
            HEADER.to_string(),
            ev("B", "outer", 0, 0.0, None),
            ev("B", "mid", 0, 2.0, None),
            ev("B", "leaf", 0, 3.0, None),
            ev("E", "leaf", 0, 7.0, None),
            ev("E", "mid", 0, 8.0, None),
            ev("B", "leaf", 0, 9.0, None),
            ev("E", "leaf", 0, 10.0, None),
            ev("E", "outer", 0, 12.0, None),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        // outer: 12 total, children mid (6) + leaf (1) -> self 5.
        assert!((s.spans["outer"].self_us - 5.0).abs() < 1e-9);
        // mid: 6 total, child leaf 4 -> self 2.
        assert!((s.spans["mid"].self_us - 2.0).abs() < 1e-9);
        // leaf is a leaf: self == total == 4 + 1.
        assert!((s.spans["leaf"].self_us - 5.0).abs() < 1e-9);
        // Self times sum to the root's inclusive time.
        let total_self: f64 = s.spans.values().map(|x| x.self_us).sum();
        assert!((total_self - 12.0).abs() < 1e-9);
        // Folded stacks carry the ancestor path.
        assert!((s.folded["outer;mid;leaf"] - 4.0).abs() < 1e-9);
        assert!((s.folded["outer;leaf"] - 1.0).abs() < 1e-9);
        assert!((s.folded["outer"] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gauges_are_separated_from_counters() {
        let gauge_line = "{\"ph\":\"C\",\"name\":\"util\",\"pid\":1,\"tid\":0,\"ts\":1,\"args\":{\"value\":0.5,\"gauge\":true}}";
        let text = [
            HEADER.to_string(),
            ev("C", "n", 0, 1.0, Some(3)),
            gauge_line.to_string(),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        assert_eq!(s.counters.get("n"), Some(&3.0));
        assert!(!s.counters.contains_key("util"));
        assert_eq!(s.gauges.get("util"), Some(&0.5));
    }

    #[test]
    fn replays_histograms_and_checks_summary_consistency() {
        let good = summary_ev(
            "vals",
            9.0,
            "{\"count\":3,\"sum\":12,\"min\":2,\"max\":8,\"p50\":3,\"p90\":8,\"p99\":8,\"buckets\":[[2,2],[4,3]]}",
        );
        let text = [
            HEADER.to_string(),
            ev("H", "vals", 0, 1.0, Some(2)),
            ev("H", "vals", 0, 2.0, Some(3)),
            ev("H", "vals", 0, 3.0, Some(8)),
            good,
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        let h = &s.hists["vals"];
        assert_eq!(h.count, 3);
        assert_eq!((h.min, h.max, h.p99), (2, 8, 8));
        assert_eq!(h.buckets, vec![(2, 2), (4, 3)]);
        assert!(s.to_string().contains("vals"));

        // Same S payload but only two H events -> bucket mismatch.
        let bad = [
            HEADER.to_string(),
            ev("H", "vals", 0, 1.0, Some(2)),
            ev("H", "vals", 0, 3.0, Some(8)),
            summary_ev(
                "vals",
                9.0,
                "{\"count\":3,\"sum\":12,\"min\":2,\"max\":8,\"p50\":3,\"p90\":8,\"p99\":8,\"buckets\":[[2,2],[4,3]]}",
            ),
        ]
        .join("\n");
        let err = replay_str(&bad).unwrap_err();
        assert!(err.msg.contains("disagrees"), "{}", err.msg);
    }

    #[test]
    fn rejects_malformed_summaries() {
        let cases = [
            // Descending bucket indices.
            "{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\"p50\":1,\"p90\":3,\"p99\":3,\"buckets\":[[2,1],[1,2]]}",
            // Non-monotonic cumulative counts.
            "{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\"p50\":1,\"p90\":3,\"p99\":3,\"buckets\":[[1,2],[2,2]]}",
            // Bucket total disagrees with count.
            "{\"count\":5,\"sum\":4,\"min\":1,\"max\":3,\"p50\":1,\"p90\":3,\"p99\":3,\"buckets\":[[1,1],[2,2]]}",
            // Bucket index out of range.
            "{\"count\":1,\"sum\":4,\"min\":1,\"max\":3,\"p50\":1,\"p90\":3,\"p99\":3,\"buckets\":[[65,1]]}",
            // Quantiles out of order.
            "{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\"p50\":3,\"p90\":1,\"p99\":3,\"buckets\":[[1,1],[2,2]]}",
            // Quantile outside [min, max].
            "{\"count\":2,\"sum\":4,\"min\":1,\"max\":3,\"p50\":1,\"p90\":3,\"p99\":9,\"buckets\":[[1,1],[2,2]]}",
            // min above max.
            "{\"count\":2,\"sum\":4,\"min\":5,\"max\":3,\"p50\":5,\"p90\":5,\"p99\":5,\"buckets\":[[1,1],[2,2]]}",
        ];
        for args in cases {
            let text = [HEADER.to_string(), summary_ev("h", 1.0, args)].join("\n");
            assert!(replay_str(&text).is_err(), "accepted malformed: {args}");
        }
    }

    #[test]
    fn rejects_fractional_h_values() {
        let text = [
            HEADER.to_string(),
            "{\"ph\":\"H\",\"name\":\"h\",\"pid\":1,\"tid\":0,\"ts\":1,\"args\":{\"value\":1.5}}"
                .to_string(),
        ]
        .join("\n");
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("non-negative integer"), "{}", err.msg);
    }

    #[test]
    fn rejects_missing_schema_header() {
        let text = ev("B", "x", 0, 1.0, None);
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("metadata"), "{}", err.msg);
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = HEADER.replace("slopt-trace/1", "slopt-trace/0");
        assert!(replay_str(&text).is_err());
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let text = [HEADER.to_string(), ev("B", "x", 0, 1.0, None)].join("\n");
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("still open"), "{}", err.msg);
    }

    #[test]
    fn rejects_mismatched_end() {
        let text = [
            HEADER.to_string(),
            ev("B", "x", 0, 1.0, None),
            ev("E", "y", 0, 2.0, None),
        ]
        .join("\n");
        let err = replay_str(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("does not match"), "{}", err.msg);
    }

    #[test]
    fn spans_balance_independently_per_thread() {
        let text = [
            HEADER.to_string(),
            ev("B", "work", 1, 1.0, None),
            ev("B", "work", 2, 2.0, None),
            ev("E", "work", 1, 3.0, None),
            ev("E", "work", 2, 4.0, None),
        ]
        .join("\n");
        let s = replay_str(&text).unwrap();
        assert_eq!(s.spans["work"].count, 2);
        assert_eq!(s.tids, vec![0, 1, 2]);
        // Sibling stacks merge in the folded profile.
        assert!((s.folded["work"] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_c_event_without_value() {
        let text = [HEADER.to_string(), ev("C", "n", 0, 1.0, None)].join("\n");
        let err = replay_str(&text).unwrap_err();
        assert!(err.msg.contains("args.value"), "{}", err.msg);
    }

    #[test]
    fn rejects_empty_file_and_bad_json() {
        assert!(replay_str("").is_err());
        let text = [HEADER.to_string(), "{not json".to_string()].join("\n");
        assert!(lint_str(&text).is_err());
    }
}
