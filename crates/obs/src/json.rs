//! A minimal recursive-descent JSON parser.
//!
//! The build environment is offline (no serde), and the obs layer both
//! writes JSON (trace sink, perf reports) and reads it back (trace replay,
//! `trace_lint`, `perf_guard`). This parser covers the full JSON grammar
//! minus surrogate-pair `\u` escapes, which none of our writers emit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so re-serialization order is stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parses_unicode_escapes_and_multibyte() {
        assert_eq!(parse("\"\\u0041é\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        let err = parse("nul").unwrap_err();
        assert!(err.to_string().contains("null"));
    }

    #[test]
    fn roundtrips_a_trace_line() {
        let line = r#"{"ph":"C","name":"sim.invalidations","pid":1,"tid":0,"ts":12.345,"args":{"value":42}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
    }
}
