//! Deterministic log2-bucketed histograms.
//!
//! A [`Histogram`] is the distribution primitive of the profiling layer:
//! every RAII span feeds one per span name (duration nanoseconds), and
//! [`crate::Obs::histogram`] records workload-level values (per-interval
//! Code Concurrency cost, per-struct FLG objective). The design goals, in
//! order:
//!
//! 1. **Bit-reproducible at any `--jobs`.** Bucket counts are exact `u64`
//!    sums and [`Histogram::merge`] is associative and commutative
//!    (saturating `u64` addition equals `min(true sum, u64::MAX)` in any
//!    association), so the order threads record or partial histograms
//!    merge in can never change the result. There is no sampling, no
//!    decay, no floating-point accumulation.
//! 2. **Fixed memory.** 65 buckets (one per bit length, plus a zero
//!    bucket) cover the whole `u64` range; a histogram is a flat array,
//!    never an allocation per observation.
//! 3. **Deterministic quantiles.** [`Histogram::quantile`] resolves a
//!    rank to its bucket's upper bound, clamped to the exact observed
//!    `[min, max]` — a pure function of the counts, so p50/p90/p99 are
//!    comparable across runs and hosts.
//!
//! The relative error of a log2 bucket is at most 2×, which is the right
//! trade for profiling: "p99 regressed from the 1 ms bucket to the 4 ms
//! bucket" is the question `trace_diff` answers; sub-bucket precision
//! would cost unbounded memory or determinism.

use std::fmt;

/// Number of buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values with bit length `i`, i.e. `2^(i-1) <= v < 2^i`.
pub const BUCKETS: usize = 65;

/// A fixed log2-bucketed distribution of `u64` values with exact count,
/// sum, min and max. See the module docs for the determinism contract.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("buckets", &self.nonzero_buckets())
            .finish()
    }
}

/// The bucket index a value lands in: 0 for 0, else the bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] = self.counts[bucket_index(value)].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Associative and
    /// commutative: any merge tree over the same observations yields the
    /// same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (index by [`bucket_index`]).
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The non-empty buckets as `(bucket index, cumulative count)` pairs,
    /// ascending in both — the wire form of the `S` summary trace event,
    /// whose monotonicity `trace_lint` enforces.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum = cum.saturating_add(c);
                out.push((i, cum));
            }
        }
        out
    }

    /// Rebuilds a histogram from `(bucket index, cumulative count)` pairs
    /// plus exact min/max, the inverse of [`Histogram::nonzero_buckets`].
    /// Returns `None` if the pairs are malformed (index out of range or
    /// descending, cumulative counts non-increasing).
    pub fn from_cumulative_buckets(
        pairs: &[(usize, u64)],
        min: u64,
        max: u64,
    ) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut prev_idx: Option<usize> = None;
        let mut prev_cum = 0u64;
        for &(i, cum) in pairs {
            if i >= BUCKETS || prev_idx.is_some_and(|p| p >= i) || cum <= prev_cum {
                return None;
            }
            let delta = cum - prev_cum;
            h.counts[i] = delta;
            // Representative value for the sum: the bucket upper bound
            // (the sum is advisory after a round-trip; counts are exact).
            h.sum = h.sum.saturating_add(bucket_upper(i).saturating_mul(delta));
            h.count = h.count.saturating_add(delta);
            prev_idx = Some(i);
            prev_cum = cum;
        }
        if h.count > 0 {
            h.min = min;
            h.max = max;
        }
        Some(h)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the containing bucket's upper
    /// bound, clamped to the observed `[min, max]`. Returns 0 when empty.
    /// Deterministic: a pure function of the counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The fixed p50/p90/p99 summary row.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// The fixed quantile summary of one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let s = h.summary();
        // rank ceil(0.5*5)=3 -> third value lives in bucket 2 (values
        // 2,3); upper bound 3.
        assert_eq!(s.p50, 3);
        // rank 5 -> bucket of 1000 (bucket 10, upper 1023) clamped to
        // max 1000.
        assert_eq!(s.p99, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let values = [0u64, 1, 5, 5, 9, 120, 4096, u64::MAX];
        let mut serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial);
    }

    #[test]
    fn cumulative_buckets_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 7, 7, 300] {
            h.record(v);
        }
        let pairs = h.nonzero_buckets();
        assert_eq!(pairs.last().unwrap().1, h.count());
        let back = Histogram::from_cumulative_buckets(&pairs, h.min(), h.max()).unwrap();
        assert_eq!(back.bucket_counts(), h.bucket_counts());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        // Quantiles survive the round trip (they only need counts+bounds).
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn from_cumulative_rejects_malformed() {
        // Descending indices.
        assert!(Histogram::from_cumulative_buckets(&[(3, 1), (2, 2)], 0, 9).is_none());
        // Non-increasing cumulative counts.
        assert!(Histogram::from_cumulative_buckets(&[(1, 2), (2, 2)], 0, 9).is_none());
        // Out-of-range bucket.
        assert!(Histogram::from_cumulative_buckets(&[(65, 1)], 0, 9).is_none());
        // Valid sparse form.
        assert!(Histogram::from_cumulative_buckets(&[(1, 2), (9, 3)], 1, 300).is_some());
    }

    #[test]
    fn saturating_sums_never_wrap() {
        let mut h = Histogram::new();
        h.record_n(u64::MAX, 3);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 3);
        let mut other = h.clone();
        other.merge(&h);
        assert_eq!(other.sum(), u64::MAX);
        assert_eq!(other.count(), 6);
    }
}
