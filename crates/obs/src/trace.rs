//! File-backed `slopt-trace/1` JSONL sink.
//!
//! One JSON object per line, using the Chrome trace-event vocabulary so a
//! trace is loadable in `about:tracing` / Perfetto after wrapping the
//! lines in a JSON array (see EXPERIMENTS.md for the one-liner). Line 1 is
//! always an `M` metadata event naming the schema, so tools can reject
//! foreign files before reading further.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::sink::ObsSink;

/// Schema identifier written into (and required on) the first trace line.
pub const SCHEMA: &str = "slopt-trace/1";

/// The constant `pid` stamped on every event (traces describe one process).
pub const TRACE_PID: u64 = 1;

/// Escapes a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a timestamp with fixed (3-decimal) sub-microsecond precision so
/// traces do not carry float noise in the last digits.
fn fmt_ts(ts_us: f64) -> String {
    format!("{ts_us:.3}")
}

/// Streams events to a JSONL file as they happen.
pub struct TraceSink {
    out: BufWriter<File>,
    /// First write error, reported once at `flush` time instead of
    /// panicking mid-pipeline.
    error: Option<io::Error>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl TraceSink {
    /// Creates the file at `path` (truncating) and writes the schema
    /// metadata line.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut sink = TraceSink {
            out: BufWriter::new(file),
            error: None,
        };
        sink.write_line(&format!(
            "{{\"ph\":\"M\",\"name\":\"slopt_trace_schema\",\"pid\":{TRACE_PID},\"tid\":0,\
             \"ts\":0,\"args\":{{\"schema\":\"{SCHEMA}\"}}}}"
        ));
        Ok(sink)
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }

    /// The first write error, if any occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }
}

impl ObsSink for TraceSink {
    fn begin_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        let line = format!(
            "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"slopt\",\"pid\":{TRACE_PID},\
             \"tid\":{tid},\"ts\":{}}}",
            json_escape(name),
            fmt_ts(ts_us)
        );
        self.write_line(&line);
    }

    fn end_span(&mut self, tid: u64, name: &str, ts_us: f64) {
        let line = format!(
            "{{\"ph\":\"E\",\"name\":\"{}\",\"cat\":\"slopt\",\"pid\":{TRACE_PID},\
             \"tid\":{tid},\"ts\":{}}}",
            json_escape(name),
            fmt_ts(ts_us)
        );
        self.write_line(&line);
    }

    fn counter(&mut self, tid: u64, name: &str, value: f64, ts_us: f64) {
        // Counters are cumulative, so Perfetto renders them as rising step
        // functions; emit integral values without a fraction part.
        let v = if value.fract() == 0.0 && value.abs() < 9e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        let line = format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{TRACE_PID},\"tid\":{tid},\
             \"ts\":{},\"args\":{{\"value\":{v}}}}}",
            json_escape(name),
            fmt_ts(ts_us)
        );
        self.write_line(&line);
    }

    fn gauge(&mut self, tid: u64, name: &str, value: f64, ts_us: f64) {
        // Same wire shape as a counter, plus a "gauge":true marker so
        // `trace_diff` knows the value is a point-in-time (usually
        // timing-derived, hence nondeterministic) reading and excludes it
        // from structural comparison.
        let v = if value.fract() == 0.0 && value.abs() < 9e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        let line = format!(
            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{TRACE_PID},\"tid\":{tid},\
             \"ts\":{},\"args\":{{\"value\":{v},\"gauge\":true}}}}",
            json_escape(name),
            fmt_ts(ts_us)
        );
        self.write_line(&line);
    }

    fn hist_value(&mut self, tid: u64, name: &str, value: u64, ts_us: f64) {
        let line = format!(
            "{{\"ph\":\"H\",\"name\":\"{}\",\"pid\":{TRACE_PID},\"tid\":{tid},\
             \"ts\":{},\"args\":{{\"value\":{value}}}}}",
            json_escape(name),
            fmt_ts(ts_us)
        );
        self.write_line(&line);
    }

    fn hist_summary(
        &mut self,
        tid: u64,
        name: &str,
        hist: &crate::histogram::Histogram,
        ts_us: f64,
    ) {
        let s = hist.summary();
        let mut buckets = String::from("[");
        for (i, (idx, cum)) in hist.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{idx},{cum}]"));
        }
        buckets.push(']');
        let line = format!(
            "{{\"ph\":\"S\",\"name\":\"{}\",\"pid\":{TRACE_PID},\"tid\":{tid},\
             \"ts\":{},\"args\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":{buckets}}}}}",
            json_escape(name),
            fmt_ts(ts_us),
            s.count,
            s.sum,
            s.min,
            s.max,
            s.p50,
            s.p90,
            s.p99,
        );
        self.write_line(&line);
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        if let Some(e) = &self.error {
            eprintln!("slopt-obs: trace write failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_file_starts_with_schema_line() {
        let dir = std::env::temp_dir().join("slopt_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        {
            let mut sink = TraceSink::create(&path).unwrap();
            sink.begin_span(0, "phase", 1.5);
            sink.counter(0, "n", 3.0, 2.0);
            sink.end_span(0, "phase", 4.25);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("slopt-trace/1"), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"ph\":\"B\""));
        assert!(lines[2].contains("\"value\":3"));
        assert!(lines[3].contains("\"ts\":4.250"));
        std::fs::remove_file(&path).ok();
    }
}
