//! # slopt-core — the structure layout optimizer
//!
//! The primary contribution of the CGO 2007 paper *"Structure Layout
//! Optimization for Multithreaded Programs"*: a layout tool that optimizes
//! simultaneously for spatial locality and reduced false sharing.
//!
//! * [`flg`] — the **Field Layout Graph**: nodes are the fields of a
//!   record, edge weights are `k1·CycleGain − k2·CycleLoss`.
//! * [`mod@cluster`] — the paper's greedy clustering (Figs. 6–7): grow
//!   cache-line-sized clusters around hot seeds, maximizing intra-cluster
//!   weight.
//! * [`layoutgen`] — materialize clusters as a concrete layout with each
//!   cluster on its own cache line(s).
//! * [`heuristics`] — the baselines: declaration order, the naïve
//!   **sort-by-hotness** packing of §5.1, and random layouts.
//! * [`subgraph`] — the §5.2 "best performance" mode: keep only important
//!   edges (all negative + top-20 positive), cluster that subgraph, and
//!   apply the result as constraints on the original hand-tuned layout.
//! * [`report`] — the advisory output of the semi-automatic tool.
//! * [`pipeline`] — one-call drivers: [`suggest_layout`] (fully automatic)
//!   and [`suggest_constrained`] (incremental).
//!
//! ## Example
//!
//! ```
//! use slopt_core::{cluster::cluster, flg::Flg};
//! use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType};
//!
//! // Two affine fields, one false-sharing counter.
//! let rec = RecordType::new(
//!     "S",
//!     vec![
//!         ("head", FieldType::Prim(PrimType::Ptr)),
//!         ("len", FieldType::Prim(PrimType::U64)),
//!         ("stat_counter", FieldType::Prim(PrimType::U64)),
//!     ],
//! );
//! let flg = Flg::from_parts(
//!     RecordId(0),
//!     vec![100, 90, 80],
//!     vec![
//!         (FieldIdx(0), FieldIdx(1), 50.0),    // traversed together
//!         (FieldIdx(0), FieldIdx(2), -400.0),  // counter false-shares
//!     ],
//! );
//! let clustering = cluster(&flg, &rec, 128);
//! assert_eq!(clustering.cluster_of(FieldIdx(0)), clustering.cluster_of(FieldIdx(1)));
//! assert_ne!(clustering.cluster_of(FieldIdx(0)), clustering.cluster_of(FieldIdx(2)));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod delta;
pub mod dot;
pub mod flg;
pub mod gvl;
pub mod heuristics;
pub mod layoutgen;
pub mod par;
pub mod pipeline;
pub mod refine;
pub mod report;
pub mod subgraph;
pub mod transform;

pub use cluster::{cluster, cluster_with, cluster_with_obs, Clustering};
pub use delta::{canonical_cluster_sum, clustering_score_with, DeltaObjective, Move};
pub use dot::{to_dot, DotOptions};
pub use flg::{reference::FlgRef, Flg, FlgParams, FlgView};
pub use gvl::{layout_globals, link_order_layout, Global, GlobalId, GvlProblem, SectionLayout};
pub use heuristics::{declaration_layout, random_layout, sort_by_hotness};
pub use layoutgen::{layout_from_clusters, LayoutOptions};
pub use par::{
    default_jobs, par_map, par_map_supervised, par_map_supervised_commit, FailureKind, FaultReport,
    ItemFailure, SupervisePolicy, WorkerError,
};
pub use pipeline::{
    suggest_constrained, suggest_layout, suggest_layout_all, suggest_layout_all_obs,
    suggest_layout_obs, LayoutRequest, Suggestion, ToolParams,
};
pub use refine::{clustering_score, refine, RefineParams};
pub use report::{LayoutReport, ReportEdge};
pub use subgraph::{
    best_effort_layout, constrained_layout, important_subgraph, Constraints, SubgraphParams,
};
pub use transform::{materialize_split, split_hot_cold, SplitParams, SplitPlan};
