//! Clustering refinement — the paper's §7: "We believe that the layouts
//! can be improved further by … a better clustering algorithm."
//!
//! The greedy pass (paper Fig. 6) is order-sensitive: once a field joins
//! a cluster it never reconsiders, and a hot seed can capture a field
//! whose edges would be better spent elsewhere. [`refine`] runs a
//! steepest-ascent local search over single-field moves:
//!
//! * **objective**: total intra-cluster weight (inter-cluster weight is
//!   its complement, so maximizing one minimizes the other);
//! * **moves**: relocate one field to another cluster or to a fresh
//!   singleton, provided the destination keeps its cache-line count;
//! * **termination**: no improving move, or the move budget is exhausted.
//!
//! The result provably never scores below the greedy input, and empty
//! clusters are dropped.

use crate::cluster::Clustering;
use crate::flg::Flg;
use slopt_ir::types::{FieldIdx, RecordType};

/// Refinement limits.
#[derive(Copy, Clone, Debug)]
pub struct RefineParams {
    /// Maximum number of accepted moves (safety bound; the search usually
    /// converges long before).
    pub max_moves: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams { max_moves: 10_000 }
    }
}

/// Total intra-cluster edge weight — the clustering objective.
pub fn clustering_score(flg: &Flg, clustering: &Clustering) -> f64 {
    clustering
        .clusters()
        .iter()
        .map(|c| {
            let mut w = 0.0;
            for (i, &a) in c.iter().enumerate() {
                for &b in &c[i + 1..] {
                    w += flg.weight(a, b);
                }
            }
            w
        })
        .sum()
}

fn cluster_bytes(record: &RecordType, members: &[FieldIdx]) -> u64 {
    let mut cursor = 0u64;
    for &f in members {
        let def = record.field(f);
        let a = def.align();
        cursor = (cursor + a - 1) & !(a - 1);
        cursor += def.size();
    }
    cursor
}

fn cluster_lines(record: &RecordType, members: &[FieldIdx], line_size: u64) -> u64 {
    cluster_bytes(record, members).div_ceil(line_size).max(1)
}

/// Improves a clustering by steepest-ascent single-field moves. Returns
/// the refined clustering and its score (`>=` the input's score).
///
/// # Panics
///
/// Panics if `line_size` is not a power of two.
pub fn refine(
    flg: &Flg,
    record: &RecordType,
    clustering: &Clustering,
    line_size: u64,
    params: RefineParams,
) -> (Clustering, f64) {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let mut clusters: Vec<Vec<FieldIdx>> = clustering.clusters().to_vec();
    let mut moves = 0usize;

    loop {
        if moves >= params.max_moves {
            break;
        }
        // Find the single best move across all (field, destination) pairs.
        let mut best: Option<(usize, usize, usize, f64)> = None; // (src, idx, dst, gain)
        for (src, cluster) in clusters.iter().enumerate() {
            for (idx, &f) in cluster.iter().enumerate() {
                let others: Vec<FieldIdx> = cluster.iter().copied().filter(|&g| g != f).collect();
                let out_gain = -flg.gain_into(f, &others); // lost by leaving
                for dst in 0..=clusters.len() {
                    if dst == src {
                        continue;
                    }
                    let in_gain = if dst == clusters.len() {
                        0.0 // fresh singleton
                    } else {
                        // Capacity: moving f into dst must not grow it.
                        let mut extended = clusters[dst].clone();
                        extended.push(f);
                        if cluster_lines(record, &extended, line_size)
                            > cluster_lines(record, &clusters[dst], line_size)
                        {
                            continue;
                        }
                        flg.gain_into(f, &clusters[dst])
                    };
                    let gain = in_gain + out_gain;
                    if gain > 1e-9 && best.is_none_or(|b| gain > b.3) {
                        best = Some((src, idx, dst, gain));
                    }
                }
            }
        }
        let Some((src, idx, dst, _)) = best else {
            break;
        };
        let f = clusters[src].remove(idx);
        if dst == clusters.len() {
            clusters.push(vec![f]);
        } else {
            clusters[dst].push(f);
        }
        clusters.retain(|c| !c.is_empty());
        moves += 1;
    }

    let refined = Clustering::new(clusters);
    let score = clustering_score(flg, &refined);
    (refined, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use slopt_ir::types::{FieldType, PrimType, RecordId};

    fn record_u64(n: usize) -> RecordType {
        RecordType::new(
            "S",
            (0..n)
                .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
                .collect(),
        )
    }

    /// A case the greedy pass gets wrong: the hottest field f0 grabs f2
    /// (edge +5) even though f2's edge to f3 (+8) is worth more — but f3
    /// is repelled by f0, so greedy can never bring them together.
    /// Refinement must move f2 over to f3 (an immediately improving
    /// single move: −5 + 8), then pull f4 in after it.
    #[test]
    fn refinement_fixes_a_greedy_mistake() {
        let flg = Flg::from_parts(
            RecordId(0),
            vec![100, 90, 80, 20, 10],
            vec![
                (FieldIdx(0), FieldIdx(1), 50.0),
                (FieldIdx(0), FieldIdx(2), 5.0),
                (FieldIdx(2), FieldIdx(3), 8.0),
                (FieldIdx(2), FieldIdx(4), 8.0),
                // Keep 3,4 out of cluster 0: strongly repelled by f0.
                (FieldIdx(0), FieldIdx(3), -100.0),
                (FieldIdx(0), FieldIdx(4), -100.0),
            ],
        );
        let rec = record_u64(5);
        let greedy = cluster(&flg, &rec, 128);
        // Greedy: f0 seeds, takes f1 (+50) and f2 (+10); then {f3, f4}.
        assert_eq!(greedy.cluster_of(FieldIdx(2)), Some(0));
        let g_score = clustering_score(&flg, &greedy);

        let (refined, r_score) = refine(&flg, &rec, &greedy, 128, RefineParams::default());
        assert!(r_score >= g_score, "refinement never loses score");
        assert!(r_score > g_score, "this instance must strictly improve");
        assert_eq!(
            refined.cluster_of(FieldIdx(2)),
            refined.cluster_of(FieldIdx(3)),
            "f2 belongs with f3/f4: {refined:?}"
        );
        assert_eq!(refined.field_count(), 5);
    }

    #[test]
    fn refinement_is_idempotent_on_optima() {
        let flg = Flg::from_parts(
            RecordId(0),
            vec![10, 10, 10, 10],
            vec![
                (FieldIdx(0), FieldIdx(1), 5.0),
                (FieldIdx(2), FieldIdx(3), 5.0),
                (FieldIdx(0), FieldIdx(2), -5.0),
            ],
        );
        let rec = record_u64(4);
        let greedy = cluster(&flg, &rec, 128);
        let (once, s1) = refine(&flg, &rec, &greedy, 128, RefineParams::default());
        let (twice, s2) = refine(&flg, &rec, &once, 128, RefineParams::default());
        assert_eq!(s1, s2);
        assert_eq!(once, twice);
    }

    #[test]
    fn capacity_is_respected() {
        // 17 mutually affine u64s: refinement cannot squeeze a 17th into
        // a full 128-byte cluster.
        let n = 17;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((FieldIdx(i), FieldIdx(j), 1.0));
            }
        }
        let flg = Flg::from_parts(RecordId(0), vec![10; n], edges);
        let rec = record_u64(n);
        let greedy = cluster(&flg, &rec, 128);
        let (refined, _) = refine(&flg, &rec, &greedy, 128, RefineParams::default());
        for c in refined.clusters() {
            assert!(c.len() <= 16, "cluster exceeds a cache line: {}", c.len());
        }
        assert_eq!(refined.field_count(), n);
    }

    #[test]
    fn move_budget_is_honored() {
        let flg = Flg::from_parts(
            RecordId(0),
            vec![10, 9, 8, 7],
            vec![
                (FieldIdx(0), FieldIdx(3), 100.0),
                (FieldIdx(1), FieldIdx(2), 100.0),
                (FieldIdx(0), FieldIdx(1), -100.0),
            ],
        );
        let rec = record_u64(4);
        let greedy = cluster(&flg, &rec, 128);
        let (_, unlimited) = refine(&flg, &rec, &greedy, 128, RefineParams::default());
        let (capped, capped_score) =
            refine(&flg, &rec, &greedy, 128, RefineParams { max_moves: 0 });
        assert_eq!(
            capped.clusters(),
            greedy.clusters(),
            "zero budget = no change"
        );
        assert!(capped_score <= unlimited);
    }
}
