//! Incremental (delta) evaluation of the clustering objective.
//!
//! The stochastic layout search (`slopt-search`) proposes thousands of
//! small edits to a clustering per chain. Rescoring each candidate with
//! [`clustering_score`](crate::refine::clustering_score) costs a pass
//! over every intra-cluster pair; [`DeltaObjective`] instead scores a
//! proposed [`Move`] in O(cluster degree) against the triangular
//! [`FlgView`] weights, and keeps a tracked score that is **bit-identical
//! to the full recompute** after every accepted edit.
//!
//! Bit-identity argument (f64 addition is not associative, so order is
//! everything):
//!
//! * each cluster's intra-weight is only ever produced by
//!   [`canonical_cluster_sum`], the verbatim inner loop of
//!   `clustering_score` — when an edit touches a cluster, that cluster's
//!   sum is recomputed in canonical order rather than adjusted in place;
//! * the total is the same left fold (`0.0 + s₀ + s₁ + …`) over the
//!   per-cluster sums, in cluster order, that `clustering_score`'s
//!   `.map(..).sum()` performs.
//!
//! Both facts make [`DeltaObjective::score`] reproduce the exact
//! instruction sequence of a full recompute over the current cluster
//! list, so the two agree to the last bit — which is what lets the
//! search's final objective be checked against the plain scorer, and
//! what the `search_delta` perf bench asserts before trusting its
//! timings.
//!
//! Capacity is enforced the same way the greedy pass does it: a move may
//! not grow the destination cluster's cache-line count (for
//! [`Move::Merge`], the union must fit the destination's current lines —
//! the source's lines are freed). The objective counts every
//! intra-cluster pair as co-located, so letting clusters outgrow their
//! lines would score pairs that cannot physically share a line.
//! Appends reuse the O(1) incremental fit check of `find_best_match` —
//! packed cluster bytes are cached, so extending a cluster by one field
//! is `align(bytes, align(f)) + size(f)` with no re-pack.

use crate::cluster::Clustering;
use crate::flg::FlgView;
use slopt_ir::types::{FieldIdx, RecordType};

/// One proposed edit to a clustering. Cluster indices refer to the
/// current cluster list of the [`DeltaObjective`] the move is scored
/// against (empty slots left by earlier moves are valid destinations).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Move {
    /// Move `field` out of its cluster, appending it to cluster `dst`;
    /// `dst == cluster_count()` sends it to a fresh singleton (reusing
    /// the lowest-indexed empty slot when one exists).
    MoveField {
        /// The field to relocate.
        field: FieldIdx,
        /// Destination cluster index, or `cluster_count()` for a fresh
        /// singleton.
        dst: usize,
    },
    /// Exchange two fields' positions. Across clusters this trades the
    /// members; within one cluster it is an intra-cluster permutation —
    /// objective-neutral (the estimate is `0.0`) but it changes packing,
    /// which can open or close capacity for later moves.
    SwapFields {
        /// First field.
        a: FieldIdx,
        /// Second field.
        b: FieldIdx,
    },
    /// Split one cluster's member list in two before position `at`
    /// (`1 <= at < len`); the tail becomes a new cluster.
    Split {
        /// Cluster to split.
        cluster: usize,
        /// Member position the tail starts at.
        at: usize,
    },
    /// Append cluster `src`'s members onto cluster `dst`, leaving `src`
    /// empty.
    Merge {
        /// Cluster that absorbs the members.
        dst: usize,
        /// Cluster that is emptied.
        src: usize,
    },
}

/// The exact inner loop of
/// [`clustering_score`](crate::refine::clustering_score) for one
/// cluster: pairs in `(i, j > i)` order, left-folded from `0.0`. Every
/// per-cluster sum in this module comes from here, which is what makes
/// the tracked total bit-identical to a full recompute.
pub fn canonical_cluster_sum<V: FlgView>(flg: &V, c: &[FieldIdx]) -> f64 {
    let mut w = 0.0;
    for (i, &a) in c.iter().enumerate() {
        for &b in &c[i + 1..] {
            w += flg.weight(a, b);
        }
    }
    w
}

/// [`clustering_score`](crate::refine::clustering_score) generalized to
/// any [`FlgView`]: same per-cluster loop, same left fold over clusters,
/// hence bit-identical to the concrete-`Flg` scorer on the same input.
pub fn clustering_score_with<V: FlgView>(flg: &V, clustering: &Clustering) -> f64 {
    clustering
        .clusters()
        .iter()
        .map(|c| canonical_cluster_sum(flg, c))
        .sum()
}

/// Bytes a cluster occupies when its fields are packed in order under C
/// alignment rules, starting at a cache-line boundary.
fn packed_bytes(record: &RecordType, members: &[FieldIdx]) -> u64 {
    let mut cursor = 0u64;
    for &f in members {
        let def = record.field(f);
        let a = def.align();
        cursor = (cursor + a - 1) & !(a - 1);
        cursor += def.size();
    }
    cursor
}

/// Incremental evaluator of the clustering objective over one record's
/// FLG: scores a [`Move`] in O(cluster degree), applies accepted moves,
/// and tracks a score that stays f64-bit-identical to
/// [`clustering_score`](crate::refine::clustering_score) on the current
/// cluster list.
///
/// ```
/// use slopt_core::delta::{DeltaObjective, Move};
/// use slopt_core::{cluster::cluster, clustering_score, flg::Flg};
/// use slopt_ir::types::{FieldIdx, FieldType, PrimType, RecordId, RecordType};
///
/// let rec = RecordType::new(
///     "S",
///     vec![
///         ("a", FieldType::Prim(PrimType::U64)),
///         ("b", FieldType::Prim(PrimType::U64)),
///         ("c", FieldType::Prim(PrimType::U64)),
///     ],
/// );
/// let flg = Flg::from_parts(
///     RecordId(0),
///     vec![3, 2, 1],
///     vec![(FieldIdx(1), FieldIdx(2), 4.0), (FieldIdx(0), FieldIdx(1), -1.0)],
/// );
/// let greedy = cluster(&flg, &rec, 128);
/// let mut delta = DeltaObjective::new(&flg, &rec, &greedy, 128);
/// // Estimate, apply, and confirm against the full scorer.
/// let m = Move::MoveField { field: FieldIdx(2), dst: delta.cluster_of(FieldIdx(1)) };
/// if let Some(est) = delta.score_move(m) {
///     let before = delta.score();
///     delta.apply(m);
///     assert!((delta.score() - before - est).abs() < 1e-9);
/// }
/// assert_eq!(
///     delta.score().to_bits(),
///     clustering_score(&flg, &delta.clone().into_clustering_raw()).to_bits(),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct DeltaObjective<'a, V: FlgView> {
    flg: &'a V,
    record: &'a RecordType,
    line_size: u64,
    clusters: Vec<Vec<FieldIdx>>,
    /// `of[f] == i` ⇔ field `f` lives in `clusters[i]`.
    of: Vec<usize>,
    /// Per-cluster canonical intra-weight sums.
    sums: Vec<f64>,
    /// Per-cluster packed byte sizes (the O(1) append-fit cache).
    bytes: Vec<u64>,
}

impl<'a, V: FlgView> DeltaObjective<'a, V> {
    /// Builds the evaluator from an existing clustering.
    ///
    /// # Panics
    ///
    /// Panics if the clustering does not cover every FLG field exactly
    /// once, if the FLG and record field counts differ, or if
    /// `line_size` is not a power of two.
    pub fn new(
        flg: &'a V,
        record: &'a RecordType,
        clustering: &Clustering,
        line_size: u64,
    ) -> Self {
        assert_eq!(
            flg.field_count(),
            record.field_count(),
            "FLG and record field counts differ"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            clustering.field_count(),
            flg.field_count(),
            "clustering must cover every field"
        );
        let clusters: Vec<Vec<FieldIdx>> = clustering.clusters().to_vec();
        let mut of = vec![usize::MAX; flg.field_count()];
        for (i, c) in clusters.iter().enumerate() {
            for &f in c {
                of[f.index()] = i;
            }
        }
        let sums = clusters
            .iter()
            .map(|c| canonical_cluster_sum(flg, c))
            .collect();
        let bytes = clusters.iter().map(|c| packed_bytes(record, c)).collect();
        DeltaObjective {
            flg,
            record,
            line_size,
            clusters,
            of,
            sums,
            bytes,
        }
    }

    /// The current cluster list (may contain empty slots left by moves).
    pub fn clusters(&self) -> &[Vec<FieldIdx>] {
        &self.clusters
    }

    /// Number of cluster slots (including empty ones).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Index of the cluster currently holding `f`.
    pub fn cluster_of(&self, f: FieldIdx) -> usize {
        self.of[f.index()]
    }

    /// The tracked objective: the same left fold over per-cluster sums
    /// that `clustering_score` performs, hence bit-identical to a full
    /// recompute over [`clusters`](Self::clusters).
    pub fn score(&self) -> f64 {
        self.sums.iter().copied().sum()
    }

    /// Consumes the evaluator into a [`Clustering`], dropping empty
    /// slots.
    pub fn into_clustering(self) -> Clustering {
        Clustering::new(
            self.clusters
                .into_iter()
                .filter(|c| !c.is_empty())
                .collect(),
        )
    }

    /// Consumes the evaluator into a [`Clustering`] that keeps empty
    /// slots — the exact cluster list the tracked score folds over, for
    /// bit-level comparison against the full scorer.
    pub fn into_clustering_raw(self) -> Clustering {
        Clustering::new(self.clusters)
    }

    fn lines(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.line_size).max(1)
    }

    /// O(1) append-fit: whether appending `f` to the cluster currently
    /// occupying `bytes` keeps its line count. Empty clusters accept any
    /// field (they are fresh singletons).
    fn append_fits(&self, bytes: u64, empty: bool, f: FieldIdx) -> bool {
        if empty {
            return true;
        }
        let def = self.record.field(f);
        let a = def.align();
        let extended = ((bytes + a - 1) & !(a - 1)) + def.size();
        self.lines(extended) <= self.lines(bytes)
    }

    /// Scores a proposed move in O(cluster degree): `Some(estimate)` of
    /// the objective change if the move is feasible (capacity-safe and
    /// not a no-op), `None` otherwise. The estimate is ordinary f64
    /// arithmetic — callers needing the exact new score [`apply`] the
    /// move and read [`score`](Self::score).
    pub fn score_move(&self, m: Move) -> Option<f64> {
        match m {
            Move::MoveField { field, dst } => {
                let src = self.of[field.index()];
                if dst == src || dst > self.clusters.len() {
                    return None;
                }
                let leaving = -self.flg.gain_into(field, &self.clusters[src]);
                if dst == self.clusters.len() {
                    // Fresh singleton: pointless if already alone.
                    if self.clusters[src].len() == 1 {
                        return None;
                    }
                    return Some(leaving);
                }
                let members = &self.clusters[dst];
                if !self.append_fits(self.bytes[dst], members.is_empty(), field) {
                    return None;
                }
                Some(self.flg.gain_into(field, members) + leaving)
            }
            Move::SwapFields { a, b } => {
                if a == b {
                    return None;
                }
                let (ca, cb) = (self.of[a.index()], self.of[b.index()]);
                if ca == cb {
                    // Intra-cluster permutation: repack with the two
                    // positions exchanged; the objective is unchanged.
                    let mut cursor = 0u64;
                    for &f in &self.clusters[ca] {
                        let g = if f == a {
                            b
                        } else if f == b {
                            a
                        } else {
                            f
                        };
                        let def = self.record.field(g);
                        let al = def.align();
                        cursor = (cursor + al - 1) & !(al - 1);
                        cursor += def.size();
                    }
                    if self.lines(cursor) > self.lines(self.bytes[ca]) {
                        return None;
                    }
                    return Some(0.0);
                }
                if !self.replace_fits(ca, a, b) || !self.replace_fits(cb, b, a) {
                    return None;
                }
                let mut d = 0.0;
                for &m in &self.clusters[ca] {
                    if m != a {
                        d += self.flg.weight(b, m) - self.flg.weight(a, m);
                    }
                }
                for &m in &self.clusters[cb] {
                    if m != b {
                        d += self.flg.weight(a, m) - self.flg.weight(b, m);
                    }
                }
                Some(d)
            }
            Move::Split { cluster, at } => {
                let c = self.clusters.get(cluster)?;
                if at == 0 || at >= c.len() {
                    return None;
                }
                let mut cut = 0.0;
                for &x in &c[..at] {
                    for &y in &c[at..] {
                        cut += self.flg.weight(x, y);
                    }
                }
                Some(-cut)
            }
            Move::Merge { dst, src } => {
                if dst == src || dst >= self.clusters.len() || src >= self.clusters.len() {
                    return None;
                }
                if self.clusters[dst].is_empty() || self.clusters[src].is_empty() {
                    return None;
                }
                // Packing continues from the destination's cached bytes,
                // so the union's size is an O(|src|) extension.
                let mut cursor = self.bytes[dst];
                for &f in &self.clusters[src] {
                    let def = self.record.field(f);
                    let a = def.align();
                    cursor = (cursor + a - 1) & !(a - 1);
                    cursor += def.size();
                }
                if self.lines(cursor) > self.lines(self.bytes[dst]) {
                    return None;
                }
                let mut joined = 0.0;
                for &x in &self.clusters[dst] {
                    for &y in &self.clusters[src] {
                        joined += self.flg.weight(x, y);
                    }
                }
                Some(joined)
            }
        }
    }

    /// Whether replacing `out` (a member of cluster `c`) with `in_` at
    /// the same position keeps the cluster's line count.
    fn replace_fits(&self, c: usize, out: FieldIdx, in_: FieldIdx) -> bool {
        let members = &self.clusters[c];
        let mut cursor = 0u64;
        for &f in members {
            let def = self.record.field(if f == out { in_ } else { f });
            let a = def.align();
            cursor = (cursor + a - 1) & !(a - 1);
            cursor += def.size();
        }
        self.lines(cursor) <= self.lines(self.bytes[c])
    }

    /// Recomputes the cached sum and byte size of one cluster in
    /// canonical order.
    fn refresh(&mut self, c: usize) {
        self.sums[c] = canonical_cluster_sum(self.flg, &self.clusters[c]);
        self.bytes[c] = packed_bytes(self.record, &self.clusters[c]);
    }

    /// Applies a move. Touched clusters' cached sums are recomputed in
    /// canonical order, which keeps [`score`](Self::score) bit-identical
    /// to a full recompute.
    ///
    /// # Panics
    ///
    /// Panics if the move is infeasible
    /// ([`score_move`](Self::score_move) returned `None`).
    pub fn apply(&mut self, m: Move) {
        assert!(
            self.score_move(m).is_some(),
            "applying infeasible move {m:?}"
        );
        match m {
            Move::MoveField { field, dst } => {
                let src = self.of[field.index()];
                let dst = if dst == self.clusters.len() {
                    // Fresh singleton: reuse the lowest empty slot so the
                    // cluster list stays bounded over long chains.
                    match self.clusters.iter().position(Vec::is_empty) {
                        Some(slot) => slot,
                        None => {
                            self.clusters.push(Vec::new());
                            self.sums.push(0.0);
                            self.bytes.push(0);
                            self.clusters.len() - 1
                        }
                    }
                } else {
                    dst
                };
                self.clusters[src].retain(|&g| g != field);
                self.clusters[dst].push(field);
                self.of[field.index()] = dst;
                self.refresh(src);
                self.refresh(dst);
            }
            Move::SwapFields { a, b } => {
                let (ca, cb) = (self.of[a.index()], self.of[b.index()]);
                if ca == cb {
                    let (pa, pb) = {
                        let c = &self.clusters[ca];
                        (
                            c.iter().position(|&f| f == a).expect("member"),
                            c.iter().position(|&f| f == b).expect("member"),
                        )
                    };
                    self.clusters[ca].swap(pa, pb);
                    self.refresh(ca);
                    return;
                }
                for f in &mut self.clusters[ca] {
                    if *f == a {
                        *f = b;
                    }
                }
                for f in &mut self.clusters[cb] {
                    if *f == b {
                        *f = a;
                    }
                }
                self.of[a.index()] = cb;
                self.of[b.index()] = ca;
                self.refresh(ca);
                self.refresh(cb);
            }
            Move::Split { cluster, at } => {
                let tail = self.clusters[cluster].split_off(at);
                for &f in &tail {
                    self.of[f.index()] = self.clusters.len();
                }
                self.clusters.push(tail);
                self.sums.push(0.0);
                self.bytes.push(0);
                self.refresh(cluster);
                let last = self.clusters.len() - 1;
                self.refresh(last);
            }
            Move::Merge { dst, src } => {
                let moved = std::mem::take(&mut self.clusters[src]);
                for &f in &moved {
                    self.of[f.index()] = dst;
                }
                self.clusters[dst].extend(moved);
                self.refresh(src);
                self.refresh(dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use crate::flg::Flg;
    use crate::refine::clustering_score;
    use slopt_ir::types::{FieldType, PrimType, RecordId};

    fn record_u64(n: usize) -> RecordType {
        RecordType::new(
            "S",
            (0..n)
                .map(|i| (format!("f{i}"), FieldType::Prim(PrimType::U64)))
                .collect(),
        )
    }

    fn fixture() -> (Flg, RecordType) {
        let flg = Flg::from_parts(
            RecordId(0),
            vec![100, 90, 80, 20, 10, 5],
            vec![
                (FieldIdx(0), FieldIdx(1), 50.0),
                (FieldIdx(0), FieldIdx(2), 5.0),
                (FieldIdx(2), FieldIdx(3), 8.0),
                (FieldIdx(2), FieldIdx(4), 8.0),
                (FieldIdx(0), FieldIdx(3), -100.0),
                (FieldIdx(3), FieldIdx(5), 0.25),
            ],
        );
        (flg, record_u64(6))
    }

    fn assert_tracks(delta: &DeltaObjective<'_, Flg>, flg: &Flg) {
        let full = clustering_score(flg, &Clustering::new(delta.clusters().to_vec()));
        assert_eq!(
            delta.score().to_bits(),
            full.to_bits(),
            "tracked {} vs full {}",
            delta.score(),
            full
        );
    }

    #[test]
    fn tracked_score_matches_full_recompute_through_all_move_kinds() {
        let (flg, rec) = fixture();
        let greedy = cluster(&flg, &rec, 128);
        let mut d = DeltaObjective::new(&flg, &rec, &greedy, 128);
        assert_eq!(
            d.score().to_bits(),
            clustering_score(&flg, &greedy).to_bits()
        );

        let fresh = d.cluster_count();
        let moves = [
            Move::MoveField {
                field: FieldIdx(2),
                dst: fresh,
            },
            Move::SwapFields {
                a: FieldIdx(2),
                b: FieldIdx(5),
            },
            Move::Split {
                cluster: d.cluster_of(FieldIdx(0)),
                at: 1,
            },
        ];
        for m in moves {
            let before = d.score();
            let est = d.score_move(m).expect("feasible");
            d.apply(m);
            assert_tracks(&d, &flg);
            assert!(
                (d.score() - before - est).abs() < 1e-6,
                "estimate {est} vs actual {}",
                d.score() - before
            );
        }
        // Merge two non-empty clusters and re-check.
        let (a, b) = (d.cluster_of(FieldIdx(3)), d.cluster_of(FieldIdx(0)));
        if a != b {
            let m = Move::Merge { dst: a, src: b };
            if d.score_move(m).is_some() {
                d.apply(m);
                assert_tracks(&d, &flg);
            }
        }
    }

    #[test]
    fn capacity_rejects_appends_that_grow_lines() {
        // 16 u64s fill a 128-byte line exactly; a 17th may not join.
        let n = 17;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((FieldIdx(i), FieldIdx(j), 1.0));
            }
        }
        let flg = Flg::from_parts(RecordId(0), vec![10; n], edges);
        let rec = record_u64(n);
        let greedy = cluster(&flg, &rec, 128);
        let d = DeltaObjective::new(&flg, &rec, &greedy, 128);
        let full = d.cluster_of(FieldIdx(0));
        let lone = (0..n as u32)
            .map(FieldIdx)
            .find(|&f| d.cluster_of(f) != full)
            .expect("one field is outside the full line");
        assert_eq!(
            d.score_move(Move::MoveField {
                field: lone,
                dst: full,
            }),
            None,
            "append into a full line must be rejected"
        );
        // Merging the full line with the singleton is rejected too: 17
        // u64s need 2 lines, and a cluster may never outgrow its
        // destination's line count (the objective would otherwise score
        // pairs that cannot share a line).
        let m = Move::Merge {
            dst: full,
            src: d.cluster_of(lone),
        };
        assert_eq!(d.score_move(m), None);
    }

    #[test]
    fn fresh_singleton_reuses_empty_slots() {
        let (flg, rec) = fixture();
        let start = Clustering::new(vec![
            vec![FieldIdx(0), FieldIdx(1)],
            vec![FieldIdx(2)],
            vec![FieldIdx(3), FieldIdx(4), FieldIdx(5)],
        ]);
        let mut d = DeltaObjective::new(&flg, &rec, &start, 128);
        // Empty slot 1 by moving f2 out, then ask for a fresh singleton:
        // the empty slot must be reused, not grown.
        d.apply(Move::MoveField {
            field: FieldIdx(2),
            dst: 0,
        });
        assert!(d.clusters()[1].is_empty());
        d.apply(Move::MoveField {
            field: FieldIdx(3),
            dst: d.cluster_count(),
        });
        assert_eq!(d.cluster_count(), 3, "empty slot reused");
        assert_eq!(d.cluster_of(FieldIdx(3)), 1);
        assert_tracks(&d, &flg);
    }

    #[test]
    fn generic_scorer_matches_concrete_on_flg() {
        let (flg, rec) = fixture();
        let greedy = cluster(&flg, &rec, 128);
        assert_eq!(
            clustering_score(&flg, &greedy).to_bits(),
            clustering_score_with(&flg, &greedy).to_bits()
        );
        let _ = rec;
    }
}
