//! The advisory report — what the paper's semi-automatic tool prints.
//!
//! Along with the suggested layout the tool outputs "the key factors
//! contributing to the layout decisions": intra- and inter-cluster edge
//! weights, and the edges with large positive or negative weight. A kernel
//! engineer uses this to accept the layout or hand-edit the original one.

use crate::cluster::Clustering;
use crate::flg::Flg;
use slopt_ir::types::{FieldIdx, RecordType};
use std::fmt;

/// A labelled edge of the report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportEdge {
    /// First field.
    pub f1: FieldIdx,
    /// Second field.
    pub f2: FieldIdx,
    /// First field's name.
    pub name1: String,
    /// Second field's name.
    pub name2: String,
    /// FLG edge weight.
    pub weight: f64,
}

/// The layout advisory for one record.
#[derive(Clone, Debug)]
pub struct LayoutReport {
    /// Record name.
    pub record_name: String,
    /// Per-cluster field names with hotness.
    pub clusters: Vec<Vec<(String, u64)>>,
    /// Sum of intra-cluster edge weights, per cluster.
    pub intra_weights: Vec<f64>,
    /// Inter-cluster weight sums, `(cluster_a, cluster_b, weight)` for
    /// `a < b`, only non-zero entries.
    pub inter_weights: Vec<(usize, usize, f64)>,
    /// The largest positive edges (descending).
    pub top_positive: Vec<ReportEdge>,
    /// The most negative edges (ascending weight, i.e. worst first).
    pub top_negative: Vec<ReportEdge>,
}

/// How many edges each of the top lists carries.
const REPORT_EDGES: usize = 10;

impl LayoutReport {
    /// Builds the report for a clustering of `record` under `flg`.
    pub fn build(record: &RecordType, flg: &Flg, clustering: &Clustering) -> Self {
        let clusters: Vec<Vec<(String, u64)>> = clustering
            .clusters()
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&f| (record.field(f).name().to_string(), flg.hotness(f)))
                    .collect()
            })
            .collect();

        let intra_weights = clustering
            .clusters()
            .iter()
            .map(|c| {
                let mut w = 0.0;
                for (i, &a) in c.iter().enumerate() {
                    for &b in &c[i + 1..] {
                        w += flg.weight(a, b);
                    }
                }
                w
            })
            .collect();

        let k = clustering.len();
        let mut inter_weights = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                let mut w = 0.0;
                for &fa in &clustering.clusters()[a] {
                    for &fb in &clustering.clusters()[b] {
                        w += flg.weight(fa, fb);
                    }
                }
                if w != 0.0 {
                    inter_weights.push((a, b, w));
                }
            }
        }

        let mk = |(f1, f2, weight): (FieldIdx, FieldIdx, f64)| ReportEdge {
            f1,
            f2,
            name1: record.field(f1).name().to_string(),
            name2: record.field(f2).name().to_string(),
            weight,
        };
        let edges = flg.edges();
        let top_positive: Vec<ReportEdge> = edges
            .iter()
            .filter(|e| e.2 > 0.0)
            .take(REPORT_EDGES)
            .map(|&e| mk(e))
            .collect();
        let mut negative: Vec<&(FieldIdx, FieldIdx, f64)> =
            edges.iter().filter(|e| e.2 < 0.0).collect();
        negative.reverse(); // edges() is descending; worst (most negative) last
        let top_negative: Vec<ReportEdge> = negative
            .into_iter()
            .take(REPORT_EDGES)
            .map(|&e| mk(e))
            .collect();

        LayoutReport {
            record_name: record.name().to_string(),
            clusters,
            intra_weights,
            inter_weights,
            top_positive,
            top_negative,
        }
    }
}

impl fmt::Display for LayoutReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== layout advisory for struct {} ===", self.record_name)?;
        for (i, cluster) in self.clusters.iter().enumerate() {
            let names: Vec<String> = cluster.iter().map(|(n, h)| format!("{n}(h={h})")).collect();
            writeln!(
                f,
                "cluster {i}: [{}]  intra-weight {:.1}",
                names.join(", "),
                self.intra_weights[i]
            )?;
        }
        if !self.inter_weights.is_empty() {
            writeln!(f, "inter-cluster weights:")?;
            for (a, b, w) in &self.inter_weights {
                writeln!(f, "  {a} -- {b}: {w:.1}")?;
            }
        }
        if !self.top_positive.is_empty() {
            writeln!(f, "strongest affinities (co-locate):")?;
            for e in &self.top_positive {
                writeln!(f, "  {} -- {}: {:+.1}", e.name1, e.name2, e.weight)?;
            }
        }
        if !self.top_negative.is_empty() {
            writeln!(f, "strongest false sharing (separate):")?;
            for e in &self.top_negative {
                writeln!(f, "  {} -- {}: {:+.1}", e.name1, e.name2, e.weight)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use slopt_ir::types::{FieldType, PrimType, RecordId};

    fn setup() -> (RecordType, Flg, Clustering) {
        let rec = RecordType::new(
            "proc",
            vec![
                ("pid", FieldType::Prim(PrimType::U64)),
                ("state", FieldType::Prim(PrimType::U64)),
                ("nsyscalls", FieldType::Prim(PrimType::U64)),
            ],
        );
        let flg = Flg::from_parts(
            RecordId(0),
            vec![100, 80, 60],
            vec![
                (FieldIdx(0), FieldIdx(1), 40.0),
                (FieldIdx(0), FieldIdx(2), -70.0),
            ],
        );
        let c = cluster(&flg, &rec, 128);
        (rec, flg, c)
    }

    #[test]
    fn report_contents() {
        let (rec, flg, c) = setup();
        let r = LayoutReport::build(&rec, &flg, &c);
        assert_eq!(r.record_name, "proc");
        assert_eq!(r.clusters.len(), c.len());
        // Cluster 0 = {pid, state}: intra weight 40.
        assert_eq!(r.intra_weights[0], 40.0);
        // Inter weight between cluster 0 and the nsyscalls cluster is -70.
        assert!(r.inter_weights.iter().any(|&(_, _, w)| w == -70.0));
        assert_eq!(r.top_positive.len(), 1);
        assert_eq!(r.top_positive[0].weight, 40.0);
        assert_eq!(r.top_negative.len(), 1);
        assert_eq!(r.top_negative[0].name2, "nsyscalls");
    }

    #[test]
    fn display_mentions_fields_and_weights() {
        let (rec, flg, c) = setup();
        let text = LayoutReport::build(&rec, &flg, &c).to_string();
        assert!(text.contains("struct proc"));
        assert!(text.contains("pid"));
        assert!(text.contains("nsyscalls"));
        assert!(text.contains("separate"));
        assert!(text.contains("co-locate"));
    }

    #[test]
    fn negative_edges_sorted_worst_first() {
        let rec = RecordType::new(
            "S",
            vec![
                ("a", FieldType::Prim(PrimType::U64)),
                ("b", FieldType::Prim(PrimType::U64)),
                ("c", FieldType::Prim(PrimType::U64)),
            ],
        );
        let flg = Flg::from_parts(
            RecordId(0),
            vec![1, 1, 1],
            vec![
                (FieldIdx(0), FieldIdx(1), -5.0),
                (FieldIdx(0), FieldIdx(2), -50.0),
            ],
        );
        let c = cluster(&flg, &rec, 128);
        let r = LayoutReport::build(&rec, &flg, &c);
        assert_eq!(r.top_negative[0].weight, -50.0);
        assert_eq!(r.top_negative[1].weight, -5.0);
    }
}
