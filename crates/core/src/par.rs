//! Deterministic fan-out across host threads.
//!
//! The implementation lives in [`slopt_ir::par`] so that every crate in
//! the workspace — including `slopt-sample`, which `slopt-core` depends
//! on — can fan out through the same scheduler. This module re-exports it
//! under the historical `slopt_core::par` path.

pub use slopt_ir::par::{
    default_jobs, par_map, par_map_supervised, par_map_supervised_commit, FailureKind, FaultReport,
    ItemFailure, SupervisePolicy, WorkerError,
};
