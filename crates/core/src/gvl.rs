//! Concurrency-aware Global Variable Layout (GVL) — the paper's stated
//! future work, implemented.
//!
//! §6/§7 of the paper: "Mcintosh et al. mention as future work doing
//! global variable layout for multithreaded code in order to avoid false
//! sharing misses. We plan to integrate code concurrency information into
//! the compiler's GVL framework." The problem is the field-layout problem
//! one level up: *globals* (scalars or whole records) are the nodes,
//! affinity and Code-Concurrency-derived loss are the edges, and the
//! output is an assignment of globals to cache lines in the image's data
//! section.
//!
//! The same greedy clustering applies; what changes is that nodes have
//! individual sizes/alignments and the result is a section layout, not a
//! record layout.

use slopt_ir::interp::SplitMix64;
use std::collections::HashMap;
use std::fmt;

/// One global variable.
#[derive(Clone, Debug, Eq, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes (power of two).
    pub align: u64,
}

/// Identifies a global in a [`GvlProblem`].
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Ord, PartialOrd)]
pub struct GlobalId(pub u32);

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The GVL input: globals plus pairwise net weights
/// (`k1·affinity − k2·concurrency-loss`, exactly as for fields).
#[derive(Clone, Debug, Default)]
pub struct GvlProblem {
    globals: Vec<Global>,
    hotness: Vec<u64>,
    weights: HashMap<(u32, u32), f64>,
}

impl GvlProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a global and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if size is zero or alignment is not a power of two.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        size: u64,
        align: u64,
        hotness: u64,
    ) -> GlobalId {
        assert!(size > 0, "zero-size global");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.into(),
            size,
            align,
        });
        self.hotness.push(hotness);
        id
    }

    /// Sets the net edge weight between two globals.
    ///
    /// # Panics
    ///
    /// Panics on self-edges or unknown ids.
    pub fn set_weight(&mut self, a: GlobalId, b: GlobalId, w: f64) {
        assert_ne!(a, b, "self-edge on {a}");
        assert!((a.0 as usize) < self.globals.len() && (b.0 as usize) < self.globals.len());
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.weights.insert(key, w);
    }

    fn weight(&self, a: u32, b: u32) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.weights.get(&key).copied().unwrap_or(0.0)
    }

    /// Number of globals.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Whether the problem is empty.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }
}

/// A produced section layout: every global gets a byte offset.
#[derive(Clone, Debug)]
pub struct SectionLayout {
    offsets: Vec<u64>,
    size: u64,
    line_size: u64,
}

impl SectionLayout {
    /// Offset of a global.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn offset(&self, g: GlobalId) -> u64 {
        self.offsets[g.0 as usize]
    }

    /// Total section size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Whether two globals share a cache line.
    pub fn share_line(&self, problem: &GvlProblem, a: GlobalId, b: GlobalId) -> bool {
        let ga = &problem.globals[a.0 as usize];
        let gb = &problem.globals[b.0 as usize];
        let (a0, a1) = (
            self.offset(a) / self.line_size,
            (self.offset(a) + ga.size - 1) / self.line_size,
        );
        let (b0, b1) = (
            self.offset(b) / self.line_size,
            (self.offset(b) + gb.size - 1) / self.line_size,
        );
        a0 <= b1 && b0 <= a1
    }
}

fn align_up(x: u64, a: u64) -> u64 {
    (x + a - 1) & !(a - 1)
}

/// Lays out the globals: greedy clustering (hotness-seeded, positive-gain
/// growth, line-capacity-bounded — the field algorithm verbatim), then one
/// line-aligned run per cluster.
///
/// # Panics
///
/// Panics if `line_size` is not a power of two.
pub fn layout_globals(problem: &GvlProblem, line_size: u64) -> SectionLayout {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let n = problem.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        problem.hotness[b as usize]
            .cmp(&problem.hotness[a as usize])
            .then(a.cmp(&b))
    });

    let bytes_of = |members: &[u32]| -> u64 {
        let mut cursor = 0;
        for &m in members {
            let g = &problem.globals[m as usize];
            cursor = align_up(cursor, g.align);
            cursor += g.size;
        }
        cursor
    };
    let lines_of = |members: &[u32]| bytes_of(members).div_ceil(line_size).max(1);

    let mut unassigned = order;
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    while !unassigned.is_empty() {
        let seed = unassigned.remove(0);
        let mut cluster = vec![seed];
        loop {
            let current_lines = lines_of(&cluster);
            let mut best: Option<u32> = None;
            let mut best_w = 0.0;
            for &cand in &unassigned {
                let mut extended = cluster.clone();
                extended.push(cand);
                if lines_of(&extended) > current_lines {
                    continue;
                }
                let w: f64 = cluster.iter().map(|&m| problem.weight(cand, m)).sum();
                if w > best_w {
                    best_w = w;
                    best = Some(cand);
                }
            }
            match best {
                Some(b) => {
                    unassigned.retain(|&x| x != b);
                    cluster.push(b);
                }
                None => break,
            }
        }
        clusters.push(cluster);
    }

    // Materialize: hot clusters line-aligned, all-cold clusters packed in
    // one tail (same policy as the record layouts).
    let mut offsets = vec![0u64; n];
    let mut cursor = 0u64;
    let mut cold_tail: Vec<u32> = Vec::new();
    for cluster in &clusters {
        if cluster.iter().all(|&m| problem.hotness[m as usize] == 0) {
            cold_tail.extend_from_slice(cluster);
            continue;
        }
        cursor = align_up(cursor, line_size);
        for &m in cluster {
            let g = &problem.globals[m as usize];
            cursor = align_up(cursor, g.align);
            offsets[m as usize] = cursor;
            cursor += g.size;
        }
    }
    if !cold_tail.is_empty() {
        cursor = align_up(cursor, line_size);
        for m in cold_tail {
            let g = &problem.globals[m as usize];
            cursor = align_up(cursor, g.align);
            offsets[m as usize] = cursor;
            cursor += g.size;
        }
    }
    SectionLayout {
        offsets,
        size: cursor,
        line_size,
    }
}

/// A deterministic shuffled layout — the "link order" baseline GVL papers
/// compare against.
pub fn link_order_layout(problem: &GvlProblem, seed: u64, line_size: u64) -> SectionLayout {
    let n = problem.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut offsets = vec![0u64; n];
    let mut cursor = 0u64;
    for m in order {
        let g = &problem.globals[m as usize];
        cursor = align_up(cursor, g.align);
        offsets[m as usize] = cursor;
        cursor += g.size;
    }
    SectionLayout {
        offsets,
        size: cursor,
        line_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counter globals written by different CPUs plus a pair of
    /// read-affine config globals.
    fn sample_problem() -> (GvlProblem, GlobalId, GlobalId, GlobalId, GlobalId) {
        let mut p = GvlProblem::new();
        let c1 = p.add_global("cpu_ticks", 8, 8, 900);
        let c2 = p.add_global("io_ticks", 8, 8, 800);
        let cfg_a = p.add_global("hz", 8, 8, 700);
        let cfg_b = p.add_global("tick_ns", 8, 8, 650);
        p.set_weight(c1, c2, -500.0); // concurrent writers
        p.set_weight(cfg_a, cfg_b, 300.0); // read together
        p.set_weight(c1, cfg_a, -200.0); // writer vs hot readers
        p.set_weight(c1, cfg_b, -200.0);
        (p, c1, c2, cfg_a, cfg_b)
    }

    #[test]
    fn contended_globals_get_separate_lines() {
        let (p, c1, c2, cfg_a, cfg_b) = sample_problem();
        let layout = layout_globals(&p, 128);
        assert!(
            !layout.share_line(&p, c1, c2),
            "concurrent counters must split"
        );
        assert!(
            layout.share_line(&p, cfg_a, cfg_b),
            "affine config must co-locate"
        );
        assert!(
            !layout.share_line(&p, c1, cfg_a),
            "writer separated from hot readers"
        );
        // Offsets respect alignment.
        for g in [c1, c2, cfg_a, cfg_b] {
            assert_eq!(layout.offset(g) % 8, 0);
        }
    }

    #[test]
    fn link_order_baseline_often_collides() {
        let (p, c1, c2, _, _) = sample_problem();
        // 4 tiny globals in 32 bytes: a random packing always shares lines.
        let layout = link_order_layout(&p, 7, 128);
        assert!(layout.share_line(&p, c1, c2));
        assert!(layout.size() <= 64);
    }

    #[test]
    fn cold_globals_pack_into_a_tail() {
        let mut p = GvlProblem::new();
        let hot = p.add_global("hot", 8, 8, 100);
        let colds: Vec<GlobalId> = (0..10)
            .map(|i| p.add_global(format!("cold{i}"), 8, 8, 0))
            .collect();
        let layout = layout_globals(&p, 128);
        for &c in &colds {
            assert!(
                !layout.share_line(&p, hot, c),
                "cold tail on its own line(s)"
            );
        }
        // Tail is packed, not one line per global.
        assert!(layout.size() <= 3 * 128);
    }

    #[test]
    fn mixed_sizes_and_alignments() {
        let mut p = GvlProblem::new();
        let big = p.add_global("table", 200, 8, 60);
        let small = p.add_global("len", 4, 4, 50);
        p.set_weight(big, small, 40.0);
        let layout = layout_globals(&p, 128);
        assert!(
            layout.share_line(&p, big, small),
            "affine pair packs into the table's tail line"
        );
        assert_eq!(layout.offset(small) % 4, 0);
    }

    #[test]
    #[should_panic(expected = "self-edge")]
    fn self_edges_rejected() {
        let mut p = GvlProblem::new();
        let g = p.add_global("x", 8, 8, 1);
        p.set_weight(g, g, 1.0);
    }
}
